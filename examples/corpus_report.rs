//! Inspect the synthetic benchmark corpus: per-file statistics showing
//! the generated workloads really carry the repeat structure the paper's
//! compressors exploit (DESIGN.md's substitution justification).
//!
//! ```text
//! cargo run --release --example corpus_report
//! ```

use dnacomp::prelude::*;
use dnacomp::seq::stats;

fn main() {
    let files = CorpusBuilder::paper(42).build();
    println!("{} corpus files; showing the 11 standard stand-ins + 5 NCBI-style\n", files.len());
    println!(
        "{:<12} {:>9} {:>6} {:>7} {:>7} {:>9}  kind",
        "name", "bases", "GC%", "H0", "H8", "rep16%"
    );
    for spec in files.iter().filter(|f| f.len <= 400_000).take(16) {
        let seq = spec.generate();
        let s = stats::summarize(&seq);
        println!(
            "{:<12} {:>9} {:>6.1} {:>7.3} {:>7.3} {:>9.1}  {:?}",
            spec.name,
            s.len,
            s.gc * 100.0,
            s.h0,
            s.h8,
            s.repeat16_coverage * 100.0,
            spec.kind,
        );
    }
    // FASTA roundtrip through the Cleanser, as the experiment prep does.
    let sample = &files[3];
    let seq = sample.generate();
    let rec = dnacomp::seq::fasta::Record {
        header: sample.name.clone(),
        seq: seq.slice(0, 240.min(seq.len())),
        cleaned: 0,
    };
    let fasta = dnacomp::seq::fasta::write_fasta(std::slice::from_ref(&rec), 60);
    println!("\nFASTA preview of {} (first 240 bases):\n{fasta}", sample.name);
    let parsed = dnacomp::seq::fasta::Cleanser::default()
        .parse(&fasta)
        .expect("parse back");
    assert_eq!(parsed[0].seq, rec.seq);
    println!("cleanser roundtrip OK");
}
