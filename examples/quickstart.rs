//! Quickstart: compress a DNA sequence with every implemented algorithm
//! and compare ratio, work and memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dnacomp::prelude::*;
use std::time::Instant;

fn main() {
    // A bacterial-like synthetic genome: 200 kB with the three repeat
    // classes of the paper (exact, reverse-complement, mutated copies).
    let seq = GenomeModel::default().generate(200_000, 2024);
    println!(
        "input: {} bases (GC {:.1} %)\n",
        seq.len(),
        dnacomp::seq::stats::gc_content(&seq) * 100.0
    );
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "algorithm", "bytes", "bits/base", "comp work", "peak heap", "wall ms"
    );
    for compressor in dnacomp::algos::all_algorithms() {
        let t0 = Instant::now();
        let (blob, stats) = compressor
            .compress_with_stats(&seq)
            .expect("compression failed");
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        // Verify the roundtrip before reporting anything.
        let back = compressor.decompress(&blob).expect("decompression failed");
        assert_eq!(back, seq, "roundtrip mismatch for {}", compressor.name());
        println!(
            "{:<14} {:>12} {:>10.3} {:>12} {:>10}kB {:>10.1}",
            compressor.name(),
            blob.total_bytes(),
            blob.bits_per_base(),
            stats.work_units,
            stats.peak_heap_bytes / 1024,
            wall,
        );
    }
    println!("\n(2-bit packing baseline: 2.000 bits/base — everything below that");
    println!(" is exploiting the repeat structure; gzip sits above it because it");
    println!(" works on the ASCII file, exactly as the paper reports.)");
}
