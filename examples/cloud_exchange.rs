//! The deployed Figure-7 loop: a trained framework gathers the context,
//! infers the algorithm, compresses, ships the blob through the simulated
//! storage account to the cloud VM and decompresses there.
//!
//! ```text
//! cargo run --release --example cloud_exchange
//! ```

use dnacomp::cloud::{context_grid, CloudSim, MachineSpec, PerfModel};
use dnacomp::core::{
    build_rows, label_rows, measure_corpus, Context, ContextAwareFramework, WeightVector,
};
use dnacomp::ml::TreeMethod;
use dnacomp::prelude::*;

fn main() {
    // 1. Train the selector on a reduced measurement grid. The size
    // range must span the sizes we will decide on later — rules don't
    // extrapolate past their training support.
    let files = CorpusBuilder::paper(3)
        .ncbi_files(25)
        .include_standard(false)
        .size_range(1_000, 1_000_000)
        .build();
    println!("measuring {} training files …", files.len());
    let measurements =
        measure_corpus(&files, &dnacomp::algos::paper_algorithms()).expect("grid failed");
    let rows = build_rows(
        &measurements,
        &context_grid(),
        &PerfModel::default(),
        &MachineSpec::azure_vm(),
    );
    let labeled = label_rows(&rows, &WeightVector::time_only());
    let framework = ContextAwareFramework::train(&labeled, TreeMethod::Cart);
    println!("trained CART selector; {} rules\n", framework.rules().len());

    // 2. Exchange three fresh sequences under three different contexts.
    let mut sim = CloudSim::default();
    let perf = PerfModel::default();
    let scenarios = [
        ("small file, weak laptop", 8_000usize, 1024u32, 1600u32, 0.5),
        ("medium file, office PC", 120_000, 3072, 2393, 0.5),
        ("large file, better uplink", 900_000, 4096, 2800, 2.0),
    ];
    for (what, len, ram, cpu, bw) in scenarios {
        let seq = GenomeModel::default().generate(len, len as u64);
        let ctx = Context {
            ram_mb: ram,
            cpu_mhz: cpu,
            bandwidth_mbps: bw,
            file_bytes: seq.len() as u64,
        };
        let worth = framework.worth_compressing(&ctx, &perf);
        let (alg, report) = framework
            .exchange(&mut sim, &ctx, &format!("seq_{len}"), &seq)
            .expect("exchange failed");
        println!("{what}: {len} bases @ {ram} MB / {cpu} MHz / {bw} Mbit/s");
        println!(
            "  compress at all? {}   chosen: {alg}",
            if worth { "yes" } else { "no" }
        );
        println!(
            "  {} B blob ({:.3} bits/base) | comp {:.0} ms, up {:.0} ms, down {:.0} ms, dec {:.0} ms → total {:.0} ms\n",
            report.compressed_bytes,
            report.bits_per_base(),
            report.compress_ms,
            report.upload_ms,
            report.download_ms,
            report.decompress_ms,
            report.total_ms(),
        );
    }
    println!(
        "storage account now holds {} blobs, {} bytes",
        sim.store.list("sequences").len(),
        sim.store.stored_bytes()
    );
}
