//! Compress a high-throughput read set (FASTQ) with G-SQZ — the paper's
//! §III-B thread: sequencers emit sequence *and* quality data, and joint
//! (base, quality) coding keeps both compact without reordering reads.
//!
//! ```text
//! cargo run --release --example read_set
//! ```

use dnacomp::algos::GSqz;
use dnacomp::prelude::*;
use dnacomp::seq::fastq::{synth_reads, write_fastq};

fn main() {
    // Simulate a sequencing run: 2 000 reads of 150 bp off a 100 kB
    // genome, with the classic decaying quality profile.
    let genome = GenomeModel::default().generate(100_000, 77);
    let reads = synth_reads(&genome, 2_000, 150, 7);
    let raw_fastq = write_fastq(&reads);
    println!(
        "read set: {} reads × 150 bp = {} bases, raw FASTQ {} bytes",
        reads.len(),
        reads.len() * 150,
        raw_fastq.len()
    );

    let (bytes, stats) = GSqz.compress_with_stats(&reads).expect("gsqz");
    let back = GSqz.decompress(&bytes).expect("gsqz decode");
    assert_eq!(back, reads, "roundtrip");
    let pairs = reads.len() * 150;
    println!(
        "G-SQZ: {} bytes ({:.2} bits per (base, quality) pair, {:.1}x vs raw FASTQ)",
        bytes.len(),
        bytes.len() as f64 * 8.0 / pairs as f64,
        raw_fastq.len() as f64 / bytes.len() as f64,
    );
    println!("peak working set ≈ {} kB", stats.peak_heap_bytes / 1024);

    // Contrast with sequence-only compression of the same bases: the
    // qualities, not the bases, dominate FASTQ entropy.
    let all_bases: PackedSeq = reads.iter().flat_map(|r| r.seq.iter()).collect();
    let seq_only = Dnax::default()
        .compress(&all_bases)
        .unwrap()
        .total_bytes();
    println!(
        "\nfor scale: DNAX on the concatenated bases alone (no qualities) = {seq_only} bytes \
         — the quality stream is where most of the bits go."
    );
}
