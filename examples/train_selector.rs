//! Train the context-aware selector end-to-end (the paper's §IV–V
//! pipeline at reduced scale) and print the learned rules.
//!
//! ```text
//! cargo run --release --example train_selector
//! ```

use dnacomp::cloud::{context_grid, MachineSpec, PerfModel};
use dnacomp::core::{build_rows, label_rows, measure_corpus, ContextAwareFramework, WeightVector};
use dnacomp::ml::TreeMethod;
use dnacomp::prelude::*;

fn main() {
    // Reduced corpus: 40 files up to 300 kB (the full 132-file grid is
    // what `cargo run -p dnacomp-bench --bin repro` runs).
    let files = CorpusBuilder::paper(7)
        .ncbi_files(29)
        .size_range(1_000, 300_000)
        .build();
    println!("measuring {} files × 4 algorithms …", files.len());
    let measurements =
        measure_corpus(&files, &dnacomp::algos::paper_algorithms()).expect("grid failed");
    let rows = build_rows(
        &measurements,
        &context_grid(),
        &PerfModel::default(),
        &MachineSpec::azure_vm(),
    );
    println!("{} experiment rows", rows.len());

    // Label with Eq. 1, equal time weights (the paper's headline config).
    let labeled = label_rows(&rows, &WeightVector::time_only());
    let mut wins = std::collections::BTreeMap::new();
    for l in &labeled {
        *wins.entry(l.winner.name()).or_insert(0u32) += 1;
    }
    println!("label distribution: {wins:?}");

    // 75/25 file split, then train both methods.
    let n_test_files = files.len() / 4;
    let test_names: std::collections::HashSet<_> = files
        .iter()
        .rev()
        .take(n_test_files)
        .map(|f| f.name.clone())
        .collect();
    let (train, test): (Vec<_>, Vec<_>) = labeled
        .into_iter()
        .partition(|l| !test_names.contains(&l.file));

    for method in [TreeMethod::Chaid, TreeMethod::Cart] {
        let fw = ContextAwareFramework::train(&train, method);
        println!(
            "\n=== {method} === accuracy: train {:.3}, test {:.3}",
            fw.evaluate(&train),
            fw.evaluate(&test)
        );
        for rule in fw.rules().iter().take(12) {
            println!("  {rule}");
        }
    }
}
