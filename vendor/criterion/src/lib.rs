//! Offline stand-in for `criterion`.
//!
//! Benches compile and run: each `Bencher::iter` body executes once and
//! the elapsed wall time is printed. No statistics, warm-up, or HTML
//! reports — just enough surface (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`/`criterion_main!`)
//! for the workspace's benches to build under `--all-targets` and give
//! a rough smoke-test timing when invoked.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a group (recorded, unused).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and parameter display.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness passed to bench closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Run `routine` once and record its wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Set warm-up time (ignored by the stand-in).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set measurement time (ignored by the stand-in).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set sample count (ignored by the stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the group's throughput (ignored by the stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark and print its single-shot wall time.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{}/{id}: {:?} (single shot)", self.name, b.elapsed);
        self
    }

    /// Run one parameterised benchmark and print its wall time.
    pub fn bench_with_input<F, I>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
        I: ?Sized,
    {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        println!("{}/{id}: {:?} (single shot)", self.name, b.elapsed);
        self
    }

    /// Finish the group (no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect bench functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1))
            .sample_size(10)
            .throughput(Throughput::Bytes(4));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_each_body_once() {
        benches();
    }
}
