//! Offline stand-in for `rand` 0.8.
//!
//! Provides the API subset the workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Rng::gen_bool` — over a SplitMix64 core. Deterministic for a given
//! seed, which is all the simulator and generators require; it makes no
//! claim to the statistical quality of the real crate's ChaCha core.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from an [`RngCore`] (the stand-in for the
/// real crate's `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can be 2^64 at most here (full u64 range), which
                // still fits in u128.
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for the real
    /// `StdRng`; same API, different — but still fixed — stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let n = rng.gen_range(1u8..=3);
            assert!((1..=3).contains(&n));
        }
    }

    #[test]
    fn full_u64_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let _ = rng.gen_range(1u64..=u64::MAX);
        }
    }

    #[test]
    fn gen_bool_rates_are_plausible() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }
}
