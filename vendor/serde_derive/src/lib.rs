//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this environment, so
//! this proc-macro crate derives the vendored `serde`'s `Serialize` /
//! `Deserialize` traits (a simplified content-tree model, not the real
//! serde visitor API). It parses the item token stream by hand — no
//! `syn`/`quote` — which is sufficient for the shapes this workspace
//! uses: non-generic named-field structs, newtype structs, and enums
//! with unit / newtype / tuple / struct variants. The one field
//! attribute it honours is `#[serde(default)]`: a missing key
//! deserialises to `Default::default()` instead of erroring, which is
//! what keeps mixed-version peers exchanging stat JSON.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named struct field as the derives see it.
struct Field {
    name: String,
    /// `#[serde(default)]`: tolerate the key being absent.
    default: bool,
}

/// Parsed shape of the deriving item.
enum Item {
    /// `struct Name { field, .. }`
    Struct { name: String, fields: Vec<Field> },
    /// `struct Name(T, ..);` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { .. }`
    Enum { name: String, variants: Vec<Variant> },
}

enum VariantKind {
    Unit,
    /// Tuple variant with arity.
    Tuple(usize),
    /// Struct variant with named fields.
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Skip one attribute (`#` + bracket group) if present at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Skip a visibility modifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Split `tokens` on commas that sit outside `<...>` nesting.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Does this attribute bracket group spell `serde(default)`?
fn is_serde_default(group: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// One named-field chunk: `(#[attr])* (pub)? name: Type`.
fn parse_field(chunk: &[TokenTree]) -> Field {
    let mut i = 0;
    let mut default = false;
    while i + 1 < chunk.len() {
        match (&chunk[i], &chunk[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                default |= is_serde_default(g);
                i += 2;
            }
            _ => break,
        }
    }
    skip_vis(chunk, &mut i);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => Field {
            name: id.to_string(),
            default,
        },
        other => panic!("serde_derive stub: expected field name, got {other:?}"),
    }
}

fn parse_named_fields(group_tokens: &[TokenTree]) -> Vec<Field> {
    split_top_level(group_tokens)
        .iter()
        .map(|chunk| parse_field(chunk))
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut i = 0;
    skip_attrs(chunk, &mut i);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected variant name, got {other:?}"),
    };
    i += 1;
    let kind = match chunk.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Struct(parse_named_fields(&toks))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let toks: Vec<TokenTree> = g.stream().into_iter().collect();
            VariantKind::Tuple(split_top_level(&toks).len())
        }
        // `Name = 3` discriminants and bare unit variants both end here.
        _ => VariantKind::Unit,
    };
    Variant { name, kind }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported ({name})");
        }
    }
    match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::Struct {
                    name,
                    fields: parse_named_fields(&toks),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                Item::TupleStruct {
                    name,
                    arity: split_top_level(&toks).len(),
                }
            }
            other => panic!("serde_derive stub: unsupported struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let toks: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_level(&toks)
                    .iter()
                    .map(|chunk| parse_variant(chunk))
                    .collect();
                Item::Enum { name, variants }
            }
            other => panic!("serde_derive stub: unsupported enum body {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

/// Derive the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match item {
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_content(&self) -> ::serde::Content {{\n\
                             ::serde::Serialize::to_content(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..arity)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_content(&self) -> ::serde::Content {{\n\
                             ::serde::Content::Seq(vec![{}])\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Serialize::to_content(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let pats: Vec<String> =
                                (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Serialize::to_content(__f{k})")
                                })
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                                     \"{vn}\".to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                pats.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let pats = fields
                                .iter()
                                .map(|f| f.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Content::Map(vec![(\
                                     \"{vn}\".to_string(), ::serde::Content::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    src.parse().expect("serde_derive stub: generated invalid Serialize impl")
}

/// The initialiser expression for one named field inside a
/// deserialised struct (or struct variant) literal.
fn field_init(owner: &str, f: &Field) -> String {
    let name = &f.name;
    if f.default {
        format!(
            "{name}: match ::serde::map_get(__m, \"{name}\") {{\n\
                 Some(__v) => ::serde::Deserialize::from_content(__v)?,\n\
                 None => ::std::default::Default::default(),\n\
             }}"
        )
    } else {
        format!(
            "{name}: ::serde::Deserialize::from_content(\
                 ::serde::map_get(__m, \"{name}\")\
                     .ok_or_else(|| ::serde::DeError::missing_field(\"{owner}\", \"{name}\"))?)?"
        )
    }
}

/// Derive the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| field_init(&name, f))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let __m = __c.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}\"))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            if arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             Ok({name}(::serde::Deserialize::from_content(__c)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let inits: Vec<String> = (0..arity)
                    .map(|k| {
                        format!(
                            "::serde::Deserialize::from_content(\
                                 __s.get({k}).ok_or_else(|| ::serde::DeError::expected(\"tuple element\", \"{name}\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let __s = __c.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", \"{name}\"))?;\n\
                             Ok({name}({}))\n\
                         }}\n\
                     }}",
                    inits.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut keyed_arms = Vec::new();
            for v in &variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push(format!("\"{vn}\" => Ok({name}::{vn}),"));
                    }
                    VariantKind::Tuple(1) => {
                        keyed_arms.push(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(__v)?)),"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| {
                                format!(
                                    "::serde::Deserialize::from_content(\
                                         __s.get({k}).ok_or_else(|| ::serde::DeError::expected(\"tuple element\", \"{name}::{vn}\"))?)?"
                                )
                            })
                            .collect();
                        keyed_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let __s = __v.as_seq().ok_or_else(|| ::serde::DeError::expected(\"seq\", \"{name}::{vn}\"))?;\n\
                                 Ok({name}::{vn}({}))\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let owner = format!("{name}::{vn}");
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| field_init(&owner, f))
                            .collect();
                        keyed_arms.push(format!(
                            "\"{vn}\" => {{\n\
                                 let __m = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"map\", \"{name}::{vn}\"))?;\n\
                                 Ok({name}::{vn} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_content(__c: &::serde::Content) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __c {{\n\
                             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                                 {}\n\
                                 _ => Err(::serde::DeError::unknown_variant(\"{name}\", __s)),\n\
                             }},\n\
                             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__k, __v) = &__entries[0];\n\
                                 match __k.as_str() {{\n\
                                     {}\n\
                                     _ => Err(::serde::DeError::unknown_variant(\"{name}\", __k)),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::DeError::expected(\"enum\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                keyed_arms.join("\n")
            )
        }
    };
    src.parse().expect("serde_derive stub: generated invalid Deserialize impl")
}
