//! Offline stand-in for `bytes`: an immutable, cheaply cloneable byte
//! buffer backed by `Arc<[u8]>`. Covers the subset the workspace uses.

use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.as_ref(), b"hello");
        assert_eq!(b.len(), 5);
        let c = b.clone();
        assert_eq!(c, b);
        let e = Bytes::new();
        assert!(e.is_empty());
    }
}
