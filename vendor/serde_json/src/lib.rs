//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde`'s [`Content`] tree as JSON text. Supports everything the
//! workspace serializes — objects, arrays, strings, integers, floats,
//! booleans and null — with shortest-roundtrip float formatting.

use serde::{Content, DeError, Serialize};
use std::fmt;

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

// ------------------------------------------------------------- writing

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_content(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64 (and keeps a `.0` on integers).
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_content(out, v);
            }
            out.push('}');
        }
    }
}

/// Serialize `value` as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content());
    Ok(out)
}

/// Serialize `value` as JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

// ------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected number at byte {start}")));
        }
        if !float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                });
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }

    fn parse_value(&mut self, depth: u32) -> Result<Content, Error> {
        if depth > 256 {
            return Err(Error::new("nesting too deep"));
        }
        match self.peek().ok_or_else(|| Error::new("unexpected end"))? {
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    let key = {
                        self.skip_ws();
                        self.parse_string()?
                    };
                    self.expect(b':')?;
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            b'"' => {
                self.skip_ws();
                self.parse_string().map(Content::Str)
            }
            b't' | b'f' => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new("bad keyword"))
                }
            }
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new("bad keyword"))
                }
            }
            _ => self.parse_number(),
        }
    }
}

/// Parse JSON text into a [`Content`] tree.
pub fn parse(text: &str) -> Result<Content, Error> {
    let mut p = Parser::new(text);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let content = parse(text)?;
    T::from_content(&content).map_err(Error::from)
}

/// Deserialize a value from JSON bytes.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    from_str(std::str::from_utf8(bytes).map_err(|_| Error::new("invalid UTF-8"))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("  true ").unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd\u{1}é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn float_precision_survives() {
        for v in [0.1f64, 1e300, 1.0 / 3.0, f64::MIN_POSITIVE] {
            let json = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{broken").is_err());
        assert!(from_str::<u64>("42 junk").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
    }
}
