//! Offline stand-in for `proptest`.
//!
//! Implements the API subset this workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! `prop_assert!` / `prop_assert_eq!`, `any::<T>()`, integer and float
//! range strategies, simple `[chars]{min,max}` regex string strategies,
//! tuple strategies, and `prop::collection::vec`. Cases are generated
//! from a deterministic per-test RNG; there is no shrinking — a failing
//! case panics with the ordinary assert message.

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic per-test RNG (SplitMix64 seeded from the test name
    /// and case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in test_name.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= case as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            TestRng { state: h }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound = 0` means the full
        /// 2^64 range.
        pub fn below(&mut self, bound: u128) -> u64 {
            if bound == 0 || bound > u64::MAX as u128 {
                self.next_u64()
            } else {
                (self.next_u64() as u128 % bound) as u64
            }
        }

        /// Uniform f64 in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Value` from a deterministic RNG.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    /// String strategy from a `[chars]{min,max}` regex (the only regex
    /// shape this workspace uses). Char classes support literal chars,
    /// `a-z` ranges, and `\n`/`\t`/`\\` escapes.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_regex(self);
            let len = min + rng.below((max - min + 1) as u128) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u128) as usize])
                .collect()
        }
    }

    fn parse_class_regex(pattern: &str) -> (Vec<char>, usize, usize) {
        let mut chars = pattern.chars().peekable();
        assert_eq!(
            chars.next(),
            Some('['),
            "proptest stub supports only `[chars]{{min,max}}` regexes, got `{pattern}`"
        );
        let mut alphabet: Vec<char> = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated char class in `{pattern}`"));
            match c {
                ']' => break,
                '\\' => {
                    let e = chars
                        .next()
                        .unwrap_or_else(|| panic!("trailing escape in `{pattern}`"));
                    alphabet.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    });
                }
                _ => {
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated range in `{pattern}`"));
                        assert!(hi != ']', "unterminated range in `{pattern}`");
                        for code in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                alphabet.push(ch);
                            }
                        }
                    } else {
                        alphabet.push(c);
                    }
                }
            }
        }
        assert!(!alphabet.is_empty(), "empty char class in `{pattern}`");
        let rest: String = chars.collect();
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("expected `{{min,max}}` after class in `{pattern}`"));
        let (lo, hi) = inner
            .split_once(',')
            .unwrap_or_else(|| panic!("expected `min,max` in `{pattern}`"));
        let min: usize = lo.trim().parse().expect("bad min repeat");
        let max: usize = hi.trim().parse().expect("bad max repeat");
        assert!(min <= max, "min > max in `{pattern}`");
        (alphabet, min, max)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy!((0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min + 1) as u128;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The proptest prelude subset.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec(..)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Skip the current case when a precondition does not hold. (The real
/// crate rejects and redraws; the stand-in just moves to the next case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests. Each generated test runs its body for every
/// deterministically generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg(<$crate::test_runner::Config as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @cfg($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = {
                            #[allow(unused_imports)]
                            use $crate::strategy::Strategy as _;
                            ($strat).generate(&mut __rng)
                        };
                    )+
                    // One closure per case so `prop_assume!`'s early
                    // `return` skips this case only, not the whole test.
                    #[allow(clippy::redundant_closure_call)]
                    (move || $body)();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u8..=255, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn regex_strings_match_class(s in "[ACGT]{2,9}") {
            prop_assert!(s.len() >= 2 && s.len() <= 9, "{}", s.len());
            prop_assert!(s.chars().all(|c| "ACGT".contains(c)));
        }

        #[test]
        fn vecs_and_tuples(v in prop::collection::vec((any::<u16>(), 0u8..3), 0..5)) {
            prop_assert!(v.len() < 5);
            for (_, b) in v {
                prop_assert!(b < 3);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let mut a = crate::test_runner::TestRng::for_case("t", 0);
        let mut b = crate::test_runner::TestRng::for_case("t", 0);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn printable_class_with_escape() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::for_case("p", 1);
        let s = "[ -~\n]{0,40}".generate(&mut rng);
        assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
    }
}
