//! Offline stand-in for `rayon`.
//!
//! Exposes the `par_iter` API shape the workspace uses, executed
//! sequentially — deterministic and dependency-free. If the real crate
//! ever becomes available the call sites work unchanged.

/// The rayon prelude subset.
pub mod prelude {
    /// `par_iter()` on borrowed collections (sequential fallback).
    pub trait IntoParallelRefIterator<'data> {
        /// Iterator type returned (a plain sequential iterator here).
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item: 'data;

        /// Iterate "in parallel" (sequentially in this stand-in).
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        type Item = &'data T;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_collects_like_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let s: &[i32] = &v;
        assert_eq!(s.par_iter().sum::<i32>(), 6);
    }
}
