//! Offline stand-in for `serde`.
//!
//! The real registry is unreachable in this environment, so this crate
//! provides the subset of serde the workspace uses: `Serialize` /
//! `Deserialize` traits (over a simplified JSON-like [`Content`] tree
//! instead of the real visitor API), derive macros re-exported from the
//! vendored `serde_derive`, and a `de::DeserializeOwned` marker. The
//! vendored `serde_json` renders and parses [`Content`].

/// Derive macros for [`Serialize`] / [`Deserialize`].
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-like value tree — the intermediate data model every
/// [`Serialize`] implementation produces and every [`Deserialize`]
/// implementation consumes.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, insertion-ordered.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up `key` in the entries of a [`Content::Map`].
pub fn map_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Error with a custom message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserializing {ty}"))
    }

    /// Missing struct field.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` in {ty}"))
    }

    /// Unknown enum variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// Convert to the data-model tree.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the data-model tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// The `serde::de` module surface the workspace uses.
pub mod de {
    /// Marker for owned deserialization (equivalent to [`crate::Deserialize`]
    /// here, since the simplified model never borrows from the input).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------- impls

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match c {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    Content::F64(v) if v.fract() == 0.0 && *v >= 0.0 => *v as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match c {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::expected("in-range integer", stringify!($t)))?,
                    Content::F64(v) if v.fract() == 0.0 => *v as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            Content::Null => Ok(f64::NAN),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(s) => s.iter().map(Deserialize::from_content).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let s = c.as_seq().ok_or_else(|| DeError::expected("array", "tuple"))?;
                Ok(($($t::from_content(
                    s.get($n).ok_or_else(|| DeError::expected("tuple element", "tuple"))?,
                )?,)+))
            }
        }
    )*};
}
impl_tuple!((0 A) (0 A, 1 B) (0 A, 1 B, 2 C) (0 A, 1 B, 2 C, 3 D));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-7i64).to_content()).unwrap(), -7);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()).unwrap(), v);
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }
}
