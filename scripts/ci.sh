#!/usr/bin/env bash
# CI gate for the dnacomp workspace.
#
# Runs the tier-1 verification (release build, full test suite, clippy
# with warnings denied) and then the service stress test under an
# explicit wall-clock timeout, so a queue/worker deadlock fails the
# pipeline instead of hanging it.
#
# Usage: scripts/ci.sh [--quick]
#   --quick   skip the release build (debug test run + clippy only)

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
    case "$arg" in
        --quick) QUICK=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

step() { printf '\n==> %s\n' "$*"; }

if [ "$QUICK" -eq 0 ]; then
    step "tier-1: cargo build --release"
    cargo build --release
fi

step "tier-1: cargo test -q"
cargo test -q

step "tier-1: cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

# The stress test already ran inside `cargo test`, but there it shares a
# process with every other integration test; re-run it isolated and
# under a hard timeout so a deadlock regression is caught as a failure,
# not as a wedged CI job. 600 s is ~20x its observed runtime.
step "service stress test (isolated, 600 s timeout)"
timeout 600 cargo test --release --test service \
    stress_8_workers_500_jobs_faults_deterministic_no_losses -- --nocapture

# Same rationale for the store's crash-recovery sweeps: they kill the
# store at every byte of a workload (the second with aggressive L0
# sealing plus a forced compaction, so budgets land inside run builds,
# Seal/Merge commit points and the checkpoint rewrite), so a recovery
# regression that loops or hangs must fail the pipeline, not wedge it.
# 300 s is ~30x their combined observed runtime.
step "store crash-recovery sweeps (isolated, 300 s timeout)"
timeout 300 cargo test --release --test store -- --nocapture \
    crash_sweep_recovers_exactly_the_committed_prefix \
    crash_sweep_survives_mid_seal_and_mid_compaction_kills

# Supervision soak: 8 workers × 510 jobs at 8 % deterministic panic
# injection, exact outcome accounting. A containment or respawn
# regression that deadlocks the pool must fail fast, not wedge CI.
# 300 s is ~100x its observed runtime.
step "panic-injection soak (isolated, 300 s timeout)"
timeout 300 cargo test --release --test supervision \
    panic_soak_every_ticket_resolves_and_panics_are_accounted -- --nocapture

# Codec fuzz: random payloads, mutated real blobs and lying headers
# through every decoder (including the frame container). A
# reintroduced unbounded preallocation or decode loop shows up as a
# timeout/OOM here. 600 s is ~20x its observed debug-profile runtime
# (release is much faster).
step "codec fuzz suite (isolated, 600 s timeout)"
timeout 600 cargo test --release --test fuzz_codecs -- --nocapture

# Speed-tier differential suite under forced-scalar dispatch: tier-1's
# `cargo test` already ran these differentials on this host's best SIMD
# tier; this pass sets DNACOMP_FORCE_SCALAR=1 so the portable fallback
# kernels are proven byte-identical to the bytewise oracles too — they
# are what a non-x86 or feature-poor host would execute. The v1-blob
# compat fixtures ride along in the same suite. 300 s is ~40x its
# observed runtime.
step "speed-tier differentials, forced scalar (isolated, 300 s timeout)"
DNACOMP_FORCE_SCALAR=1 timeout 300 cargo test --release --test speed_tier -- --nocapture

# Loopback chaos soak: concurrent clients at 0/5/25 % injected network
# faults plus malformed-frame fuzzing against the TCP front-end. Every
# operation is deadline-bounded by design, so a hang regression (a
# connection that outlives its budgets, a shutdown that never drains)
# must fail the pipeline, not wedge it. 300 s is ~100x its observed
# runtime.
step "loopback chaos soak (isolated, 300 s timeout)"
timeout 300 cargo test --release -p dnacomp-server --test net -- --nocapture \
    chaos_soak_survives_fault_injected_clients \
    malformed_frames_get_typed_replies_then_the_axe

# Router chaos soak: a 3-shard cluster behind the consistent-hash
# router, fault-injected clients, one shard killed and restarted
# mid-run. Proves the failure discipline end-to-end: exactly one typed
# reply per request, no acknowledged Put lost, strike-based ejection
# and re-admission both observed. Every op is deadline-bounded, so a
# wedged forward path must fail here, not hang CI. 300 s is ~100x its
# observed runtime.
step "router chaos soak (isolated, 300 s timeout)"
timeout 300 cargo test --release -p dnacomp-server --test route -- --nocapture \
    chaos_soak_with_shard_kill_loses_no_acked_puts \
    gets_via_router_are_byte_identical_to_direct_shard_gets

# Replicated chaos soak: 3 shards at R=3/W=2, one shard killed mid-run
# and LEFT DOWN. Proves the replication guarantees end-to-end: every
# quorum-acked Put stays readable byte-identical with the shard still
# down, quorum acks never lie (quorum_failures == 0), and after the
# shard revives, hinted handoff plus the anti-entropy digest sweep
# converge it back to zero drift with exact counter accounting
# (hints drained == queued, dropped == 0, second repair finds nothing).
# 300 s is ~50x its observed runtime.
step "replicated chaos soak (isolated, 300 s timeout)"
timeout 300 cargo test --release -p dnacomp-server --test route -- --nocapture \
    quorum_acked_puts_survive_one_shard_down_and_self_heal \
    read_repair_restores_a_divergent_replica \
    rebalance_resumes_from_a_persisted_cursor_with_exact_accounting

# Wire-path throughput gate: the same synthetic workload as
# bench-serve, but every job crosses real loopback TCP. Asserts exact
# job accounting (completed + refused == jobs) and zero protocol
# errors; 300 s bounds a wedged server. Skipped under --quick (needs
# the release binary).
if [ "$QUICK" -eq 0 ]; then
    step "wire throughput gate: dnacomp bench-serve --listen (300 s timeout)"
    timeout 300 cargo run --release --quiet --bin dnacomp -- bench-serve \
        --listen 127.0.0.1:0 --clients 4 --workers 4 --files 12 --contexts 4 \
        --repeats 1 --out BENCH_net.json
fi

# Routed-cluster throughput gate: the bench-serve workload pushed
# through the router at 1 and 3 shards, with clients held above one
# shard's back-end connection budget. The headline ratio must clear
# 1.5x (the checked-in artifact shows >= 2x; the gate leaves margin
# for loaded CI machines). Exact accounting is asserted inside the
# bench itself. Skipped under --quick (needs the release binary).
if [ "$QUICK" -eq 0 ]; then
    step "routed throughput gate: dnacomp bench-serve --route (300 s timeout)"
    timeout 300 cargo run --release --quiet --bin dnacomp -- bench-serve \
        --route --out /tmp/BENCH_route_ci.json
    speedup=$(grep -o '"speedup_3_vs_1":[0-9.]*' /tmp/BENCH_route_ci.json \
        | cut -d: -f2)
    echo "routed speedup 3 vs 1: ${speedup}x"
    awk -v s="$speedup" 'BEGIN { exit (s >= 1.5) ? 0 : 1 }' || {
        echo "routed speedup ${speedup}x below the 1.5x floor" >&2
        exit 1
    }
fi

# Replicated throughput gate: the same routed workload at 3 shards
# with R=3/W=2. Re-checked from the artifact: every completed write
# must have committed on at least the 2-of-3 quorum — amplification
# >= 2.0 with zero quorum failures — proving replication fan-out is
# real, not bookkeeping. Skipped under --quick (needs the release
# binary).
if [ "$QUICK" -eq 0 ]; then
    step "replicated throughput gate: bench-serve --route --replicas 3 (300 s timeout)"
    timeout 300 cargo run --release --quiet --bin dnacomp -- bench-serve \
        --route --shards 3 --replicas 3 --write-quorum 2 \
        --out /tmp/BENCH_route_repl.json
    wamp=$(grep -o '"write_amplification":[0-9.]*' /tmp/BENCH_route_repl.json \
        | cut -d: -f2)
    qfail=$(grep -o '"quorum_failures":[0-9]*' /tmp/BENCH_route_repl.json \
        | cut -d: -f2)
    echo "replicated write amplification: ${wamp} (quorum failures: ${qfail})"
    awk -v w="$wamp" 'BEGIN { exit (w >= 2.0) ? 0 : 1 }' || {
        echo "write amplification ${wamp} below the 2.0 quorum floor" >&2
        exit 1
    }
    [ "$qfail" = "0" ] || {
        echo "replicated bench recorded ${qfail} quorum failure(s)" >&2
        exit 1
    }
fi

# Perf smoke gate: `bench-algos --quick` compresses a small corpus with
# every algorithm serially AND block-parallel, asserting round-trips,
# parallel/serial frame-byte equality, a build-profile-scaled
# kernel-throughput floor, the rANS-vs-arithmetic speed-tier floor
# (release >= 1.5x, debug >= 0.8x on the same CTW pipeline), and — in
# release on SIMD-capable hosts — that the dispatched pack/unpack and
# match-extension kernels beat the portable baselines they replace.
# The report records `cpu_features` so a scalar-fallback run is never
# mistaken for a vectorised one. Under --quick the debug binary runs
# (floors scale down accordingly); the full gate uses the release
# binary already built by tier-1. 120 s is ~100x its observed runtime.
step "perf smoke gate: dnacomp bench-algos --quick (120 s timeout)"
if [ "$QUICK" -eq 0 ]; then
    timeout 120 cargo run --release --quiet --bin dnacomp -- bench-algos --quick
else
    timeout 120 cargo run --quiet --bin dnacomp -- bench-algos --quick
fi

# Storage-engine gate: `bench-store --quick` builds real stores and
# asserts the LSM engine's deterministic claims — manifest cost per
# object shrinks with store size after compaction (sub-linear opens),
# a hot sweep hits the block cache, and group commit covers many
# appends with few fsync batches. Wall-clock throughputs are reported
# but not gated (CI boxes are poor stopwatches). The extra gate below
# re-checks the sub-linearity ratio from the artifact, mirroring the
# routed-throughput gate. 300 s is ~100x its observed runtime.
step "storage engine gate: dnacomp bench-store --quick (300 s timeout)"
if [ "$QUICK" -eq 0 ]; then
    timeout 300 cargo run --release --quiet --bin dnacomp -- bench-store \
        --quick --out /tmp/BENCH_store_ci.json
else
    timeout 300 cargo run --quiet --bin dnacomp -- bench-store \
        --quick --out /tmp/BENCH_store_ci.json
fi
ratio=$(grep -o '"open_cost_ratio":[0-9.]*' /tmp/BENCH_store_ci.json \
    | cut -d: -f2)
echo "store open cost ratio (large vs small): ${ratio}"
awk -v r="$ratio" 'BEGIN { exit (r < 0.9) ? 0 : 1 }' || {
    echo "store open cost ratio ${ratio} not under the 0.9 ceiling" >&2
    exit 1
}

step "all gates passed"
