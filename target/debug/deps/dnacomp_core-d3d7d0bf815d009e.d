/root/repo/target/debug/deps/dnacomp_core-d3d7d0bf815d009e.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/debug/deps/libdnacomp_core-d3d7d0bf815d009e.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/debug/deps/libdnacomp_core-d3d7d0bf815d009e.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/dataset.rs:
crates/core/src/experiment.rs:
crates/core/src/framework.rs:
crates/core/src/labeler.rs:
