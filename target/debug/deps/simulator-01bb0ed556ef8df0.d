/root/repo/target/debug/deps/simulator-01bb0ed556ef8df0.d: tests/simulator.rs

/root/repo/target/debug/deps/simulator-01bb0ed556ef8df0: tests/simulator.rs

tests/simulator.rs:
