/root/repo/target/debug/deps/dnacomp_seq-e3b23af320fe6a98.d: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs

/root/repo/target/debug/deps/dnacomp_seq-e3b23af320fe6a98: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs

crates/seq/src/lib.rs:
crates/seq/src/base.rs:
crates/seq/src/corpus.rs:
crates/seq/src/error.rs:
crates/seq/src/fasta.rs:
crates/seq/src/fastq.rs:
crates/seq/src/gen.rs:
crates/seq/src/kmer.rs:
crates/seq/src/packed.rs:
crates/seq/src/stats.rs:
