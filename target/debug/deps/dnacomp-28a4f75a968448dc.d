/root/repo/target/debug/deps/dnacomp-28a4f75a968448dc.d: src/lib.rs

/root/repo/target/debug/deps/libdnacomp-28a4f75a968448dc.rlib: src/lib.rs

/root/repo/target/debug/deps/libdnacomp-28a4f75a968448dc.rmeta: src/lib.rs

src/lib.rs:
