/root/repo/target/debug/deps/dnacomp_bench-e4768f2fe612fec9.d: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdnacomp_bench-e4768f2fe612fec9.rlib: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdnacomp_bench-e4768f2fe612fec9.rmeta: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/charts.rs:
crates/bench/src/ext.rs:
crates/bench/src/figures.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/tables.rs:
