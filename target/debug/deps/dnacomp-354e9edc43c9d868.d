/root/repo/target/debug/deps/dnacomp-354e9edc43c9d868.d: src/bin/dnacomp.rs

/root/repo/target/debug/deps/dnacomp-354e9edc43c9d868: src/bin/dnacomp.rs

src/bin/dnacomp.rs:
