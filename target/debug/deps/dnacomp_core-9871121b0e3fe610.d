/root/repo/target/debug/deps/dnacomp_core-9871121b0e3fe610.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/debug/deps/libdnacomp_core-9871121b0e3fe610.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/debug/deps/libdnacomp_core-9871121b0e3fe610.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/dataset.rs:
crates/core/src/experiment.rs:
crates/core/src/framework.rs:
crates/core/src/labeler.rs:
