/root/repo/target/debug/deps/chaos-a542dfabac05746d.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-a542dfabac05746d: tests/chaos.rs

tests/chaos.rs:
