/root/repo/target/debug/deps/repro-7fb62aeefa7def38.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-7fb62aeefa7def38: crates/bench/src/main.rs

crates/bench/src/main.rs:
