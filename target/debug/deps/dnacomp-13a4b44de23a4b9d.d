/root/repo/target/debug/deps/dnacomp-13a4b44de23a4b9d.d: src/lib.rs

/root/repo/target/debug/deps/libdnacomp-13a4b44de23a4b9d.rlib: src/lib.rs

/root/repo/target/debug/deps/libdnacomp-13a4b44de23a4b9d.rmeta: src/lib.rs

src/lib.rs:
