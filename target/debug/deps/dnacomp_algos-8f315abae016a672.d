/root/repo/target/debug/deps/dnacomp_algos-8f315abae016a672.d: crates/algos/src/lib.rs crates/algos/src/biocompress.rs crates/algos/src/cfact.rs crates/algos/src/blob.rs crates/algos/src/ctw.rs crates/algos/src/ctwlz.rs crates/algos/src/dnac.rs crates/algos/src/dnacompress.rs crates/algos/src/dnapack.rs crates/algos/src/dnax.rs crates/algos/src/gencompress.rs crates/algos/src/gsqz.rs crates/algos/src/gzip.rs crates/algos/src/rawpack.rs crates/algos/src/stats.rs crates/algos/src/refcomp.rs crates/algos/src/sequitur.rs crates/algos/src/xm.rs

/root/repo/target/debug/deps/libdnacomp_algos-8f315abae016a672.rlib: crates/algos/src/lib.rs crates/algos/src/biocompress.rs crates/algos/src/cfact.rs crates/algos/src/blob.rs crates/algos/src/ctw.rs crates/algos/src/ctwlz.rs crates/algos/src/dnac.rs crates/algos/src/dnacompress.rs crates/algos/src/dnapack.rs crates/algos/src/dnax.rs crates/algos/src/gencompress.rs crates/algos/src/gsqz.rs crates/algos/src/gzip.rs crates/algos/src/rawpack.rs crates/algos/src/stats.rs crates/algos/src/refcomp.rs crates/algos/src/sequitur.rs crates/algos/src/xm.rs

/root/repo/target/debug/deps/libdnacomp_algos-8f315abae016a672.rmeta: crates/algos/src/lib.rs crates/algos/src/biocompress.rs crates/algos/src/cfact.rs crates/algos/src/blob.rs crates/algos/src/ctw.rs crates/algos/src/ctwlz.rs crates/algos/src/dnac.rs crates/algos/src/dnacompress.rs crates/algos/src/dnapack.rs crates/algos/src/dnax.rs crates/algos/src/gencompress.rs crates/algos/src/gsqz.rs crates/algos/src/gzip.rs crates/algos/src/rawpack.rs crates/algos/src/stats.rs crates/algos/src/refcomp.rs crates/algos/src/sequitur.rs crates/algos/src/xm.rs

crates/algos/src/lib.rs:
crates/algos/src/biocompress.rs:
crates/algos/src/cfact.rs:
crates/algos/src/blob.rs:
crates/algos/src/ctw.rs:
crates/algos/src/ctwlz.rs:
crates/algos/src/dnac.rs:
crates/algos/src/dnacompress.rs:
crates/algos/src/dnapack.rs:
crates/algos/src/dnax.rs:
crates/algos/src/gencompress.rs:
crates/algos/src/gsqz.rs:
crates/algos/src/gzip.rs:
crates/algos/src/rawpack.rs:
crates/algos/src/stats.rs:
crates/algos/src/refcomp.rs:
crates/algos/src/sequitur.rs:
crates/algos/src/xm.rs:
