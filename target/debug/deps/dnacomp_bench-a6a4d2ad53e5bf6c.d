/root/repo/target/debug/deps/dnacomp_bench-a6a4d2ad53e5bf6c.d: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdnacomp_bench-a6a4d2ad53e5bf6c.rlib: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libdnacomp_bench-a6a4d2ad53e5bf6c.rmeta: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/charts.rs:
crates/bench/src/ext.rs:
crates/bench/src/figures.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/tables.rs:
