/root/repo/target/debug/deps/dnacomp_codec-7ad7460671b76ed6.d: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_codec-7ad7460671b76ed6.rmeta: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs Cargo.toml

crates/codec/src/lib.rs:
crates/codec/src/arith.rs:
crates/codec/src/bitio.rs:
crates/codec/src/checksum.rs:
crates/codec/src/ctw.rs:
crates/codec/src/edit.rs:
crates/codec/src/error.rs:
crates/codec/src/fibonacci.rs:
crates/codec/src/huffman.rs:
crates/codec/src/lz.rs:
crates/codec/src/models.rs:
crates/codec/src/repeats.rs:
crates/codec/src/spaced.rs:
crates/codec/src/suffix.rs:
crates/codec/src/varint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
