/root/repo/target/debug/deps/dnacomp-8be8b7bd5ea09fdd.d: src/lib.rs

/root/repo/target/debug/deps/dnacomp-8be8b7bd5ea09fdd: src/lib.rs

src/lib.rs:
