/root/repo/target/debug/deps/dnacomp_core-32f5d4bc0a8517fa.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/debug/deps/dnacomp_core-32f5d4bc0a8517fa: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/dataset.rs:
crates/core/src/experiment.rs:
crates/core/src/framework.rs:
crates/core/src/labeler.rs:
