/root/repo/target/debug/deps/dnacomp_cloud-d362ec209c6d909d.d: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_cloud-d362ec209c6d909d.rmeta: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs Cargo.toml

crates/cloud/src/lib.rs:
crates/cloud/src/ace.rs:
crates/cloud/src/blobstore.rs:
crates/cloud/src/error.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/grid.rs:
crates/cloud/src/machine.rs:
crates/cloud/src/perf.rs:
crates/cloud/src/retry.rs:
crates/cloud/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
