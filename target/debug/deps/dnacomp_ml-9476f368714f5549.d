/root/repo/target/debug/deps/dnacomp_ml-9476f368714f5549.d: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libdnacomp_ml-9476f368714f5549.rlib: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libdnacomp_ml-9476f368714f5549.rmeta: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/cart.rs:
crates/ml/src/chaid.rs:
crates/ml/src/dataset.rs:
crates/ml/src/metrics.rs:
crates/ml/src/stats.rs:
crates/ml/src/tree.rs:
