/root/repo/target/debug/deps/readsets-2767a14112500139.d: tests/readsets.rs Cargo.toml

/root/repo/target/debug/deps/libreadsets-2767a14112500139.rmeta: tests/readsets.rs Cargo.toml

tests/readsets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
