/root/repo/target/debug/deps/dnacomp-be02552b779d290b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp-be02552b779d290b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
