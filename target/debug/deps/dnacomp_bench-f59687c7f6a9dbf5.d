/root/repo/target/debug/deps/dnacomp_bench-f59687c7f6a9dbf5.d: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/dnacomp_bench-f59687c7f6a9dbf5: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/charts.rs:
crates/bench/src/ext.rs:
crates/bench/src/figures.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/tables.rs:
