/root/repo/target/debug/deps/dnacomp_seq-9e7717d0a0e038f8.d: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_seq-9e7717d0a0e038f8.rmeta: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs Cargo.toml

crates/seq/src/lib.rs:
crates/seq/src/base.rs:
crates/seq/src/corpus.rs:
crates/seq/src/error.rs:
crates/seq/src/fasta.rs:
crates/seq/src/fastq.rs:
crates/seq/src/gen.rs:
crates/seq/src/kmer.rs:
crates/seq/src/packed.rs:
crates/seq/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
