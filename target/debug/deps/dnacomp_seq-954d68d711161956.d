/root/repo/target/debug/deps/dnacomp_seq-954d68d711161956.d: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs

/root/repo/target/debug/deps/libdnacomp_seq-954d68d711161956.rlib: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs

/root/repo/target/debug/deps/libdnacomp_seq-954d68d711161956.rmeta: crates/seq/src/lib.rs crates/seq/src/base.rs crates/seq/src/corpus.rs crates/seq/src/error.rs crates/seq/src/fasta.rs crates/seq/src/fastq.rs crates/seq/src/gen.rs crates/seq/src/kmer.rs crates/seq/src/packed.rs crates/seq/src/stats.rs

crates/seq/src/lib.rs:
crates/seq/src/base.rs:
crates/seq/src/corpus.rs:
crates/seq/src/error.rs:
crates/seq/src/fasta.rs:
crates/seq/src/fastq.rs:
crates/seq/src/gen.rs:
crates/seq/src/kmer.rs:
crates/seq/src/packed.rs:
crates/seq/src/stats.rs:
