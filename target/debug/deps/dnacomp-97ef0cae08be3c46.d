/root/repo/target/debug/deps/dnacomp-97ef0cae08be3c46.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp-97ef0cae08be3c46.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
