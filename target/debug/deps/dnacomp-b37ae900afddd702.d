/root/repo/target/debug/deps/dnacomp-b37ae900afddd702.d: src/bin/dnacomp.rs

/root/repo/target/debug/deps/dnacomp-b37ae900afddd702: src/bin/dnacomp.rs

src/bin/dnacomp.rs:
