/root/repo/target/debug/deps/roundtrip-0fc03a5b64351dc9.d: tests/roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libroundtrip-0fc03a5b64351dc9.rmeta: tests/roundtrip.rs Cargo.toml

tests/roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
