/root/repo/target/debug/deps/selector-41dcd060b0d5140d.d: crates/bench/benches/selector.rs Cargo.toml

/root/repo/target/debug/deps/libselector-41dcd060b0d5140d.rmeta: crates/bench/benches/selector.rs Cargo.toml

crates/bench/benches/selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
