/root/repo/target/debug/deps/paper_claims-a8bdee3d30e22e74.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-a8bdee3d30e22e74: tests/paper_claims.rs

tests/paper_claims.rs:
