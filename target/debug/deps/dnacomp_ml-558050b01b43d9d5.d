/root/repo/target/debug/deps/dnacomp_ml-558050b01b43d9d5.d: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_ml-558050b01b43d9d5.rmeta: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/cart.rs:
crates/ml/src/chaid.rs:
crates/ml/src/dataset.rs:
crates/ml/src/metrics.rs:
crates/ml/src/stats.rs:
crates/ml/src/tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
