/root/repo/target/debug/deps/dnacomp_bench-e538bf14ba869b03.d: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_bench-e538bf14ba869b03.rmeta: crates/bench/src/lib.rs crates/bench/src/charts.rs crates/bench/src/ext.rs crates/bench/src/figures.rs crates/bench/src/pipeline.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/charts.rs:
crates/bench/src/ext.rs:
crates/bench/src/figures.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
