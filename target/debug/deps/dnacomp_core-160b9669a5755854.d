/root/repo/target/debug/deps/dnacomp_core-160b9669a5755854.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp_core-160b9669a5755854.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/dataset.rs:
crates/core/src/experiment.rs:
crates/core/src/framework.rs:
crates/core/src/labeler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
