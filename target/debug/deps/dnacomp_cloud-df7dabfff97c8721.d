/root/repo/target/debug/deps/dnacomp_cloud-df7dabfff97c8721.d: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/dnacomp_cloud-df7dabfff97c8721: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/ace.rs:
crates/cloud/src/blobstore.rs:
crates/cloud/src/error.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/grid.rs:
crates/cloud/src/machine.rs:
crates/cloud/src/perf.rs:
crates/cloud/src/retry.rs:
crates/cloud/src/sim.rs:
