/root/repo/target/debug/deps/dnacomp_ml-2a18f71ede9d38a7.d: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libdnacomp_ml-2a18f71ede9d38a7.rlib: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/debug/deps/libdnacomp_ml-2a18f71ede9d38a7.rmeta: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/cart.rs:
crates/ml/src/chaid.rs:
crates/ml/src/dataset.rs:
crates/ml/src/metrics.rs:
crates/ml/src/stats.rs:
crates/ml/src/tree.rs:
