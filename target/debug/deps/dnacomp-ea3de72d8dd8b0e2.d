/root/repo/target/debug/deps/dnacomp-ea3de72d8dd8b0e2.d: src/bin/dnacomp.rs

/root/repo/target/debug/deps/dnacomp-ea3de72d8dd8b0e2: src/bin/dnacomp.rs

src/bin/dnacomp.rs:
