/root/repo/target/debug/deps/readsets-4c9afa8b1b2539a5.d: tests/readsets.rs

/root/repo/target/debug/deps/readsets-4c9afa8b1b2539a5: tests/readsets.rs

tests/readsets.rs:
