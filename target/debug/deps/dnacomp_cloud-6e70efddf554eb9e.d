/root/repo/target/debug/deps/dnacomp_cloud-6e70efddf554eb9e.d: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libdnacomp_cloud-6e70efddf554eb9e.rlib: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

/root/repo/target/debug/deps/libdnacomp_cloud-6e70efddf554eb9e.rmeta: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/ace.rs:
crates/cloud/src/blobstore.rs:
crates/cloud/src/error.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/grid.rs:
crates/cloud/src/machine.rs:
crates/cloud/src/perf.rs:
crates/cloud/src/retry.rs:
crates/cloud/src/sim.rs:
