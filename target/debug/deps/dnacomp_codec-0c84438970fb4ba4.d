/root/repo/target/debug/deps/dnacomp_codec-0c84438970fb4ba4.d: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs

/root/repo/target/debug/deps/dnacomp_codec-0c84438970fb4ba4: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs

crates/codec/src/lib.rs:
crates/codec/src/arith.rs:
crates/codec/src/bitio.rs:
crates/codec/src/checksum.rs:
crates/codec/src/ctw.rs:
crates/codec/src/edit.rs:
crates/codec/src/error.rs:
crates/codec/src/fibonacci.rs:
crates/codec/src/huffman.rs:
crates/codec/src/lz.rs:
crates/codec/src/models.rs:
crates/codec/src/repeats.rs:
crates/codec/src/spaced.rs:
crates/codec/src/suffix.rs:
crates/codec/src/varint.rs:
