/root/repo/target/debug/deps/properties-55eb026e6177351e.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-55eb026e6177351e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
