/root/repo/target/debug/deps/roundtrip-bb98ef4580f9507c.d: tests/roundtrip.rs

/root/repo/target/debug/deps/roundtrip-bb98ef4580f9507c: tests/roundtrip.rs

tests/roundtrip.rs:
