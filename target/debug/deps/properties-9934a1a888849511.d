/root/repo/target/debug/deps/properties-9934a1a888849511.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9934a1a888849511: tests/properties.rs

tests/properties.rs:
