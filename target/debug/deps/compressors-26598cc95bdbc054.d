/root/repo/target/debug/deps/compressors-26598cc95bdbc054.d: crates/bench/benches/compressors.rs Cargo.toml

/root/repo/target/debug/deps/libcompressors-26598cc95bdbc054.rmeta: crates/bench/benches/compressors.rs Cargo.toml

crates/bench/benches/compressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
