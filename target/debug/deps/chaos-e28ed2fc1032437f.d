/root/repo/target/debug/deps/chaos-e28ed2fc1032437f.d: tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-e28ed2fc1032437f.rmeta: tests/chaos.rs Cargo.toml

tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
