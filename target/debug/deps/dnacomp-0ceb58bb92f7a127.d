/root/repo/target/debug/deps/dnacomp-0ceb58bb92f7a127.d: src/bin/dnacomp.rs Cargo.toml

/root/repo/target/debug/deps/libdnacomp-0ceb58bb92f7a127.rmeta: src/bin/dnacomp.rs Cargo.toml

src/bin/dnacomp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
