/root/repo/target/debug/deps/simulator-f2314f71d1aba381.d: tests/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-f2314f71d1aba381.rmeta: tests/simulator.rs Cargo.toml

tests/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
