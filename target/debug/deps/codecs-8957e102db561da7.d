/root/repo/target/debug/deps/codecs-8957e102db561da7.d: crates/bench/benches/codecs.rs Cargo.toml

/root/repo/target/debug/deps/libcodecs-8957e102db561da7.rmeta: crates/bench/benches/codecs.rs Cargo.toml

crates/bench/benches/codecs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
