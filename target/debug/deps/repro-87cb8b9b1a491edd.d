/root/repo/target/debug/deps/repro-87cb8b9b1a491edd.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/repro-87cb8b9b1a491edd: crates/bench/src/main.rs

crates/bench/src/main.rs:
