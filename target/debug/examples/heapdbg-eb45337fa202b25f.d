/root/repo/target/debug/examples/heapdbg-eb45337fa202b25f.d: examples/heapdbg.rs

/root/repo/target/debug/examples/heapdbg-eb45337fa202b25f: examples/heapdbg.rs

examples/heapdbg.rs:
