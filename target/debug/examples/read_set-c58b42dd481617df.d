/root/repo/target/debug/examples/read_set-c58b42dd481617df.d: examples/read_set.rs

/root/repo/target/debug/examples/read_set-c58b42dd481617df: examples/read_set.rs

examples/read_set.rs:
