/root/repo/target/debug/examples/cloud_exchange-0e0219bd834f50c1.d: examples/cloud_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libcloud_exchange-0e0219bd834f50c1.rmeta: examples/cloud_exchange.rs Cargo.toml

examples/cloud_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
