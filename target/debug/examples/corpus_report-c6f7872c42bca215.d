/root/repo/target/debug/examples/corpus_report-c6f7872c42bca215.d: examples/corpus_report.rs

/root/repo/target/debug/examples/corpus_report-c6f7872c42bca215: examples/corpus_report.rs

examples/corpus_report.rs:
