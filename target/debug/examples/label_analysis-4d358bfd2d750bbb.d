/root/repo/target/debug/examples/label_analysis-4d358bfd2d750bbb.d: crates/core/examples/label_analysis.rs Cargo.toml

/root/repo/target/debug/examples/liblabel_analysis-4d358bfd2d750bbb.rmeta: crates/core/examples/label_analysis.rs Cargo.toml

crates/core/examples/label_analysis.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
