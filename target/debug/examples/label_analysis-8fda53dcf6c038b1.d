/root/repo/target/debug/examples/label_analysis-8fda53dcf6c038b1.d: crates/core/examples/label_analysis.rs

/root/repo/target/debug/examples/label_analysis-8fda53dcf6c038b1: crates/core/examples/label_analysis.rs

crates/core/examples/label_analysis.rs:
