/root/repo/target/debug/examples/read_set-c08b272d5c453fcf.d: examples/read_set.rs Cargo.toml

/root/repo/target/debug/examples/libread_set-c08b272d5c453fcf.rmeta: examples/read_set.rs Cargo.toml

examples/read_set.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
