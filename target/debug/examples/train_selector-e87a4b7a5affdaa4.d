/root/repo/target/debug/examples/train_selector-e87a4b7a5affdaa4.d: examples/train_selector.rs Cargo.toml

/root/repo/target/debug/examples/libtrain_selector-e87a4b7a5affdaa4.rmeta: examples/train_selector.rs Cargo.toml

examples/train_selector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
