/root/repo/target/debug/examples/train_selector-f77a8305db5a9dae.d: examples/train_selector.rs

/root/repo/target/debug/examples/train_selector-f77a8305db5a9dae: examples/train_selector.rs

examples/train_selector.rs:
