/root/repo/target/debug/examples/quickstart-1d7d4a5e5e700ccd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1d7d4a5e5e700ccd: examples/quickstart.rs

examples/quickstart.rs:
