/root/repo/target/debug/examples/cloud_exchange-2bc593c6d25384b5.d: examples/cloud_exchange.rs

/root/repo/target/debug/examples/cloud_exchange-2bc593c6d25384b5: examples/cloud_exchange.rs

examples/cloud_exchange.rs:
