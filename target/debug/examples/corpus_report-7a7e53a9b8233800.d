/root/repo/target/debug/examples/corpus_report-7a7e53a9b8233800.d: examples/corpus_report.rs Cargo.toml

/root/repo/target/debug/examples/libcorpus_report-7a7e53a9b8233800.rmeta: examples/corpus_report.rs Cargo.toml

examples/corpus_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
