/root/repo/target/release/deps/dnacomp-1886f0733e15d7fc.d: src/bin/dnacomp.rs

/root/repo/target/release/deps/dnacomp-1886f0733e15d7fc: src/bin/dnacomp.rs

src/bin/dnacomp.rs:
