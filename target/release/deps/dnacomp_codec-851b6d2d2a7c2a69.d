/root/repo/target/release/deps/dnacomp_codec-851b6d2d2a7c2a69.d: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs

/root/repo/target/release/deps/libdnacomp_codec-851b6d2d2a7c2a69.rlib: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs

/root/repo/target/release/deps/libdnacomp_codec-851b6d2d2a7c2a69.rmeta: crates/codec/src/lib.rs crates/codec/src/arith.rs crates/codec/src/bitio.rs crates/codec/src/checksum.rs crates/codec/src/ctw.rs crates/codec/src/edit.rs crates/codec/src/error.rs crates/codec/src/fibonacci.rs crates/codec/src/huffman.rs crates/codec/src/lz.rs crates/codec/src/models.rs crates/codec/src/repeats.rs crates/codec/src/spaced.rs crates/codec/src/suffix.rs crates/codec/src/varint.rs

crates/codec/src/lib.rs:
crates/codec/src/arith.rs:
crates/codec/src/bitio.rs:
crates/codec/src/checksum.rs:
crates/codec/src/ctw.rs:
crates/codec/src/edit.rs:
crates/codec/src/error.rs:
crates/codec/src/fibonacci.rs:
crates/codec/src/huffman.rs:
crates/codec/src/lz.rs:
crates/codec/src/models.rs:
crates/codec/src/repeats.rs:
crates/codec/src/spaced.rs:
crates/codec/src/suffix.rs:
crates/codec/src/varint.rs:
