/root/repo/target/release/deps/dnacomp_cloud-166f79360b8fa7bc.d: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libdnacomp_cloud-166f79360b8fa7bc.rlib: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

/root/repo/target/release/deps/libdnacomp_cloud-166f79360b8fa7bc.rmeta: crates/cloud/src/lib.rs crates/cloud/src/ace.rs crates/cloud/src/blobstore.rs crates/cloud/src/error.rs crates/cloud/src/fault.rs crates/cloud/src/grid.rs crates/cloud/src/machine.rs crates/cloud/src/perf.rs crates/cloud/src/retry.rs crates/cloud/src/sim.rs

crates/cloud/src/lib.rs:
crates/cloud/src/ace.rs:
crates/cloud/src/blobstore.rs:
crates/cloud/src/error.rs:
crates/cloud/src/fault.rs:
crates/cloud/src/grid.rs:
crates/cloud/src/machine.rs:
crates/cloud/src/perf.rs:
crates/cloud/src/retry.rs:
crates/cloud/src/sim.rs:
