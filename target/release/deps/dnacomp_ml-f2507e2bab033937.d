/root/repo/target/release/deps/dnacomp_ml-f2507e2bab033937.d: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libdnacomp_ml-f2507e2bab033937.rlib: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

/root/repo/target/release/deps/libdnacomp_ml-f2507e2bab033937.rmeta: crates/ml/src/lib.rs crates/ml/src/cart.rs crates/ml/src/chaid.rs crates/ml/src/dataset.rs crates/ml/src/metrics.rs crates/ml/src/stats.rs crates/ml/src/tree.rs

crates/ml/src/lib.rs:
crates/ml/src/cart.rs:
crates/ml/src/chaid.rs:
crates/ml/src/dataset.rs:
crates/ml/src/metrics.rs:
crates/ml/src/stats.rs:
crates/ml/src/tree.rs:
