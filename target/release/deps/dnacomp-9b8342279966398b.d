/root/repo/target/release/deps/dnacomp-9b8342279966398b.d: src/lib.rs

/root/repo/target/release/deps/libdnacomp-9b8342279966398b.rlib: src/lib.rs

/root/repo/target/release/deps/libdnacomp-9b8342279966398b.rmeta: src/lib.rs

src/lib.rs:
