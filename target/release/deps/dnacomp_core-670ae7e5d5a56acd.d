/root/repo/target/release/deps/dnacomp_core-670ae7e5d5a56acd.d: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/release/deps/libdnacomp_core-670ae7e5d5a56acd.rlib: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

/root/repo/target/release/deps/libdnacomp_core-670ae7e5d5a56acd.rmeta: crates/core/src/lib.rs crates/core/src/context.rs crates/core/src/dataset.rs crates/core/src/experiment.rs crates/core/src/framework.rs crates/core/src/labeler.rs

crates/core/src/lib.rs:
crates/core/src/context.rs:
crates/core/src/dataset.rs:
crates/core/src/experiment.rs:
crates/core/src/framework.rs:
crates/core/src/labeler.rs:
