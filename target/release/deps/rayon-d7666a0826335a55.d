/root/repo/target/release/deps/rayon-d7666a0826335a55.d: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d7666a0826335a55.rlib: vendor/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-d7666a0826335a55.rmeta: vendor/rayon/src/lib.rs

vendor/rayon/src/lib.rs:
