/root/repo/target/release/examples/cloud_exchange-f344bfa0591f7cb3.d: examples/cloud_exchange.rs

/root/repo/target/release/examples/cloud_exchange-f344bfa0591f7cb3: examples/cloud_exchange.rs

examples/cloud_exchange.rs:
