/root/repo/target/release/examples/chaos_probe-12ab6e7b6a0534c7.d: examples/chaos_probe.rs

/root/repo/target/release/examples/chaos_probe-12ab6e7b6a0534c7: examples/chaos_probe.rs

examples/chaos_probe.rs:
