//! `dnacomp` — command-line front end.
//!
//! ```text
//! dnacomp gen --len 100000 --seed 7 --model bacterial out.fa
//! dnacomp compress -a dnax in.fa out.dx
//! dnacomp decompress in.dx out.fa
//! dnacomp info in.dx
//! dnacomp decide --ram-mb 2048 --cpu-mhz 2393 --bw-mbps 2 --file-kb 120
//! dnacomp store put --dir ./repo in.fa
//! ```
//!
//! `decide` trains the selector on a reduced measurement grid on first
//! use (a few seconds) and prints the chosen algorithm plus the learned
//! rules that fired. `store` manages a crash-safe content-addressed
//! repository of compressed sequences.
//!
//! Exit codes: `0` success, `1` runtime failure (missing input file,
//! unknown store key, corruption found), `2` usage error (bad flags or
//! arguments; prints the usage text).

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob, FramedBlob, ParallelCompressor, TaskPool};
use dnacomp::cloud::{context_grid, MachineSpec, PerfModel};
use dnacomp::core::{build_rows, label_rows, measure_corpus, Context, ContextAwareFramework, WeightVector};
use dnacomp::ml::TreeMethod;
use dnacomp::seq::fasta::{write_fasta, Cleanser, Record};
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::corpus::CorpusBuilder;
use dnacomp::seq::PackedSeq;
use dnacomp::server::{
    build_workload, rebalance_resumable, repair, run_algo_bench, run_bench, run_net_bench,
    run_route_bench, run_store_bench, AlgoBenchConfig, BenchConfig, ClientError,
    CompressionService, DlqDir, NetBenchConfig, NetClient, NetConfig, NetServer, Priority,
    Response, Ring, RouteBenchConfig, RouterConfig, RouterServer, ServiceConfig, ShardSpec,
    StoreBenchConfig, DEFAULT_RING_SEED, DEFAULT_VNODES,
};
use dnacomp::store::{ContentKey, SequenceStore, StoreConfig};
use std::process::ExitCode;
use std::sync::Arc;

/// A CLI failure, split by who got it wrong.
#[derive(Debug)]
enum CliError {
    /// The invocation itself is malformed (bad command, flags or
    /// argument shape): exit 2, usage text printed.
    Usage(String),
    /// The invocation was fine but the work failed (missing input
    /// file, unknown store key, corrupt data): exit 1, message only.
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

/// Shorthand for argument-shape errors.
fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  dnacomp gen --len <bases> [--seed <n>] [--model bacterial|repetitive|random] <out.fa>
  dnacomp compress -a <algorithm> [--block-size <bases>] [--threads <n>] <in.fa> <out.dx>
  dnacomp decompress <in.dx> <out.fa>
  dnacomp info <in.dx>
  dnacomp decide --ram-mb <n> --cpu-mhz <n> --bw-mbps <x> --file-kb <x>
  dnacomp serve --workers <n> [--files <n>] [--contexts <n>] [--repeats <n>]
                [--fault-rate <x>] [--panic-rate <x>] [--kill-rate <x>]
                [--shed-above <depth>] [--restart-budget <n>]
                [--quarantine-after <n>] [--dlq-dir <dir>]
                [--store <dir>] [--scrub-ms <n>]
                [--block-size <bases>] [--exchange] [--json]
                [--listen <addr>] [--serve-secs <x>] [--max-conns <n>]
                [--shard-id <n>] [--epoch <n>]
  dnacomp route serve --listen <addr> --shards <addr,addr,…>
                      [--vnodes <n>] [--seed <n>] [--pool <n>]
                      [--replicas <n>] [--write-quorum <n>]
                      [--hint-dir <dir>] [--hint-cap <n>]
                      [--shard-timeout-ms <n>] [--probe-ms <n>]
                      [--max-conns <n>] [--route-secs <x>]
  dnacomp route rebalance --shards <addr,addr,…> [--vnodes <n>] [--seed <n>]
                          [--replicas <n>] [--cursor <path>]
                          [--batch <n>] [--timeout-ms <n>]
  dnacomp route repair --shards <addr,addr,…> [--vnodes <n>] [--seed <n>]
                       [--replicas <n>] [--buckets <n>] [--timeout-ms <n>]
  dnacomp client <ping|metrics|compress|get|stat> --addr <host:port>
                 [--timeout-ms <n>] [--retry <n>]
                 [--priority high|normal|low] [args…]
  dnacomp bench-serve [--workers 1,4,8] [--files <n>] [--contexts <n>]
                      [--repeats <n>] [--block-size <bases>] [--json] [--out <path>]
                      [--listen <addr>] [--clients <n>]
                      [--route] [--shards 1,3] [--pool <n>]
                      [--replicas <n>] [--write-quorum <n>]
  dnacomp bench-algos [--quick] [--threads <n>] [--lanes <n>]
                      [--block-size <bases>] [--json] [--out <path>]
  dnacomp dlq list --dir <dlq-dir> [--json]
  dnacomp dlq replay --dir <dlq-dir> <key>
  dnacomp dlq drop --dir <dlq-dir> <key>
  dnacomp store put --dir <store> [-a <algorithm>] <in.fa>
  dnacomp store get --dir <store> <key> <out.fa>
  dnacomp store stat --dir <store> [<key>]
  dnacomp store verify --dir <store>
  dnacomp store compact --dir <store> [--level <n>]
  dnacomp store scrub --dir <store> [--records <n>]
  dnacomp bench-store [--quick] [--json] [--out <path>] [--dir <dir>]
  dnacomp list
algorithms: gzip, ctw, gencompress, dnax, biocompress2, dnapack-lite, cfact, xm-lite, raw
            (`dnacomp list` prints the full set)
serve replays the synthetic corpus through the concurrent compression
service and prints the metrics registry; with --listen it instead
starts the TCP front-end and serves the wire protocol (--serve-secs
bounds the run; 0 or absent serves until killed). client speaks that
protocol: `ping`, `metrics`, `compress <in.fa>`, `get <key> <out.fa>`,
`stat [<key>]`; connection refused/timeout are runtime errors (exit 1),
and --retry N redials with jittered exponential backoff first — for
compress it also re-sends after a mid-request transport break, which
content addressing makes idempotent (a duplicate commit dedups).
route serve fronts a shard fleet with a consistent-hash router: writes
fan out to --replicas ring successors and ack once --write-quorum
commit, reads fall through the replica set (repairing divergent copies
on the way), misses on a down replica persist hints in --hint-dir that
drain when the shard returns, health probes eject dead shards, and
`client metrics` against the router returns the aggregated per-shard
rollup; route rebalance migrates misplaced keys between shard stores
in checksummed batches after a membership change (resumable via
--cursor); route repair is the anti-entropy sweep: per-shard FNV-1a
digest buckets are compared and only differing buckets ship. serve
--shard-id/--epoch pin a shard's identity for epoch-checked
handshakes.
bench-serve --listen runs the loopback network throughput bench and
writes BENCH_net.json; bench-serve --route sweeps shard counts behind
a router and writes BENCH_route.json. (add --store <dir> to persist
every result; --panic-rate/--kill-rate inject deterministic worker
faults and --dlq-dir persists the quarantine at shutdown; --block-size
compresses big jobs as block-parallel frames on the shared pool);
bench-serve sweeps worker counts and reports wall-clock and simulated
throughput; bench-algos measures per-algorithm compress/decompress
MB/s, single-thread vs block-parallel, plus the 2-bit packing kernels
(--quick is the CI smoke gate: round-trip + throughput-floor asserts);
dlq inspects, replays or drops persisted dead letters; store manages a
crash-safe content-addressed repository of compressed sequences — an
LSM engine with bloom-filtered sorted runs, a block cache, and a
group-committed manifest WAL (`stat` prints the engine counters and
per-level occupancy; `compact --level` reclaims one level surgically;
`scrub` audits run records from disk). bench-store measures open time
vs object count, hot-get throughput with the cache on and off, and put
throughput with and without group commit, writing BENCH_store.json
(--quick is the CI gate).";

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("decide") => cmd_decide(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        Some("bench-algos") => cmd_bench_algos(&args[1..]),
        Some("bench-store") => cmd_bench_store(&args[1..]),
        Some("dlq") => cmd_dlq(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("list") => {
            for alg in Algorithm::HORIZONTAL {
                println!("{}", alg.name());
            }
            Ok(())
        }
        Some(other) => Err(usage(format!("unknown command {other:?}"))),
        None => Err(usage("no command given")),
    }
}

/// Flags that take no value (`--json`, not `--json true`).
const BOOLEAN_FLAGS: [&str; 4] = ["json", "exchange", "quick", "route"];

/// Pull `--flag value` out of an argument list; remaining positionals
/// are returned in order. Flags in [`BOOLEAN_FLAGS`] consume no value
/// and are recorded as `"true"`.
fn parse_flags(args: &[String]) -> (std::collections::HashMap<String, String>, Vec<String>) {
    let mut flags = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_owned(), "true".to_owned());
            } else if let Some(v) = it.next() {
                flags.insert(name.to_owned(), v.clone());
            }
        } else if a == "-a" {
            if let Some(v) = it.next() {
                flags.insert("algorithm".to_owned(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    (flags, positional)
}

fn read_fasta(path: &str) -> Result<PackedSeq, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Cleanser::default()
        .parse_single(&text)
        .map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), CliError> {
    let (flags, pos) = parse_flags(args);
    let out = pos.first().ok_or_else(|| usage("gen: missing output path"))?;
    let len: usize = flags
        .get("len")
        .ok_or_else(|| usage("gen: --len required"))?
        .parse()
        .map_err(|e| usage(format!("--len: {e}")))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| usage(format!("--seed: {e}")))?
        .unwrap_or(42);
    let model = match flags.get("model").map(String::as_str) {
        None | Some("bacterial") => GenomeModel::default(),
        Some("repetitive") => GenomeModel::highly_repetitive(),
        Some("random") => GenomeModel::random_only(0.5),
        Some(other) => return Err(usage(format!("unknown model {other:?}"))),
    };
    let seq = model.generate(len, seed);
    let rec = Record {
        header: format!("dnacomp synthetic len={len} seed={seed}"),
        seq,
        cleaned: 0,
    };
    std::fs::write(out, write_fasta(std::slice::from_ref(&rec), 70))
        .map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {len} bases to {out}");
    Ok(())
}

/// Resolve `-a` (default `dnax`) to a standalone-capable algorithm.
fn algorithm_flag(
    flags: &std::collections::HashMap<String, String>,
) -> Result<Algorithm, CliError> {
    let alg_name = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("dnax");
    Algorithm::from_name(alg_name)
        .filter(|a| Algorithm::HORIZONTAL.contains(a))
        .ok_or_else(|| usage(format!("unknown algorithm {alg_name:?}")))
}

fn cmd_compress(args: &[String]) -> Result<(), CliError> {
    let (flags, pos) = parse_flags(args);
    let (input, output) = match pos.as_slice() {
        [i, o] => (i, o),
        _ => return Err(usage("compress: need <in.fa> <out.dx>")),
    };
    let alg = algorithm_flag(&flags)?;
    let block_size: Option<usize> = flags
        .get("block-size")
        .map(|v| v.parse().map_err(|e| usage(format!("--block-size: {e}"))))
        .transpose()?;
    let seq = read_fasta(input)?;
    let t0 = std::time::Instant::now();
    match block_size {
        Some(0) => return Err(usage("--block-size: must be positive")),
        Some(bs) => {
            // Framed block-parallel container on a process-local pool.
            let threads = flags
                .get("threads")
                .map(|v| v.parse().map_err(|e| usage(format!("--threads: {e}"))))
                .transpose()?
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, |n| n.get())
                });
            let pc = ParallelCompressor::new(alg, bs, Arc::new(TaskPool::new(threads)));
            let frame = pc
                .compress(&seq)
                .map_err(|e| format!("compression failed: {e}"))?;
            let bytes = frame.to_bytes();
            std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
            eprintln!(
                "{}: {} bases -> {} bytes ({:.3} bits/base) in {:.0} ms ({} blocks of {} bases, {} pool threads)",
                alg.name(),
                seq.len(),
                bytes.len(),
                frame.bits_per_base(),
                t0.elapsed().as_secs_f64() * 1e3,
                frame.blocks.len(),
                bs,
                threads,
            );
        }
        None => {
            let compressor = compressor_for(alg);
            let (blob, stats) = compressor
                .compress_with_stats(&seq)
                .map_err(|e| format!("compression failed: {e}"))?;
            let bytes = blob.to_bytes();
            std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
            eprintln!(
                "{}: {} bases -> {} bytes ({:.3} bits/base) in {:.0} ms (peak heap {} kB)",
                alg.name(),
                seq.len(),
                bytes.len(),
                blob.bits_per_base(),
                t0.elapsed().as_secs_f64() * 1e3,
                stats.peak_heap_bytes / 1024,
            );
        }
    }
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), CliError> {
    let (_, pos) = parse_flags(args);
    let (input, output) = match pos.as_slice() {
        [i, o] => (i, o),
        _ => return Err(usage("decompress: need <in.dx> <out.fa>")),
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    // Sniff the container family: framed block container vs flat blob.
    let (seq, origin) = if FramedBlob::is_frame(&bytes) {
        let frame = FramedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
        let seq = dnacomp::algos::frame::decompress_serial(&frame)
            .map_err(|e| format!("decompression failed: {e}"))?;
        (seq, format!("frame, {} blocks", frame.blocks.len()))
    } else {
        let blob = CompressedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
        if blob.algorithm == Algorithm::Reference {
            return Err(CliError::Runtime(
                "reference-based blobs need the reference; use the library API".into(),
            ));
        }
        let compressor = compressor_for(blob.algorithm);
        let seq = compressor
            .decompress(&blob)
            .map_err(|e| format!("decompression failed: {e}"))?;
        (seq, blob.algorithm.name().to_owned())
    };
    let rec = Record {
        header: format!("decompressed from {input} ({origin})"),
        seq,
        cleaned: 0,
    };
    std::fs::write(output, write_fasta(std::slice::from_ref(&rec), 70))
        .map_err(|e| format!("writing {output}: {e}"))?;
    eprintln!("verified checksum; wrote {output}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), CliError> {
    let (_, pos) = parse_flags(args);
    let input = pos.first().ok_or_else(|| usage("info: need <in.dx>"))?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    if FramedBlob::is_frame(&bytes) {
        let frame = FramedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
        let algs: std::collections::BTreeSet<&str> =
            frame.blocks.iter().map(|b| b.algorithm.name()).collect();
        println!("container:      framed, {} blocks", frame.blocks.len());
        println!("algorithm(s):   {}", algs.into_iter().collect::<Vec<_>>().join(", "));
        println!("block size:     {} bases", frame.block_size);
        println!("original bases: {}", frame.total_len);
        println!("frame bytes:    {}", frame.total_bytes());
        println!("bits/base:      {:.4}", frame.bits_per_base());
        println!("checksum:       {:#018x}", frame.checksum);
        return Ok(());
    }
    let blob = CompressedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
    println!("algorithm:      {}", blob.algorithm.name());
    println!("original bases: {}", blob.original_len);
    println!("container:      {} bytes", blob.total_bytes());
    println!("bits/base:      {:.4}", blob.bits_per_base());
    println!("checksum:       {:#018x}", blob.checksum);
    Ok(())
}

fn cmd_decide(args: &[String]) -> Result<(), CliError> {
    let (flags, _) = parse_flags(args);
    let get = |name: &str| -> Result<f64, CliError> {
        flags
            .get(name)
            .ok_or_else(|| usage(format!("decide: --{name} required")))?
            .parse()
            .map_err(|e| usage(format!("--{name}: {e}")))
    };
    let ctx = Context {
        ram_mb: get("ram-mb")? as u32,
        cpu_mhz: get("cpu-mhz")? as u32,
        bandwidth_mbps: get("bw-mbps")?,
        file_bytes: (get("file-kb")? * 1024.0) as u64,
    };
    eprintln!("training selector on a reduced grid …");
    let files = CorpusBuilder::paper(42)
        .ncbi_files(25)
        .include_standard(false)
        .size_range(1_000, 1_000_000)
        .build();
    let ms = measure_corpus(&files, &dnacomp::algos::paper_algorithms())
        .map_err(|e| format!("measurement grid failed: {e}"))?;
    let rows = build_rows(
        &ms,
        &context_grid(),
        &PerfModel::default(),
        &MachineSpec::azure_vm(),
    );
    let labeled = label_rows(&rows, &WeightVector::time_only());
    let fw = ContextAwareFramework::train(&labeled, TreeMethod::Cart);
    let alg = fw.decide(&ctx);
    let worth = fw.worth_compressing(&ctx, &PerfModel::default());
    println!("context: {ctx:?}");
    println!("compress at all: {}", if worth { "yes" } else { "no" });
    println!("algorithm:       {}", alg.name());
    Ok(())
}

/// Shared flag parsing for `serve` / `bench-serve` workloads.
fn bench_config_from_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<BenchConfig, CliError> {
    let mut cfg = BenchConfig::default();
    let parse_usize = |name: &str, default: usize| -> Result<usize, CliError> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|e| usage(format!("--{name}: {e}"))))
            .unwrap_or(Ok(default))
    };
    cfg.files = parse_usize("files", cfg.files)?;
    cfg.contexts = parse_usize("contexts", cfg.contexts)?;
    cfg.repeats = parse_usize("repeats", cfg.repeats)?;
    cfg.seed = flags
        .get("seed")
        .map(|v| v.parse().map_err(|e| usage(format!("--seed: {e}"))))
        .unwrap_or(Ok(cfg.seed))?;
    cfg.exchange = flags.get("exchange").map(String::as_str) == Some("true");
    cfg.block_size = flags
        .get("block-size")
        .map(|v| v.parse().map_err(|e| usage(format!("--block-size: {e}"))))
        .transpose()?;
    if cfg.block_size == Some(0) {
        return Err(usage("--block-size: must be positive"));
    }
    Ok(cfg)
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let (flags, _) = parse_flags(args);
    let workers: usize = flags
        .get("workers")
        .ok_or_else(|| usage("serve: --workers required"))?
        .parse()
        .map_err(|e| usage(format!("--workers: {e}")))?;
    let mut cfg = bench_config_from_flags(&flags)?;
    let parse_f64 = |name: &str| -> Result<f64, CliError> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|e| usage(format!("--{name}: {e}"))))
            .unwrap_or(Ok(0.0))
    };
    let fault_rate = parse_f64("fault-rate")?;
    let panic_rate = parse_f64("panic-rate")?;
    let kill_rate = parse_f64("kill-rate")?;
    let shed_above: Option<usize> = flags
        .get("shed-above")
        .map(|v| v.parse().map_err(|e| usage(format!("--shed-above: {e}"))))
        .transpose()?;
    let mut svc = ServiceConfig::default();
    if let Some(v) = flags.get("restart-budget") {
        svc.restart_budget = v.parse().map_err(|e| usage(format!("--restart-budget: {e}")))?;
    }
    if let Some(v) = flags.get("quarantine-after") {
        svc.quarantine_after = v
            .parse()
            .map_err(|e| usage(format!("--quarantine-after: {e}")))?;
    }
    let store = flags
        .get("store")
        .map(|dir| {
            SequenceStore::open(dir, StoreConfig::default())
                .map(Arc::new)
                .map_err(|e| CliError::Runtime(format!("opening store {dir}: {e}")))
        })
        .transpose()?;
    // Transfer faults only bite on blob exchanges, so a fault rate
    // implies full-exchange jobs rather than silently doing nothing.
    // (Panic/kill injection bites in compress-only mode too.)
    cfg.exchange = cfg.exchange || fault_rate > 0.0;
    let framework = dnacomp::server::synthetic_framework(cfg.seed);
    let mut faults = if fault_rate > 0.0 {
        dnacomp::cloud::FaultPlan::uniform(cfg.seed, fault_rate)
    } else {
        dnacomp::cloud::FaultPlan::none()
    };
    faults.seed = cfg.seed;
    faults.panic_rate = panic_rate;
    faults.worker_kill_rate = kill_rate;
    svc.workers = workers;
    svc.faults = faults;
    svc.block_bytes = (fault_rate > 0.0).then_some(4096);
    // Frame threshold for the block-parallel path; when set (and no
    // fault plan pinned the exchange block), the service aligns the
    // resumable-upload block bytes to the frame block boundary.
    svc.block_size = cfg.block_size;
    svc.store = store.clone();
    svc.shed_above = shed_above;
    // Background scrub of the attached store's runs: --scrub-ms sets
    // the tick interval (only meaningful alongside --store).
    if let Some(ms) = flags.get("scrub-ms") {
        let ms: u64 = ms.parse().map_err(|e| usage(format!("--scrub-ms: {e}")))?;
        if ms > 0 {
            svc.scrub_interval = Some(std::time::Duration::from_millis(ms));
        }
    }
    if let Some(listen) = flags.get("listen") {
        return serve_listen(listen, framework, svc, store, &cfg, &flags);
    }
    eprintln!(
        "serving {} corpus files × {} contexts × {} passes on {workers} worker(s) …",
        cfg.files, cfg.contexts, cfg.repeats
    );
    let jobs = build_workload(&cfg);
    let service = CompressionService::start(framework, svc);
    let mut tickets = Vec::with_capacity(jobs.len());
    for job in &jobs {
        loop {
            match service.submit(job.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(dnacomp::server::SubmitError::QueueFull) => std::thread::yield_now(),
                Err(e) => return Err(CliError::Runtime(format!("submit failed: {e}"))),
            }
        }
    }
    for t in tickets {
        let _ = t.wait(); // failures are visible in the metrics
    }
    // Persist the quarantine before shutdown: every dead letter moves
    // to disk, so the final snapshot truthfully reports dlq_depth 0.
    if let Some(dir) = flags.get("dlq-dir") {
        let letters = service.dlq_drain();
        let dlq = DlqDir::open(dir).map_err(CliError::Runtime)?;
        for letter in &letters {
            dlq.save(letter).map_err(CliError::Runtime)?;
        }
        eprintln!("persisted {} dead letter(s) to {dir}", letters.len());
    }
    let snapshot = service.shutdown();
    if flags.contains_key("json") {
        println!("{}", snapshot.to_json());
    } else {
        println!("jobs:       {} accepted, {} completed, {} failed, {} expired, {} rejected",
            snapshot.accepted, snapshot.completed, snapshot.failed,
            snapshot.expired, snapshot.rejected_full);
        println!(
            "cache:      {} hits / {} misses ({:.1} % hit rate)",
            snapshot.cache_hits,
            snapshot.cache_misses,
            snapshot.cache_hit_rate * 100.0
        );
        println!("queue:      peak depth {}", snapshot.peak_queue_depth);
        if snapshot.block_parallel_jobs > 0 {
            println!(
                "blocks:     {} framed job(s), {} blocks; shared pool ran {} block task(s) ({} inline)",
                snapshot.block_parallel_jobs,
                snapshot.blocks_compressed,
                snapshot.pool_tasks_run_by_pool,
                snapshot.pool_tasks_run_inline
            );
        }
        if snapshot.jobs_panicked + snapshot.jobs_quarantined + snapshot.jobs_shed
            + snapshot.jobs_crashed + snapshot.worker_restarts + snapshot.dlq_depth
            > 0
        {
            println!(
                "supervise:  {} panicked, {} quarantined, {} shed, {} crashed, {} worker restart(s), dlq depth {}",
                snapshot.jobs_panicked,
                snapshot.jobs_quarantined,
                snapshot.jobs_shed,
                snapshot.jobs_crashed,
                snapshot.worker_restarts,
                snapshot.dlq_depth
            );
        }
        println!(
            "latency:    p50 {:.1} ms, p95 {:.1} ms, mean {:.1} ms (simulated)",
            snapshot.latency_p50_ms, snapshot.latency_p95_ms, snapshot.latency_mean_ms
        );
        for w in &snapshot.algorithm_wins {
            println!("wins:       {:<14} {}", w.algorithm, w.wins);
        }
        if store.is_some() {
            println!(
                "store:      {} puts ({} deduped), {} bytes on disk",
                snapshot.store_puts, snapshot.store_dedup_hits, snapshot.store_bytes_on_disk
            );
        }
    }
    Ok(())
}

/// `serve --listen`: run the TCP front-end instead of replaying the
/// synthetic corpus in-process.
fn serve_listen(
    listen: &str,
    framework: dnacomp::core::FrameworkHandle,
    svc: ServiceConfig,
    store: Option<Arc<SequenceStore>>,
    cfg: &BenchConfig,
    flags: &std::collections::HashMap<String, String>,
) -> Result<(), CliError> {
    let serve_secs: f64 = flags
        .get("serve-secs")
        .map(|v| v.parse().map_err(|e| usage(format!("--serve-secs: {e}"))))
        .unwrap_or(Ok(0.0))?;
    let mut net = NetConfig {
        exchange: cfg.exchange,
        store,
        ..NetConfig::default()
    };
    if let Some(v) = flags.get("max-conns") {
        net.max_connections = v.parse().map_err(|e| usage(format!("--max-conns: {e}")))?;
    }
    // Cluster identity: --shard-id is the id this node answers to in
    // epoch handshakes; --epoch pins the node to one ring epoch (a
    // mismatching HelloEpoch is refused with `wrong-shard`). Leaving
    // both off keeps the node epoch-agnostic, as before.
    if let Some(v) = flags.get("shard-id") {
        net.shard_id = v.parse().map_err(|e| usage(format!("--shard-id: {e}")))?;
    }
    if let Some(v) = flags.get("epoch") {
        let epoch = match v.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).map_err(|e| usage(format!("--epoch: {e}"))),
            None => v.parse().map_err(|e| usage(format!("--epoch: {e}"))),
        }?;
        net.epoch = Some(epoch);
    }
    let service = Arc::new(CompressionService::start(framework, svc));
    let server = NetServer::start(Arc::clone(&service), listen, net)
        .map_err(|e| CliError::Runtime(format!("binding {listen}: {e}")))?;
    eprintln!("listening on {}", server.local_addr());
    if serve_secs > 0.0 {
        std::thread::sleep(std::time::Duration::from_secs_f64(serve_secs));
    } else {
        loop {
            std::thread::park();
        }
    }
    server.shutdown();
    let service = Arc::try_unwrap(service)
        .map_err(|_| CliError::Runtime("connections still alive after drain".into()))?;
    let snapshot = service.shutdown();
    println!("{}", snapshot.to_json());
    Ok(())
}

/// Parse `--shards` into ring shard specs: a comma-separated address
/// list (`127.0.0.1:7101,127.0.0.1:7102`) with ids assigned 1..=N in
/// order, or explicit `id=addr` entries.
fn parse_shards(list: &str) -> Result<Vec<ShardSpec>, CliError> {
    let mut specs = Vec::new();
    for (i, entry) in list.split(',').enumerate() {
        let entry = entry.trim();
        if entry.is_empty() {
            return Err(usage("--shards: empty entry in shard list"));
        }
        let spec = match entry.split_once('=') {
            Some((id, addr)) => ShardSpec {
                id: id
                    .trim()
                    .parse()
                    .map_err(|e| usage(format!("--shards: shard id {id:?}: {e}")))?,
                addr: addr.trim().to_owned(),
            },
            None => ShardSpec {
                id: i as u32 + 1,
                addr: entry.to_owned(),
            },
        };
        specs.push(spec);
    }
    Ok(specs)
}

/// Build the consistent-hash ring from `--shards`/`--vnodes`/`--seed`.
fn ring_from_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<Ring, CliError> {
    let shards = parse_shards(
        flags
            .get("shards")
            .ok_or_else(|| usage("route: --shards <addr,addr,…> required"))?,
    )?;
    let vnodes: u32 = flags
        .get("vnodes")
        .map(|v| v.parse().map_err(|e| usage(format!("--vnodes: {e}"))))
        .unwrap_or(Ok(DEFAULT_VNODES))?;
    let seed: u64 = flags
        .get("seed")
        .map(|v| v.parse().map_err(|e| usage(format!("--seed: {e}"))))
        .unwrap_or(Ok(DEFAULT_RING_SEED))?;
    Ring::new(shards, vnodes, seed).map_err(CliError::Runtime)
}

/// `dnacomp route <serve|rebalance|repair>` — the shard router
/// front-end, the over-the-wire key migration it needs after
/// membership changes, and the anti-entropy sweep that re-converges
/// replicas after a shard loses data.
fn cmd_route(args: &[String]) -> Result<(), CliError> {
    let sub = args
        .first()
        .ok_or_else(|| usage("route: need a subcommand (serve|rebalance|repair)"))?;
    let (flags, _) = parse_flags(&args[1..]);
    let parse_replicas = |flags: &std::collections::HashMap<String, String>| {
        flags
            .get("replicas")
            .map(|v| v.parse::<usize>().map_err(|e| usage(format!("--replicas: {e}"))))
            .unwrap_or(Ok(RouterConfig::default().replicas))
            .map(|r| r.max(1))
    };
    match sub.as_str() {
        "serve" => {
            let listen = flags
                .get("listen")
                .ok_or_else(|| usage("route serve: --listen <host:port> required"))?;
            let ring = ring_from_flags(&flags)?;
            let mut cfg = RouterConfig::default();
            if let Some(v) = flags.get("pool") {
                cfg.pool_per_shard = v.parse().map_err(|e| usage(format!("--pool: {e}")))?;
            }
            cfg.replicas = parse_replicas(&flags)?;
            if let Some(v) = flags.get("write-quorum") {
                cfg.write_quorum = v
                    .parse::<usize>()
                    .map_err(|e| usage(format!("--write-quorum: {e}")))?
                    .max(1);
            }
            if let Some(dir) = flags.get("hint-dir") {
                cfg.hint_dir = Some(std::path::PathBuf::from(dir));
            }
            if let Some(v) = flags.get("hint-cap") {
                cfg.hint_cap = v
                    .parse::<usize>()
                    .map_err(|e| usage(format!("--hint-cap: {e}")))?
                    .max(1);
            }
            if let Some(v) = flags.get("shard-timeout-ms") {
                let ms: u64 = v
                    .parse()
                    .map_err(|e| usage(format!("--shard-timeout-ms: {e}")))?;
                cfg.shard_timeout = std::time::Duration::from_millis(ms.max(1));
            }
            if let Some(v) = flags.get("probe-ms") {
                let ms: u64 = v.parse().map_err(|e| usage(format!("--probe-ms: {e}")))?;
                cfg.probe_interval = std::time::Duration::from_millis(ms.max(1));
            }
            if let Some(v) = flags.get("max-conns") {
                cfg.max_connections =
                    v.parse().map_err(|e| usage(format!("--max-conns: {e}")))?;
            }
            let route_secs: f64 = flags
                .get("route-secs")
                .map(|v| v.parse().map_err(|e| usage(format!("--route-secs: {e}"))))
                .unwrap_or(Ok(0.0))?;
            let router = RouterServer::start(listen.as_str(), ring, cfg)
                .map_err(|e| CliError::Runtime(format!("binding {listen}: {e}")))?;
            eprintln!(
                "routing on {} (epoch {:#x}, {} shard(s))",
                router.local_addr(),
                router.epoch(),
                router.metrics_snapshot().shards.len()
            );
            if route_secs > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(route_secs));
            } else {
                loop {
                    std::thread::park();
                }
            }
            let snapshot = router.shutdown();
            println!("{}", snapshot.to_json());
            Ok(())
        }
        "rebalance" => {
            let ring = ring_from_flags(&flags)?;
            let replicas = parse_replicas(&flags)?;
            let timeout_ms: u64 = flags
                .get("timeout-ms")
                .map(|v| v.parse().map_err(|e| usage(format!("--timeout-ms: {e}"))))
                .unwrap_or(Ok(10_000))?;
            let batch: usize = flags
                .get("batch")
                .map(|v| v.parse().map_err(|e| usage(format!("--batch: {e}"))))
                .unwrap_or(Ok(64))?;
            let cursor = flags.get("cursor").map(std::path::PathBuf::from);
            let report = rebalance_resumable(
                &ring,
                replicas,
                std::time::Duration::from_millis(timeout_ms.max(1)),
                batch,
                cursor.as_deref(),
            )
            .map_err(CliError::Runtime)?;
            eprintln!(
                "rebalance (epoch {:#x}, {replicas} replica(s)): scanned {}, skipped {} via cursor, \
                 moved {} ({} deduped), removed {}, {} container byte(s) shipped",
                ring.epoch(),
                report.scanned,
                report.skipped,
                report.moved,
                report.deduped,
                report.removed,
                report.bytes
            );
            Ok(())
        }
        "repair" => {
            let ring = ring_from_flags(&flags)?;
            let replicas = parse_replicas(&flags)?;
            let timeout_ms: u64 = flags
                .get("timeout-ms")
                .map(|v| v.parse().map_err(|e| usage(format!("--timeout-ms: {e}"))))
                .unwrap_or(Ok(10_000))?;
            let buckets: u32 = flags
                .get("buckets")
                .map(|v| v.parse().map_err(|e| usage(format!("--buckets: {e}"))))
                .unwrap_or(Ok(256))?;
            let report = repair(
                &ring,
                replicas,
                std::time::Duration::from_millis(timeout_ms.max(1)),
                buckets,
            )
            .map_err(CliError::Runtime)?;
            eprintln!(
                "repair (epoch {:#x}, {replicas} replica(s)): {} key(s) scanned, \
                 {} of {} digest bucket(s) differed, {} shipped — {} record(s) \
                 ({} deduped), {} container byte(s)",
                ring.epoch(),
                report.keys_scanned,
                report.buckets_differing,
                report.buckets_checked,
                report.buckets_shipped,
                report.keys_shipped,
                report.deduped,
                report.bytes
            );
            Ok(())
        }
        other => Err(usage(format!("route: unknown subcommand {other:?}"))),
    }
}

/// Dial `addr`, retrying up to `retries` times on connection failure
/// with the cloud retry policy's jittered exponential backoff (keyed
/// on the address, so a fleet of clients hammering the same recovering
/// server de-synchronises instead of stampeding).
fn connect_with_retry(
    addr: &str,
    timeout: std::time::Duration,
    retries: u32,
) -> Result<NetClient<std::net::TcpStream>, ClientError> {
    let policy = dnacomp::cloud::RetryPolicy {
        max_attempts: retries.saturating_add(1),
        budget_ms: f64::INFINITY,
        ..dnacomp::cloud::RetryPolicy::default()
    };
    let key = dnacomp::codec::checksum::fnv1a(addr.as_bytes());
    let delays = policy.schedule(key);
    let mut attempt = 0usize;
    loop {
        match NetClient::connect(addr, timeout) {
            Ok(client) => return Ok(client),
            Err(e) => {
                let Some(delay_ms) = delays.get(attempt) else {
                    return Err(e);
                };
                attempt += 1;
                eprintln!(
                    "connect {addr} failed ({e}); retry {attempt}/{retries} in {delay_ms:.0} ms"
                );
                std::thread::sleep(std::time::Duration::from_secs_f64(delay_ms / 1_000.0));
            }
        }
    }
}

/// `dnacomp client <ping|metrics|compress|get|stat>` — speak the wire
/// protocol against a running `serve --listen`.
fn cmd_client(args: &[String]) -> Result<(), CliError> {
    let (flags, pos) = parse_flags(args);
    let sub = pos
        .first()
        .ok_or_else(|| usage("client: need a subcommand (ping|metrics|compress|get|stat)"))?;
    // Vet the subcommand before dialling: a typo is a usage error
    // (exit 2) and must not cost the server a connection.
    if !["ping", "metrics", "compress", "get", "stat"].contains(&sub.as_str()) {
        return Err(usage(format!("client: unknown subcommand {sub:?}")));
    }
    let addr = flags
        .get("addr")
        .ok_or_else(|| usage("client: --addr <host:port> required"))?;
    let timeout_ms: u64 = flags
        .get("timeout-ms")
        .map(|v| v.parse().map_err(|e| usage(format!("--timeout-ms: {e}"))))
        .unwrap_or(Ok(10_000))?;
    let timeout = std::time::Duration::from_millis(timeout_ms.max(1));
    let retries: u32 = flags
        .get("retry")
        .map(|v| v.parse().map_err(|e| usage(format!("--retry: {e}"))))
        .unwrap_or(Ok(0))?;
    // Connection refused, handshake failure and response timeouts are
    // all runtime errors: exit code 1, like any other unreachable
    // resource — usage mistakes stay exit code 2.
    let client_err =
        |what: &str, e: ClientError| CliError::Runtime(format!("client {what} ({addr}): {e}"));
    let mut client = connect_with_retry(addr, timeout, retries).map_err(|e| client_err("connect", e))?;
    let parse_key = |hex: &str| {
        ContentKey::from_hex(hex)
            .ok_or_else(|| CliError::Runtime(format!("invalid key {hex:?} (32 hex digits)")))
    };
    match (sub.as_str(), &pos[1..]) {
        ("ping", []) => {
            client.ping().map_err(|e| client_err("ping", e))?;
            eprintln!("pong from {addr}");
            Ok(())
        }
        ("metrics", []) => {
            let json = client.metrics_json().map_err(|e| client_err("metrics", e))?;
            println!("{json}");
            Ok(())
        }
        ("compress", [input]) => {
            let seq = read_fasta(input)?;
            let priority = match flags.get("priority").map(String::as_str) {
                None | Some("normal") => Priority::Normal,
                Some("high") => Priority::High,
                Some("low") => Priority::Low,
                Some(other) => return Err(usage(format!("--priority: unknown lane {other:?}"))),
            };
            let context = Context {
                ram_mb: 2048,
                cpu_mhz: 2393,
                bandwidth_mbps: 2.0,
                file_bytes: seq.len() as u64,
            };
            // A transport break mid-compress is ambiguous: the server
            // may or may not have committed before the connection died.
            // Content addressing makes the resend safe — the same
            // sequence maps to the same key, so a duplicate commit
            // dedups into a success — so --retry N also redials and
            // re-sends the request. Typed server errors (refusals) are
            // never retried: the server answered, retrying cannot help.
            let mut resend = 0u32;
            let resp = loop {
                match client.compress(input, &seq, priority, context.clone()) {
                    Ok(resp) => break resp,
                    Err(ClientError::Proto(e)) if resend < retries => {
                        resend += 1;
                        eprintln!(
                            "compress transport failure ({e}); idempotent resend {resend}/{retries}"
                        );
                        client = connect_with_retry(addr, timeout, retries)
                            .map_err(|e| client_err("reconnect", e))?;
                    }
                    Err(e) => return Err(client_err("compress", e)),
                }
            };
            match resp {
                Response::CompressOk {
                    file,
                    algorithm,
                    original_len,
                    compressed_bytes,
                    blocks,
                    sim_ms,
                    cache_hit,
                    key,
                } => {
                    let name = Algorithm::from_tag(algorithm)
                        .map(|a| a.name().to_owned())
                        .unwrap_or_else(|_| format!("tag {algorithm}"));
                    eprintln!(
                        "{file}: {original_len} bases -> {compressed_bytes} bytes via {name} \
                         ({blocks} block(s), {sim_ms:.1} ms simulated{})",
                        if cache_hit { ", cached decision" } else { "" }
                    );
                    if let Some(key) = key {
                        println!("{}", ContentKey(key).to_hex());
                    }
                    Ok(())
                }
                Response::Error { code, message } => Err(CliError::Runtime(format!(
                    "server refused compress ({code}): {message}"
                ))),
                other => Err(CliError::Runtime(format!("unexpected reply {other:?}"))),
            }
        }
        ("get", [key, output]) => {
            let key = parse_key(key)?;
            let bytes = client.get(key.0).map_err(|e| client_err("get", e))?;
            let blob = CompressedBlob::from_bytes(&bytes)
                .map_err(|e| CliError::Runtime(format!("served blob is corrupt: {e}")))?;
            let seq = compressor_for(blob.algorithm)
                .decompress(&blob)
                .map_err(|e| CliError::Runtime(format!("decompression failed: {e}")))?;
            let rec = Record {
                header: format!("dnacomp client {} ({})", key.to_hex(), blob.algorithm.name()),
                seq,
                cleaned: 0,
            };
            std::fs::write(output, write_fasta(std::slice::from_ref(&rec), 70))
                .map_err(|e| CliError::Runtime(format!("writing {output}: {e}")))?;
            eprintln!("wrote {output}");
            Ok(())
        }
        ("stat", rest) => {
            let key = match rest {
                [] => None,
                [key] => Some(parse_key(key)?.0),
                _ => return Err(usage("client stat: at most one key")),
            };
            let json = client.stat(key).map_err(|e| client_err("stat", e))?;
            println!("{json}");
            Ok(())
        }
        _ => Err(usage(format!("client: bad arguments for {sub:?}"))),
    }
}

fn cmd_bench_serve(args: &[String]) -> Result<(), CliError> {
    let (flags, _) = parse_flags(args);
    if flags.contains_key("route") {
        return bench_serve_route(&flags);
    }
    let mut cfg = bench_config_from_flags(&flags)?;
    if let Some(listen) = flags.get("listen") {
        return bench_serve_listen(listen, &cfg, &flags);
    }
    if let Some(list) = flags.get("workers") {
        cfg.worker_counts = list
            .split(',')
            .map(|w| w.trim().parse().map_err(|e| usage(format!("--workers: {e}"))))
            .collect::<Result<_, _>>()?;
        if cfg.worker_counts.is_empty() {
            return Err(usage("--workers: need at least one count"));
        }
    }
    eprintln!(
        "bench-serve: {} files × {} contexts × {} passes, workers {:?} …",
        cfg.files, cfg.contexts, cfg.repeats, cfg.worker_counts
    );
    let report = run_bench(&cfg);
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "{:>7}  {:>10}  {:>14}  {:>13}  {:>12}  {:>9}",
            "workers", "jobs/s(sim)", "makespan(sim)", "jobs/s(wall)", "cache hit", "speedup"
        );
        for p in &report.sweep {
            println!(
                "{:>7}  {:>10.1}  {:>11.0} ms  {:>13.1}  {:>8.1} %  {:>8.2}x",
                p.workers,
                p.jobs_per_sim_sec,
                p.sim_makespan_ms,
                p.jobs_per_wall_sec,
                p.cache_hit_rate * 100.0,
                p.speedup_vs_one
            );
        }
    }
    Ok(())
}

/// `bench-serve --route`: the routed-cluster throughput sweep
/// (BENCH_route.json). Sweeps shard counts behind a router and reports
/// the 3-vs-1 aggregate speedup.
fn bench_serve_route(
    flags: &std::collections::HashMap<String, String>,
) -> Result<(), CliError> {
    let mut cfg = RouteBenchConfig::default();
    if let Some(list) = flags.get("shards") {
        cfg.shard_counts = list
            .split(',')
            .map(|w| w.trim().parse().map_err(|e| usage(format!("--shards: {e}"))))
            .collect::<Result<_, _>>()?;
        if cfg.shard_counts.is_empty() {
            return Err(usage("--shards: need at least one count"));
        }
    }
    let parse_usize = |name: &str, default: usize| -> Result<usize, CliError> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|e| usage(format!("--{name}: {e}"))))
            .unwrap_or(Ok(default))
    };
    cfg.clients = parse_usize("clients", cfg.clients)?.max(1);
    cfg.pool_per_shard = parse_usize("pool", cfg.pool_per_shard)?.max(1);
    cfg.replicas = parse_usize("replicas", cfg.replicas)?.max(1);
    cfg.write_quorum = parse_usize("write-quorum", cfg.write_quorum)?.max(1);
    cfg.workers_per_shard = flags
        .get("workers")
        .and_then(|list| list.split(',').next().map(str::trim).map(str::parse))
        .transpose()
        .map_err(|e| usage(format!("--workers: {e}")))?
        .unwrap_or(cfg.workers_per_shard);
    cfg.workload.files = parse_usize("files", cfg.workload.files)?;
    cfg.workload.contexts = parse_usize("contexts", cfg.workload.contexts)?;
    cfg.workload.repeats = parse_usize("repeats", cfg.workload.repeats)?;
    eprintln!(
        "bench-serve --route: {} files × {} contexts × {} passes over {} client(s); \
         shard counts {:?}, {} worker(s) and pool {} per shard, R={} W={} …",
        cfg.workload.files,
        cfg.workload.contexts,
        cfg.workload.repeats,
        cfg.clients,
        cfg.shard_counts,
        cfg.workers_per_shard,
        cfg.pool_per_shard,
        cfg.replicas,
        cfg.write_quorum
    );
    let report = run_route_bench(&cfg).map_err(CliError::Runtime)?;
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "{:>6}  {:>5}  {:>13}  {:>9}  {:>8}  {:>9}  {:>5}  {:>7}  {:>11}",
            "shards", "jobs", "jobs/s(wall)", "forwards", "retries", "ejections", "R/W", "w-amp",
            "q-p95(ms)"
        );
        for r in &report.rows {
            println!(
                "{:>6}  {:>5}  {:>13.1}  {:>9}  {:>8}  {:>9}  {:>2}/{:<2}  {:>7.2}  {:>11.2}",
                r.shards,
                r.jobs,
                r.jobs_per_wall_sec,
                r.route_forwards,
                r.route_retries,
                r.shard_ejections,
                r.replicas,
                r.write_quorum,
                r.write_amplification,
                r.quorum_p95_ms
            );
        }
        if report.speedup_3_vs_1 > 0.0 {
            println!("speedup 3 vs 1: {:.2}x", report.speedup_3_vs_1);
        }
    }
    Ok(())
}

/// `bench-serve --listen`: the loopback network throughput row.
fn bench_serve_listen(
    listen: &str,
    cfg: &BenchConfig,
    flags: &std::collections::HashMap<String, String>,
) -> Result<(), CliError> {
    let parse_usize = |name: &str, default: usize| -> Result<usize, CliError> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|e| usage(format!("--{name}: {e}"))))
            .unwrap_or(Ok(default))
    };
    let nb = NetBenchConfig {
        clients: parse_usize("clients", 4)?.max(1),
        // The in-process bench sweeps a worker list; the network row
        // uses one pool size (the first of --workers, default 4).
        workers: flags
            .get("workers")
            .and_then(|list| list.split(',').next().map(str::trim).map(str::parse))
            .transpose()
            .map_err(|e| usage(format!("--workers: {e}")))?
            .unwrap_or(4),
        listen: listen.to_owned(),
        workload: cfg.clone(),
    };
    eprintln!(
        "bench-serve --listen: {} files × {} contexts × {} passes over {} client(s), {} worker(s) …",
        nb.workload.files, nb.workload.contexts, nb.workload.repeats, nb.clients, nb.workers
    );
    let report = run_net_bench(&nb).map_err(CliError::Runtime)?;
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "net: {} jobs over {} conn(s): {:.1} jobs/s, {:.2} MB/s payload, \
             {} frames rx / {} tx, {} wire bytes rx / {} tx, {} protocol error(s)",
            report.jobs,
            report.connections_accepted,
            report.jobs_per_wall_sec,
            report.wire_mb_per_sec,
            report.frames_rx,
            report.frames_tx,
            report.net_bytes_rx,
            report.net_bytes_tx,
            report.protocol_errors
        );
    }
    if report.completed + report.refused != report.jobs {
        return Err(CliError::Runtime(format!(
            "accounting hole: {} completed + {} refused != {} jobs",
            report.completed, report.refused, report.jobs
        )));
    }
    Ok(())
}

/// `dnacomp bench-algos` — per-algorithm throughput, single-thread vs
/// block-parallel, plus the 2-bit packing kernel micro-benchmark.
/// `--quick` is the CI perf smoke gate (round-trip + kernel-floor
/// assertions; failure is a runtime error → exit 1).
fn cmd_bench_algos(args: &[String]) -> Result<(), CliError> {
    let (flags, _) = parse_flags(args);
    let mut cfg = AlgoBenchConfig {
        quick: flags.get("quick").map(String::as_str) == Some("true"),
        ..AlgoBenchConfig::default()
    };
    if let Some(v) = flags.get("threads") {
        cfg.threads = v.parse().map_err(|e| usage(format!("--threads: {e}")))?;
    }
    if let Some(v) = flags.get("lanes") {
        cfg.lanes = v.parse().map_err(|e| usage(format!("--lanes: {e}")))?;
        if cfg.lanes == 0 {
            return Err(usage("--lanes: must be positive"));
        }
    }
    if let Some(v) = flags.get("block-size") {
        let bs: usize = v.parse().map_err(|e| usage(format!("--block-size: {e}")))?;
        if bs == 0 {
            return Err(usage("--block-size: must be positive"));
        }
        cfg.block_size = Some(bs);
    }
    if let Some(v) = flags.get("seed") {
        cfg.seed = v.parse().map_err(|e| usage(format!("--seed: {e}")))?;
    }
    eprintln!(
        "bench-algos: {} mode, {} pool thread(s), {} lanes …",
        if cfg.quick { "quick (smoke gate)" } else { "full" },
        cfg.threads,
        cfg.lanes
    );
    let report = run_algo_bench(&cfg).map_err(CliError::Runtime)?;
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "kernels ({} bases): pack u64 {:.0} MB/s vs bytewise {:.0} MB/s ({:.2}x); unpack {:.0} vs {:.0} MB/s ({:.2}x)",
            report.kernels.bases,
            report.kernels.pack_u64_mb_s,
            report.kernels.pack_bytewise_mb_s,
            report.kernels.pack_speedup,
            report.kernels.unpack_u64_mb_s,
            report.kernels.unpack_bytewise_mb_s,
            report.kernels.unpack_speedup,
        );
        println!(
            "simd [{}]: pack {:.0} MB/s ({:.2}x vs u64), unpack {:.0} MB/s ({:.2}x), prefix {:.0} vs {:.0} bytewise MB/s ({:.2}x)",
            report.cpu_features,
            report.kernels.pack_simd_mb_s,
            report.kernels.pack_simd_speedup,
            report.kernels.unpack_simd_mb_s,
            report.kernels.unpack_simd_speedup,
            report.kernels.prefix_simd_mb_s,
            report.kernels.prefix_bytewise_mb_s,
            report.kernels.prefix_speedup,
        );
        println!(
            "speed tier ({} bases): CTW rans {:.2} MB/s vs arith {:.2} MB/s ({:.2}x)",
            report.speed_gate.bases,
            report.speed_gate.ctw_rans_mb_s,
            report.speed_gate.ctw_arith_mb_s,
            report.speed_gate.rans_vs_arith,
        );
        println!(
            "{:>13}  {:>9}  {:>7}  {:>9}  {:>11}  {:>11}  {:>11}  {:>8}  {:>12}  {:>5}",
            "algorithm", "bases", "backend", "bits/base", "serial MB/s", "wall MB/s",
            format!("{}-lane MB/s", report.lanes), "speedup", "model/ent ms", "ok"
        );
        for r in &report.algorithms {
            let stages = match (r.model_stage_ms, r.entropy_stage_ms) {
                (Some(m), Some(e)) => format!("{m:.1}/{e:.1}"),
                _ => "-".to_string(),
            };
            println!(
                "{:>13}  {:>9}  {:>7}  {:>9.4}  {:>11.2}  {:>11.2}  {:>11.2}  {:>7.2}x  {:>12}  {:>5}",
                r.algorithm,
                r.bases,
                r.entropy_backend,
                r.bits_per_base,
                r.serial_compress_mb_s,
                r.block_wall_compress_mb_s,
                r.block_lane_compress_mb_s,
                r.lane_speedup_compress,
                stages,
                if r.roundtrip_ok && r.parallel_matches_serial { "yes" } else { "NO" },
            );
        }
        println!(
            "(host has {} CPU(s); the lane column is measured per-block times list-scheduled onto {} lanes)",
            report.host_cpus, report.lanes
        );
    }
    Ok(())
}

/// `dnacomp bench-store` — the LSM engine numbers behind
/// BENCH_store.json: open time vs object count (manifest-cost
/// sub-linearity), hot-get throughput with the block cache on vs off,
/// and put throughput with group commit vs inline fsync. `--quick` is
/// the CI smoke shape and asserts the headline claims hold.
fn cmd_bench_store(args: &[String]) -> Result<(), CliError> {
    let (flags, _) = parse_flags(args);
    let quick = flags.get("quick").map(String::as_str) == Some("true");
    let mut cfg = if quick {
        StoreBenchConfig::quick()
    } else {
        StoreBenchConfig::default()
    };
    if let Some(list) = flags.get("objects") {
        cfg.open_sweep = list
            .split(',')
            .map(|w| w.trim().parse().map_err(|e| usage(format!("--objects: {e}"))))
            .collect::<Result<_, _>>()?;
        if cfg.open_sweep.len() < 2 {
            return Err(usage("--objects: need at least two counts for the sweep"));
        }
    }
    if let Some(v) = flags.get("payload") {
        cfg.payload_bytes = v.parse().map_err(|e| usage(format!("--payload: {e}")))?;
        if cfg.payload_bytes == 0 {
            return Err(usage("--payload: must be positive"));
        }
    }
    if let Some(v) = flags.get("dir") {
        cfg.dir = std::path::PathBuf::from(v);
    }
    eprintln!(
        "bench-store: {} mode, open sweep {:?}, {} B payloads, {} hot records × {} passes …",
        if quick { "quick (smoke gate)" } else { "full" },
        cfg.open_sweep,
        cfg.payload_bytes,
        cfg.hot_records,
        cfg.hot_passes
    );
    let report = run_store_bench(&cfg).map_err(CliError::Runtime)?;
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!("{:>9}  {:>14}  {:>10}  {:>5}", "objects", "manifest B", "open ms", "runs");
        for p in &report.open_sweep {
            println!(
                "{:>9}  {:>14}  {:>10.2}  {:>5}",
                p.objects, p.manifest_bytes, p.open_ms, p.runs
            );
        }
        println!(
            "open cost per object, largest vs smallest store: {:.3}x (< 1 is sub-linear)",
            report.open_cost_ratio
        );
        println!(
            "hot gets: {:.1} MB/s cached vs {:.1} MB/s uncached ({:.2}x, {:.0}% cache hits)",
            report.hot_get_cached_mb_s,
            report.hot_get_uncached_mb_s,
            report.hot_get_speedup,
            report.cache_hit_rate * 100.0
        );
        println!(
            "puts (sync): {:.0}/s group-committed vs {:.0}/s inline fsync; \
             {} appends in {} fsync batches",
            report.put_grouped_per_sec,
            report.put_inline_per_sec,
            report.wal_appends,
            report.wal_batches
        );
    }
    if quick {
        // The smoke gate: the deterministic claims must hold on any
        // machine. (Wall-clock speedups stay informational — CI boxes
        // are too noisy to gate on a stopwatch.)
        if report.open_cost_ratio >= 0.9 {
            return Err(CliError::Runtime(format!(
                "open cost per object did not shrink with store size: ratio {:.3}",
                report.open_cost_ratio
            )));
        }
        if report.cache_hit_rate < 0.5 {
            return Err(CliError::Runtime(format!(
                "block cache missed too often on a hot sweep: hit rate {:.2}",
                report.cache_hit_rate
            )));
        }
        if report.wal_batches == 0 || report.wal_batches >= report.wal_appends {
            return Err(CliError::Runtime(format!(
                "group commit did not batch: {} appends in {} fsync batches",
                report.wal_appends, report.wal_batches
            )));
        }
    }
    Ok(())
}

/// `dnacomp dlq <list|replay|drop>` — inspect, resubmit or discard
/// dead letters persisted by `serve --dlq-dir`.
fn cmd_dlq(args: &[String]) -> Result<(), CliError> {
    let (flags, pos) = parse_flags(args);
    let sub = pos
        .first()
        .ok_or_else(|| usage("dlq: need a subcommand (list|replay|drop)"))?;
    let dir = flags
        .get("dir")
        .ok_or_else(|| usage("dlq: --dir <dlq-dir> required"))?;
    let dlq = DlqDir::open(dir).map_err(CliError::Runtime)?;
    let parse_key = |hex: &str| {
        ContentKey::from_hex(hex)
            .ok_or_else(|| CliError::Runtime(format!("invalid dlq key {hex:?} (32 hex digits)")))
    };
    match (sub.as_str(), &pos[1..]) {
        ("list", []) => {
            if flags.contains_key("json") {
                println!("{}", dlq.list_json().map_err(CliError::Runtime)?);
                return Ok(());
            }
            let infos = dlq.list().map_err(CliError::Runtime)?;
            if infos.is_empty() {
                eprintln!("dead-letter queue is empty");
                return Ok(());
            }
            println!("{:<32}  {:>7}  {:>7}  {:<18}  error", "key", "bases", "strikes", "file");
            for info in infos {
                println!(
                    "{:<32}  {:>7}  {:>7}  {:<18}  {}",
                    info.key, info.original_len, info.strikes, info.file, info.last_error
                );
            }
            Ok(())
        }
        ("replay", [key]) => {
            let key = parse_key(key)?;
            let (info, req) = dlq.load(&key).map_err(CliError::Runtime)?;
            eprintln!(
                "replaying {} ({} bases, {} strike(s); last error: {})",
                info.file, info.original_len, info.strikes, info.last_error
            );
            // A fresh fault-free single-worker service: the letter is
            // forgiven only if the job actually completes now.
            let service = CompressionService::start(
                dnacomp::server::synthetic_framework(42),
                ServiceConfig {
                    workers: 1,
                    ..ServiceConfig::default()
                },
            );
            let ticket = service
                .submit(req)
                .map_err(|e| CliError::Runtime(format!("resubmit failed: {e}")))?;
            let outcome = ticket.wait();
            service.shutdown();
            match outcome {
                Ok(resp) => {
                    dlq.remove(&key).map_err(CliError::Runtime)?;
                    eprintln!(
                        "replay succeeded: {} -> {} bytes via {}; letter removed",
                        resp.original_len, resp.compressed_bytes, resp.algorithm
                    );
                    Ok(())
                }
                Err(e) => Err(CliError::Runtime(format!(
                    "replay failed ({e}); letter kept"
                ))),
            }
        }
        ("drop", [key]) => {
            let key = parse_key(key)?;
            if dlq.remove(&key).map_err(CliError::Runtime)? {
                eprintln!("dropped {}", key.to_hex());
                Ok(())
            } else {
                Err(CliError::Runtime(format!(
                    "no dead letter with key {}",
                    key.to_hex()
                )))
            }
        }
        _ => Err(usage(format!("dlq: bad arguments for {sub:?}"))),
    }
}

/// `dnacomp store <put|get|stat|verify|compact>` — the content-addressed
/// repository front end.
fn cmd_store(args: &[String]) -> Result<(), CliError> {
    let (flags, pos) = parse_flags(args);
    let sub = pos
        .first()
        .ok_or_else(|| usage("store: need a subcommand (put|get|stat|verify|compact|scrub)"))?;
    let dir = flags
        .get("dir")
        .ok_or_else(|| usage("store: --dir <store> required"))?;
    let open = || {
        SequenceStore::open(dir, StoreConfig::default())
            .map_err(|e| CliError::Runtime(format!("opening store {dir}: {e}")))
    };
    let parse_key = |hex: &str| {
        ContentKey::from_hex(hex)
            .ok_or_else(|| CliError::Runtime(format!("invalid store key {hex:?} (32 hex digits)")))
    };
    match (sub.as_str(), &pos[1..]) {
        ("put", [input]) => {
            let alg = algorithm_flag(&flags)?;
            let seq = read_fasta(input)?;
            let blob = compressor_for(alg)
                .compress(&seq)
                .map_err(|e| format!("compression failed: {e}"))?;
            let store = open()?;
            let out = store
                .put(&seq, &blob)
                .map_err(|e| format!("store put failed: {e}"))?;
            eprintln!(
                "{} {} bases as {} ({} bytes on disk)",
                if out.deduped { "deduplicated" } else { "stored" },
                seq.len(),
                alg.name(),
                store.snapshot().bytes_on_disk,
            );
            println!("{}", out.key.to_hex());
            Ok(())
        }
        ("get", [key, output]) => {
            let store = open()?;
            let key = parse_key(key)?;
            let blob = store
                .get(&key)
                .map_err(|e| format!("store get failed: {e}"))?;
            let seq = compressor_for(blob.algorithm)
                .decompress(&blob)
                .map_err(|e| format!("decompression failed: {e}"))?;
            let rec = Record {
                header: format!("dnacomp store {} ({})", key.to_hex(), blob.algorithm.name()),
                seq,
                cleaned: 0,
            };
            std::fs::write(output, write_fasta(std::slice::from_ref(&rec), 70))
                .map_err(|e| format!("writing {output}: {e}"))?;
            eprintln!("verified checksum; wrote {output}");
            Ok(())
        }
        ("stat", []) => {
            let store = open()?;
            let snap = store.snapshot();
            println!("records:        {}", snap.records);
            println!("segments:       {}", snap.segments);
            println!("runs:           {}", snap.runs);
            println!("tombstones:     {}", snap.tombstones);
            println!("bytes on disk:  {}", snap.bytes_on_disk);
            println!("live bytes:     {}", snap.live_bytes);
            println!("seals/merges:   {}/{}", snap.seals, snap.merges);
            println!("bloom negative: {}", snap.bloom_negatives);
            println!(
                "block cache:    {} hit / {} miss ({} bytes held)",
                snap.cache_hits, snap.cache_misses, snap.cache_bytes
            );
            println!(
                "wal:            {} append(s) in {} fsync batch(es)",
                snap.wal_appends, snap.wal_batches
            );
            for l in store.levels() {
                println!(
                    "level {}:        {} file(s), {} record(s) ({} dead), {} bytes ({} dead)",
                    l.level, l.files, l.records, l.dead_records, l.bytes, l.dead_bytes
                );
            }
            Ok(())
        }
        ("stat", [key]) => {
            let store = open()?;
            let key = parse_key(key)?;
            let stat = store
                .stat(&key)
                .ok_or_else(|| format!("unknown store key {}", key.to_hex()))?;
            println!("key:            {}", stat.key.to_hex());
            println!("algorithm:      {}", stat.algorithm.name());
            println!("original bases: {}", stat.original_len);
            println!("stored bytes:   {}", stat.stored_bytes);
            println!("level:          {}", stat.level);
            println!(
                "{} {}",
                if stat.level == 0 {
                    "segment:       "
                } else {
                    "run:           "
                },
                stat.segment
            );
            Ok(())
        }
        ("verify", []) => {
            let store = open()?;
            let report = store.verify();
            if report.is_clean() {
                eprintln!("{} record(s) verified, no corruption", report.checked);
                Ok(())
            } else {
                for f in &report.failures {
                    eprintln!("corrupt: {} ({})", f.key.to_hex(), f.error);
                }
                Err(CliError::Runtime(format!(
                    "{} of {} record(s) failed verification",
                    report.failures.len(),
                    report.checked
                )))
            }
        }
        ("compact", []) => {
            let store = open()?;
            let report = match flags.get("level") {
                Some(level) => {
                    let level: u32 = level
                        .parse()
                        .map_err(|_| usage(format!("store compact: bad --level {level:?}")))?;
                    store.compact_level(level)
                }
                None => store.compact(),
            }
            .map_err(|e| format!("compaction failed: {e}"))?;
            eprintln!(
                "removed {} file(s), reclaimed {} bytes, moved {} record(s)",
                report.segments_removed, report.bytes_reclaimed, report.records_moved
            );
            Ok(())
        }
        ("scrub", []) => {
            let store = open()?;
            let budget = match flags.get("records") {
                Some(n) => n
                    .parse()
                    .map_err(|_| usage(format!("store scrub: bad --records {n:?}")))?,
                None => usize::MAX >> 1,
            };
            let report = store.scrub_step(budget);
            if report.is_clean() {
                eprintln!("scrubbed {} run record(s), no corruption", report.checked);
                Ok(())
            } else {
                for f in &report.failures {
                    eprintln!("corrupt: {} ({})", f.key.to_hex(), f.error);
                }
                Err(CliError::Runtime(format!(
                    "{} scrub failure(s) across {} record(s)",
                    report.failures.len(),
                    report.checked
                )))
            }
        }
        _ => Err(usage(format!("store: bad arguments for {sub:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_mixed() {
        let (flags, pos) = parse_flags(&s(&["--len", "100", "-a", "dnax", "out.fa"]));
        assert_eq!(flags.get("len").unwrap(), "100");
        assert_eq!(flags.get("algorithm").unwrap(), "dnax");
        assert_eq!(pos, vec!["out.fa"]);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_compress_decompress_cycle() {
        let dir = std::env::temp_dir().join("dnacomp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("t.fa").to_string_lossy().into_owned();
        let dx = dir.join("t.dx").to_string_lossy().into_owned();
        let out = dir.join("t.out.fa").to_string_lossy().into_owned();
        run(&s(&["gen", "--len", "5000", "--seed", "9", &fa])).unwrap();
        run(&s(&["compress", "-a", "dnax", &fa, &dx])).unwrap();
        run(&s(&["info", &dx])).unwrap();
        run(&s(&["decompress", &dx, &out])).unwrap();
        let a = read_fasta(&fa).unwrap();
        let b = read_fasta(&out).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compress_rejects_unknown_algorithm() {
        let err = run(&s(&["compress", "-a", "nope", "x.fa", "y.dx"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(ref m) if m.contains("unknown algorithm")));
    }

    #[test]
    fn list_runs() {
        run(&s(&["list"])).unwrap();
    }

    #[test]
    fn missing_input_is_a_runtime_error() {
        let err = run(&s(&["compress", "/no/such/file.fa", "out.dx"])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("/no/such/file.fa")));
        let err = run(&s(&["info", "/no/such/file.dx"])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(_)));
    }

    #[test]
    fn store_cycle_put_get_stat_verify_compact() {
        let dir = std::env::temp_dir().join(format!("dnacomp-cli-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let repo = dir.join("repo").to_string_lossy().into_owned();
        let fa = dir.join("s.fa").to_string_lossy().into_owned();
        let out = dir.join("s.out.fa").to_string_lossy().into_owned();
        run(&s(&["gen", "--len", "4000", "--seed", "11", &fa])).unwrap();
        // put twice: second run must dedupe, key comes via put's stdout
        // (not capturable here) so re-derive it from the sequence.
        run(&s(&["store", "put", "--dir", &repo, &fa])).unwrap();
        run(&s(&["store", "put", "--dir", &repo, &fa])).unwrap();
        let key = ContentKey::of_sequence(&read_fasta(&fa).unwrap()).to_hex();
        run(&s(&["store", "stat", "--dir", &repo])).unwrap();
        run(&s(&["store", "stat", "--dir", &repo, &key])).unwrap();
        run(&s(&["store", "get", "--dir", &repo, &key, &out])).unwrap();
        assert_eq!(read_fasta(&fa).unwrap(), read_fasta(&out).unwrap());
        run(&s(&["store", "verify", "--dir", &repo])).unwrap();
        run(&s(&["store", "compact", "--dir", &repo])).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_persists_dlq_and_replay_drop_clear_it() {
        let dir = std::env::temp_dir().join(format!("dnacomp-cli-dlq-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let dlq = dir.join("dlq").to_string_lossy().into_owned();
        // Every file panics and one strike quarantines: each of the 3
        // unique corpus files must land in the persisted DLQ.
        run(&s(&[
            "serve", "--workers", "2", "--files", "3", "--contexts", "1", "--repeats", "1",
            "--panic-rate", "1.0", "--quarantine-after", "1", "--dlq-dir", &dlq, "--json",
        ]))
        .unwrap();
        let mut keys: Vec<String> = std::fs::read_dir(&dlq)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                (p.extension().and_then(|x| x.to_str()) == Some("json"))
                    .then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
            })
            .collect();
        keys.sort();
        assert_eq!(keys.len(), 3, "every poisoned file must be persisted");
        run(&s(&["dlq", "list", "--dir", &dlq])).unwrap();
        run(&s(&["dlq", "list", "--dir", &dlq, "--json"])).unwrap();
        // Replay is fault-free, so the job completes and the letter
        // is forgiven; drop discards another outright.
        run(&s(&["dlq", "replay", "--dir", &dlq, &keys[0]])).unwrap();
        run(&s(&["dlq", "drop", "--dir", &dlq, &keys[1]])).unwrap();
        let err = run(&s(&["dlq", "drop", "--dir", &dlq, &keys[1]])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("no dead letter")));
        let left = std::fs::read_dir(&dlq)
            .unwrap()
            .filter(|e| {
                e.as_ref().unwrap().path().extension().and_then(|x| x.to_str()) == Some("json")
            })
            .count();
        assert_eq!(left, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_unknown_key_is_a_runtime_error() {
        let dir = std::env::temp_dir().join(format!("dnacomp-cli-miss-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let repo = dir.to_string_lossy().into_owned();
        let missing = "0".repeat(32);
        let err = run(&s(&["store", "get", "--dir", &repo, &missing, "x.fa"])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("no record with key")));
        let err = run(&s(&["store", "stat", "--dir", &repo, &missing])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("unknown store key")));
        let err = run(&s(&["store", "get", "--dir", &repo, "zz", "x.fa"])).unwrap_err();
        assert!(matches!(err, CliError::Runtime(ref m) if m.contains("invalid store key")));
        // Bad argument shape is a usage error, not a runtime one.
        let err = run(&s(&["store", "put", "--dir", &repo])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let err = run(&s(&["store", "frob", "--dir", &repo])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
