//! `dnacomp` — command-line front end.
//!
//! ```text
//! dnacomp gen --len 100000 --seed 7 --model bacterial out.fa
//! dnacomp compress -a dnax in.fa out.dx
//! dnacomp decompress in.dx out.fa
//! dnacomp info in.dx
//! dnacomp decide --ram-mb 2048 --cpu-mhz 2393 --bw-mbps 2 --file-kb 120
//! ```
//!
//! `decide` trains the selector on a reduced measurement grid on first
//! use (a few seconds) and prints the chosen algorithm plus the learned
//! rules that fired.

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp::cloud::{context_grid, MachineSpec, PerfModel};
use dnacomp::core::{build_rows, label_rows, measure_corpus, Context, ContextAwareFramework, WeightVector};
use dnacomp::ml::TreeMethod;
use dnacomp::seq::fasta::{write_fasta, Cleanser, Record};
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::corpus::CorpusBuilder;
use dnacomp::seq::PackedSeq;
use dnacomp::server::{
    build_workload, run_bench, BenchConfig, CompressionService, ServiceConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  dnacomp gen --len <bases> [--seed <n>] [--model bacterial|repetitive|random] <out.fa>
  dnacomp compress -a <algorithm> <in.fa> <out.dx>
  dnacomp decompress <in.dx> <out.fa>
  dnacomp info <in.dx>
  dnacomp decide --ram-mb <n> --cpu-mhz <n> --bw-mbps <x> --file-kb <x>
  dnacomp serve --workers <n> [--files <n>] [--contexts <n>] [--repeats <n>]
                [--fault-rate <x>] [--exchange] [--json]
  dnacomp bench-serve [--workers 1,4,8] [--files <n>] [--contexts <n>]
                      [--repeats <n>] [--json] [--out <path>]
  dnacomp list
algorithms: gzip, ctw, gencompress, dnax, biocompress2, dnapack-lite, cfact, xm-lite, raw
            (`dnacomp list` prints the full set)
serve replays the synthetic corpus through the concurrent compression
service and prints the metrics registry; bench-serve sweeps worker
counts and reports wall-clock and simulated throughput.";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("decide") => cmd_decide(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("bench-serve") => cmd_bench_serve(&args[1..]),
        Some("list") => {
            for alg in Algorithm::HORIZONTAL {
                println!("{}", alg.name());
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command given".into()),
    }
}

/// Flags that take no value (`--json`, not `--json true`).
const BOOLEAN_FLAGS: [&str; 2] = ["json", "exchange"];

/// Pull `--flag value` out of an argument list; remaining positionals
/// are returned in order. Flags in [`BOOLEAN_FLAGS`] consume no value
/// and are recorded as `"true"`.
fn parse_flags(args: &[String]) -> (std::collections::HashMap<String, String>, Vec<String>) {
    let mut flags = std::collections::HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_owned(), "true".to_owned());
            } else if let Some(v) = it.next() {
                flags.insert(name.to_owned(), v.clone());
            }
        } else if a == "-a" {
            if let Some(v) = it.next() {
                flags.insert("algorithm".to_owned(), v.clone());
            }
        } else {
            positional.push(a.clone());
        }
    }
    (flags, positional)
}

fn read_fasta(path: &str) -> Result<PackedSeq, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Cleanser::default()
        .parse_single(&text)
        .map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (flags, pos) = parse_flags(args);
    let out = pos.first().ok_or("gen: missing output path")?;
    let len: usize = flags
        .get("len")
        .ok_or("gen: --len required")?
        .parse()
        .map_err(|e| format!("--len: {e}"))?;
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let model = match flags.get("model").map(String::as_str) {
        None | Some("bacterial") => GenomeModel::default(),
        Some("repetitive") => GenomeModel::highly_repetitive(),
        Some("random") => GenomeModel::random_only(0.5),
        Some(other) => return Err(format!("unknown model {other:?}")),
    };
    let seq = model.generate(len, seed);
    let rec = Record {
        header: format!("dnacomp synthetic len={len} seed={seed}"),
        seq,
        cleaned: 0,
    };
    std::fs::write(out, write_fasta(std::slice::from_ref(&rec), 70))
        .map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {len} bases to {out}");
    Ok(())
}

fn cmd_compress(args: &[String]) -> Result<(), String> {
    let (flags, pos) = parse_flags(args);
    let (input, output) = match pos.as_slice() {
        [i, o] => (i, o),
        _ => return Err("compress: need <in.fa> <out.dx>".into()),
    };
    let alg_name = flags
        .get("algorithm")
        .map(String::as_str)
        .unwrap_or("dnax");
    let alg = Algorithm::from_name(alg_name)
        .filter(|a| Algorithm::HORIZONTAL.contains(a))
        .ok_or_else(|| format!("unknown algorithm {alg_name:?}"))?;
    let seq = read_fasta(input)?;
    let compressor = compressor_for(alg);
    let t0 = std::time::Instant::now();
    let (blob, stats) = compressor
        .compress_with_stats(&seq)
        .map_err(|e| format!("compression failed: {e}"))?;
    let bytes = blob.to_bytes();
    std::fs::write(output, &bytes).map_err(|e| format!("writing {output}: {e}"))?;
    eprintln!(
        "{}: {} bases -> {} bytes ({:.3} bits/base) in {:.0} ms (peak heap {} kB)",
        alg.name(),
        seq.len(),
        bytes.len(),
        blob.bits_per_base(),
        t0.elapsed().as_secs_f64() * 1e3,
        stats.peak_heap_bytes / 1024,
    );
    Ok(())
}

fn cmd_decompress(args: &[String]) -> Result<(), String> {
    let (_, pos) = parse_flags(args);
    let (input, output) = match pos.as_slice() {
        [i, o] => (i, o),
        _ => return Err("decompress: need <in.dx> <out.fa>".into()),
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let blob = CompressedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
    if blob.algorithm == Algorithm::Reference {
        return Err("reference-based blobs need the reference; use the library API".into());
    }
    let compressor = compressor_for(blob.algorithm);
    let seq = compressor
        .decompress(&blob)
        .map_err(|e| format!("decompression failed: {e}"))?;
    let rec = Record {
        header: format!("decompressed from {input} ({})", blob.algorithm.name()),
        seq,
        cleaned: 0,
    };
    std::fs::write(output, write_fasta(std::slice::from_ref(&rec), 70))
        .map_err(|e| format!("writing {output}: {e}"))?;
    eprintln!("verified checksum; wrote {output}");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (_, pos) = parse_flags(args);
    let input = pos.first().ok_or("info: need <in.dx>")?;
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let blob = CompressedBlob::from_bytes(&bytes).map_err(|e| format!("{input}: {e}"))?;
    println!("algorithm:      {}", blob.algorithm.name());
    println!("original bases: {}", blob.original_len);
    println!("container:      {} bytes", blob.total_bytes());
    println!("bits/base:      {:.4}", blob.bits_per_base());
    println!("checksum:       {:#018x}", blob.checksum);
    Ok(())
}

fn cmd_decide(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let get = |name: &str| -> Result<f64, String> {
        flags
            .get(name)
            .ok_or_else(|| format!("decide: --{name} required"))?
            .parse()
            .map_err(|e| format!("--{name}: {e}"))
    };
    let ctx = Context {
        ram_mb: get("ram-mb")? as u32,
        cpu_mhz: get("cpu-mhz")? as u32,
        bandwidth_mbps: get("bw-mbps")?,
        file_bytes: (get("file-kb")? * 1024.0) as u64,
    };
    eprintln!("training selector on a reduced grid …");
    let files = CorpusBuilder::paper(42)
        .ncbi_files(25)
        .include_standard(false)
        .size_range(1_000, 1_000_000)
        .build();
    let ms = measure_corpus(&files, &dnacomp::algos::paper_algorithms())
        .map_err(|e| format!("measurement grid failed: {e}"))?;
    let rows = build_rows(
        &ms,
        &context_grid(),
        &PerfModel::default(),
        &MachineSpec::azure_vm(),
    );
    let labeled = label_rows(&rows, &WeightVector::time_only());
    let fw = ContextAwareFramework::train(&labeled, TreeMethod::Cart);
    let alg = fw.decide(&ctx);
    let worth = fw.worth_compressing(&ctx, &PerfModel::default());
    println!("context: {ctx:?}");
    println!("compress at all: {}", if worth { "yes" } else { "no" });
    println!("algorithm:       {}", alg.name());
    Ok(())
}

/// Shared flag parsing for `serve` / `bench-serve` workloads.
fn bench_config_from_flags(
    flags: &std::collections::HashMap<String, String>,
) -> Result<BenchConfig, String> {
    let mut cfg = BenchConfig::default();
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        flags
            .get(name)
            .map(|v| v.parse().map_err(|e| format!("--{name}: {e}")))
            .unwrap_or(Ok(default))
    };
    cfg.files = parse_usize("files", cfg.files)?;
    cfg.contexts = parse_usize("contexts", cfg.contexts)?;
    cfg.repeats = parse_usize("repeats", cfg.repeats)?;
    cfg.seed = flags
        .get("seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .unwrap_or(Ok(cfg.seed))?;
    cfg.exchange = flags.get("exchange").map(String::as_str) == Some("true");
    Ok(cfg)
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let workers: usize = flags
        .get("workers")
        .ok_or("serve: --workers required")?
        .parse()
        .map_err(|e| format!("--workers: {e}"))?;
    let mut cfg = bench_config_from_flags(&flags)?;
    let fault_rate: f64 = flags
        .get("fault-rate")
        .map(|v| v.parse().map_err(|e| format!("--fault-rate: {e}")))
        .unwrap_or(Ok(0.0))?;
    // Faults only bite on blob transfers, so a fault rate implies
    // full-exchange jobs rather than silently doing nothing.
    cfg.exchange = cfg.exchange || fault_rate > 0.0;
    eprintln!(
        "serving {} corpus files × {} contexts × {} passes on {workers} worker(s) …",
        cfg.files, cfg.contexts, cfg.repeats
    );
    let jobs = build_workload(&cfg);
    let framework = dnacomp::server::synthetic_framework(cfg.seed);
    let service = CompressionService::start(
        framework,
        ServiceConfig {
            workers,
            faults: if fault_rate > 0.0 {
                dnacomp::cloud::FaultPlan::uniform(cfg.seed, fault_rate)
            } else {
                dnacomp::cloud::FaultPlan::none()
            },
            block_bytes: (fault_rate > 0.0).then_some(4096),
            ..ServiceConfig::default()
        },
    );
    let mut tickets = Vec::with_capacity(jobs.len());
    for job in &jobs {
        loop {
            match service.submit(job.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(dnacomp::server::SubmitError::QueueFull) => std::thread::yield_now(),
                Err(e) => return Err(format!("submit failed: {e}")),
            }
        }
    }
    for t in tickets {
        let _ = t.wait(); // failures are visible in the metrics
    }
    let snapshot = service.shutdown();
    if flags.contains_key("json") {
        println!("{}", snapshot.to_json());
    } else {
        println!("jobs:       {} accepted, {} completed, {} failed, {} expired, {} rejected",
            snapshot.accepted, snapshot.completed, snapshot.failed,
            snapshot.expired, snapshot.rejected_full);
        println!(
            "cache:      {} hits / {} misses ({:.1} % hit rate)",
            snapshot.cache_hits,
            snapshot.cache_misses,
            snapshot.cache_hit_rate * 100.0
        );
        println!("queue:      peak depth {}", snapshot.peak_queue_depth);
        println!(
            "latency:    p50 {:.1} ms, p95 {:.1} ms, mean {:.1} ms (simulated)",
            snapshot.latency_p50_ms, snapshot.latency_p95_ms, snapshot.latency_mean_ms
        );
        for w in &snapshot.algorithm_wins {
            println!("wins:       {:<14} {}", w.algorithm, w.wins);
        }
    }
    Ok(())
}

fn cmd_bench_serve(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args);
    let mut cfg = bench_config_from_flags(&flags)?;
    if let Some(list) = flags.get("workers") {
        cfg.worker_counts = list
            .split(',')
            .map(|w| w.trim().parse().map_err(|e| format!("--workers: {e}")))
            .collect::<Result<_, _>>()?;
        if cfg.worker_counts.is_empty() {
            return Err("--workers: need at least one count".into());
        }
    }
    eprintln!(
        "bench-serve: {} files × {} contexts × {} passes, workers {:?} …",
        cfg.files, cfg.contexts, cfg.repeats, cfg.worker_counts
    );
    let report = run_bench(&cfg);
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "{:>7}  {:>10}  {:>14}  {:>13}  {:>12}  {:>9}",
            "workers", "jobs/s(sim)", "makespan(sim)", "jobs/s(wall)", "cache hit", "speedup"
        );
        for p in &report.sweep {
            println!(
                "{:>7}  {:>10.1}  {:>11.0} ms  {:>13.1}  {:>8.1} %  {:>8.2}x",
                p.workers,
                p.jobs_per_sim_sec,
                p.sim_makespan_ms,
                p.jobs_per_wall_sec,
                p.cache_hit_rate * 100.0,
                p.speedup_vs_one
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags_mixed() {
        let (flags, pos) = parse_flags(&s(&["--len", "100", "-a", "dnax", "out.fa"]));
        assert_eq!(flags.get("len").unwrap(), "100");
        assert_eq!(flags.get("algorithm").unwrap(), "dnax");
        assert_eq!(pos, vec!["out.fa"]);
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn gen_compress_decompress_cycle() {
        let dir = std::env::temp_dir().join("dnacomp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let fa = dir.join("t.fa").to_string_lossy().into_owned();
        let dx = dir.join("t.dx").to_string_lossy().into_owned();
        let out = dir.join("t.out.fa").to_string_lossy().into_owned();
        run(&s(&["gen", "--len", "5000", "--seed", "9", &fa])).unwrap();
        run(&s(&["compress", "-a", "dnax", &fa, &dx])).unwrap();
        run(&s(&["info", &dx])).unwrap();
        run(&s(&["decompress", &dx, &out])).unwrap();
        let a = read_fasta(&fa).unwrap();
        let b = read_fasta(&out).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn compress_rejects_unknown_algorithm() {
        let err = run(&s(&["compress", "-a", "nope", "x.fa", "y.dx"])).unwrap_err();
        assert!(err.contains("unknown algorithm"));
    }

    #[test]
    fn list_runs() {
        run(&s(&["list"])).unwrap();
    }
}
