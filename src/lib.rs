//! # dnacomp — context-aware DNA sequence compression
//!
//! Umbrella crate re-exporting the whole workspace: the compression
//! algorithms, the cloud-exchange simulator, the decision-tree learners,
//! and the context-aware selection framework that is the paper's
//! contribution.
//!
//! Reproduction of *"Towards Context-Aware DNA Sequence Compression for
//! Efficient Data Exchange"* (Lohana, Shamsi, Syed, Hasan — IPPS 2015).
//!
//! ## Quick start
//!
//! ```
//! use dnacomp::prelude::*;
//!
//! // Generate a DNA sequence and compress it with DNAX.
//! let seq = GenomeModel::default().generate(10_000, 42);
//! let dnax = Dnax::default();
//! let blob = dnax.compress(&seq).unwrap();
//! assert!(blob.payload.len() < seq.len() / 4 + 64); // beats 2 bits/base
//! assert_eq!(dnax.decompress(&blob).unwrap(), seq);
//! ```

#![forbid(unsafe_code)]

pub use dnacomp_algos as algos;
pub use dnacomp_cloud as cloud;
pub use dnacomp_codec as codec;
pub use dnacomp_core as core;
pub use dnacomp_ml as ml;
pub use dnacomp_seq as seq;
pub use dnacomp_server as server;
pub use dnacomp_store as store;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use dnacomp_algos::{
        Algorithm, CompressedBlob, Compressor, Ctw, Dnax, GenCompress, GzipRs,
    };
    pub use dnacomp_cloud::{BandwidthMbps, CloudSim, MachineSpec};
    pub use dnacomp_core::{
        label_rows, Context, ContextAwareFramework, LabeledRow, WeightVector,
    };
    pub use dnacomp_ml::{DecisionTree, TreeMethod};
    pub use dnacomp_seq::{
        corpus::CorpusBuilder, gen::GenomeModel, Base, PackedSeq,
    };
}
