//! Benches for the learning half of the paper: CHAID/CART training and
//! the inference engine's per-decision latency — the machinery behind
//! Figures 9–16 and Table 2.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnacomp_algos::Algorithm;
use dnacomp_core::{ContextAwareFramework, Context, LabeledRow};
use dnacomp_ml::TreeMethod;
use std::hint::black_box;
use std::time::Duration;

/// Synthetic labelled rows with the paper's structure: size-driven
/// winner plus context interactions.
fn synthetic_rows(n: usize) -> Vec<LabeledRow> {
    (0..n)
        .map(|i| {
            let kb = 1.0 + (i % 977) as f64 * 2.0;
            let ram = [1024u32, 2048, 3072, 4096][i % 4];
            let cpu = [1600u32, 2000, 2393, 2800][(i / 4) % 4];
            let winner = if kb < 12.0 {
                Algorithm::GenCompress
            } else if kb < 40.0 && cpu <= 2000 {
                Algorithm::Ctw
            } else {
                Algorithm::Dnax
            };
            LabeledRow {
                file: format!("f{i}"),
                file_bytes: (kb * 1024.0) as u64,
                ram_mb: ram,
                cpu_mhz: cpu,
                bandwidth_mbps: if i % 2 == 0 { 0.5 } else { 2.0 },
                winner,
                score: 0.0,
            }
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let rows = synthetic_rows(4224); // the paper's grid size
    let mut group = c.benchmark_group("train");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows.len() as u64));
    for method in [TreeMethod::Cart, TreeMethod::Chaid] {
        group.bench_function(method.to_string(), |b| {
            b.iter(|| black_box(ContextAwareFramework::train(black_box(&rows), method)))
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let rows = synthetic_rows(4224);
    let mut group = c.benchmark_group("infer");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    for method in [TreeMethod::Cart, TreeMethod::Chaid] {
        let fw = ContextAwareFramework::train(&rows, method);
        let contexts: Vec<Context> = rows
            .iter()
            .take(1000)
            .map(|r| Context {
                ram_mb: r.ram_mb,
                cpu_mhz: r.cpu_mhz,
                bandwidth_mbps: r.bandwidth_mbps,
                file_bytes: r.file_bytes,
            })
            .collect();
        group.throughput(Throughput::Elements(contexts.len() as u64));
        group.bench_function(format!("decide_{method}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for ctx in &contexts {
                    acc = acc.wrapping_add(fw.decide(black_box(ctx)).tag() as u32);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_tree_hyperparams(c: &mut Criterion) {
    use dnacomp_core::dataset::build_dataset;
    use dnacomp_ml::{cart, chaid, CartParams, ChaidParams};
    let rows = synthetic_rows(4224);
    let data = build_dataset(&rows, &[]);
    let mut group = c.benchmark_group("tree_hyperparams");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    // CART pruning strength (DESIGN.md §4 ablation) — the benchmark id
    // embeds the resulting leaf count.
    for alpha in [0.0f64, 1.0, 8.0] {
        let params = CartParams {
            prune_alpha: alpha,
            ..CartParams::default()
        };
        let leaves = cart::train_cart(&data, &params).n_leaves();
        group.bench_function(format!("cart_alpha{alpha}_{leaves}leaves"), |b| {
            b.iter(|| black_box(cart::train_cart(black_box(&data), &params)))
        });
    }
    // CHAID merge significance.
    for alpha in [0.01f64, 0.05, 0.20] {
        let params = ChaidParams {
            alpha_merge: alpha,
            alpha_split: alpha,
            ..ChaidParams::default()
        };
        let leaves = chaid::train_chaid(&data, &params).n_leaves();
        group.bench_function(format!("chaid_alpha{alpha}_{leaves}leaves"), |b| {
            b.iter(|| black_box(chaid::train_chaid(black_box(&data), &params)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference, bench_tree_hyperparams);
criterion_main!(benches);
