//! Micro-benchmarks of the shared codec substrate: the primitives every
//! compressor is assembled from.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::ctw::{BitHistory, CtwTree};
use dnacomp_codec::fibonacci::{fib_decode, fib_encode, gamma_decode, gamma_encode};
use dnacomp_codec::huffman::HuffmanCode;
use dnacomp_codec::lz::{detokenize, tokenize, LzConfig};
use dnacomp_codec::models::ContextModel;
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder};
use dnacomp_seq::gen::GenomeModel;
use std::hint::black_box;
use std::time::Duration;

const N: usize = 64_000;

fn bench_bitio(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitio");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("write_read_3bit", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity_bits(N * 3);
            for i in 0..N {
                w.push_bits((i % 7) as u64, 3);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..N {
                acc += r.read_bits(3).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_arith_order2(c: &mut Criterion) {
    let seq = GenomeModel::default().generate(N, 7);
    let symbols: Vec<usize> = seq.iter().map(|b| b.code() as usize).collect();
    let mut group = c.benchmark_group("arith");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("order2_encode", |b| {
        b.iter(|| {
            let mut model = ContextModel::new(2);
            let mut enc = ArithEncoder::new();
            for &s in &symbols {
                model.encode(&mut enc, s);
            }
            black_box(enc.finish())
        })
    });
    let bytes = {
        let mut model = ContextModel::new(2);
        let mut enc = ArithEncoder::new();
        for &s in &symbols {
            model.encode(&mut enc, s);
        }
        enc.finish()
    };
    group.bench_function("order2_decode", |b| {
        b.iter(|| {
            let mut model = ContextModel::new(2);
            let mut dec = ArithDecoder::new(&bytes);
            let mut acc = 0usize;
            for _ in 0..N {
                acc += model.decode(&mut dec).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_universal_codes(c: &mut Criterion) {
    let values: Vec<u64> = (1..=10_000u64).map(|i| i * 37 % 100_000 + 1).collect();
    let mut group = c.benchmark_group("universal_codes");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("fibonacci_roundtrip", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                fib_encode(&mut w, v).unwrap();
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in &values {
                acc ^= fib_decode(&mut r).unwrap();
            }
            black_box(acc)
        })
    });
    group.bench_function("gamma_roundtrip", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &v in &values {
                gamma_encode(&mut w, v).unwrap();
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in &values {
                acc ^= gamma_decode(&mut r).unwrap();
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let seq = GenomeModel::default().generate(N, 9);
    let data = seq.to_ascii().into_bytes();
    let mut freqs = vec![0u64; 256];
    for &b in &data {
        freqs[b as usize] += 1;
    }
    let mut group = c.benchmark_group("huffman");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Bytes(N as u64));
    group.bench_function("build_encode", |b| {
        b.iter(|| {
            let code = HuffmanCode::from_freqs(&freqs).unwrap();
            let mut w = BitWriter::new();
            for &byte in &data {
                code.encode(&mut w, byte as usize).unwrap();
            }
            black_box(w.into_bytes())
        })
    });
    group.finish();
}

fn bench_lz(c: &mut Criterion) {
    let seq = GenomeModel::highly_repetitive().generate(N, 11);
    let data = seq.to_ascii().into_bytes();
    let mut group = c.benchmark_group("lz77");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Bytes(N as u64));
    for (name, cfg) in [
        ("fast", LzConfig::fast()),
        ("default", LzConfig::default()),
        ("best", LzConfig::best()),
    ] {
        group.bench_function(format!("tokenize_{name}"), |b| {
            b.iter(|| black_box(tokenize(black_box(&data), &cfg)))
        });
    }
    let tokens = tokenize(&data, &LzConfig::default());
    group.bench_function("detokenize", |b| {
        b.iter(|| black_box(detokenize(black_box(&tokens)).unwrap()))
    });
    group.finish();
}

fn bench_ctw_tree(c: &mut Criterion) {
    let seq = GenomeModel::default().generate(N / 4, 13);
    let bits: Vec<bool> = seq
        .iter()
        .flat_map(|b| [(b.code() >> 1) & 1 == 1, b.code() & 1 == 1])
        .collect();
    let mut group = c.benchmark_group("ctw_tree");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(bits.len() as u64));
    for depth in [8usize, 16, 24] {
        group.bench_function(format!("predict_commit_d{depth}"), |b| {
            b.iter(|| {
                let mut tree = CtwTree::new(depth);
                let mut hist = BitHistory::new();
                for &bit in &bits {
                    let (num, den) = tree.predict(hist.value());
                    black_box((num, den));
                    tree.commit(bit);
                    hist.push(bit);
                }
                black_box(tree.node_count())
            })
        });
    }
    group.finish();
}

fn bench_repeat_finder(c: &mut Criterion) {
    let seq = GenomeModel::highly_repetitive().generate(N, 17);
    let bases = seq.unpack();
    let mut group = c.benchmark_group("repeat_finder");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("sweep_find", |b| {
        b.iter(|| {
            let mut finder = RepeatFinder::new(&bases, RepeatConfig::default());
            let mut found = 0usize;
            let mut i = 0usize;
            while i < bases.len() {
                finder.advance(i);
                match finder.find(i) {
                    Some(m) if m.len >= 24 => {
                        found += 1;
                        i += m.len;
                    }
                    _ => i += 1,
                }
            }
            black_box(found)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bitio,
    bench_arith_order2,
    bench_universal_codes,
    bench_huffman,
    bench_lz,
    bench_ctw_tree,
    bench_repeat_finder
);
criterion_main!(benches);
