//! Ablation benches for the design choices DESIGN.md §4 calls out:
//! DNAX's repeat threshold, GenCompress's mismatch budget, CTW's depth,
//! and gzip's effort preset. Each reports wall time; ratio ablations are
//! asserted in the integration tests and printed here via
//! `--noplot`-friendly labels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dnacomp_algos::{Compressor, Ctw, Dnax, GenCompress, GzipRs};
use dnacomp_seq::gen::GenomeModel;
use std::hint::black_box;
use std::time::Duration;

const N: usize = 64_000;

fn bench_dnax_threshold(c: &mut Criterion) {
    let seq = GenomeModel::highly_repetitive().generate(N, 21);
    let mut group = c.benchmark_group("ablation_dnax_min_repeat");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(N as u64));
    for min_repeat in [16usize, 24, 48, 96] {
        let alg = Dnax::with_min_repeat(min_repeat);
        let bytes = alg.compress(&seq).unwrap().total_bytes();
        group.bench_with_input(
            BenchmarkId::new("compress", format!("t{min_repeat}_{bytes}B")),
            &alg,
            |b, alg| b.iter(|| black_box(alg.compress(black_box(&seq)).unwrap())),
        );
    }
    group.finish();
}

fn bench_gencompress_budget(c: &mut Criterion) {
    let mut model = GenomeModel::default();
    model.mutated.rate = 0.01;
    let seq = model.generate(N, 23);
    let mut group = c.benchmark_group("ablation_gencompress_mismatches");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(N as u64));
    for budget in [0usize, 8, 24, 64] {
        let alg = GenCompress::with_mismatch_budget(budget);
        let bytes = alg.compress(&seq).unwrap().total_bytes();
        group.bench_with_input(
            BenchmarkId::new("compress", format!("m{budget}_{bytes}B")),
            &alg,
            |b, alg| b.iter(|| black_box(alg.compress(black_box(&seq)).unwrap())),
        );
    }
    group.finish();
}

fn bench_ctw_depth(c: &mut Criterion) {
    let seq = GenomeModel::default().generate(N / 2, 25);
    let mut group = c.benchmark_group("ablation_ctw_depth");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(seq.len() as u64));
    for depth in [4usize, 8, 16, 24] {
        let alg = Ctw::with_depth(depth);
        let bytes = alg.compress(&seq).unwrap().total_bytes();
        group.bench_with_input(
            BenchmarkId::new("compress", format!("d{depth}_{bytes}B")),
            &alg,
            |b, alg| b.iter(|| black_box(alg.compress(black_box(&seq)).unwrap())),
        );
    }
    group.finish();
}

fn bench_gzip_effort(c: &mut Criterion) {
    let seq = GenomeModel::default().generate(N, 27);
    let mut group = c.benchmark_group("ablation_gzip_effort");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    group.throughput(Throughput::Bytes(N as u64));
    for (name, alg) in [
        ("fast", GzipRs::fast()),
        ("default", GzipRs::default()),
        ("best", GzipRs::best()),
    ] {
        let bytes = alg.compress(&seq).unwrap().total_bytes();
        group.bench_with_input(
            BenchmarkId::new("compress", format!("{name}_{bytes}B")),
            &alg,
            |b, alg| b.iter(|| black_box(alg.compress(black_box(&seq)).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dnax_threshold,
    bench_gencompress_budget,
    bench_ctw_depth,
    bench_gzip_effort
);
criterion_main!(benches);
