//! Per-algorithm compress/decompress wall-time benches — the Criterion
//! counterpart of Figures 4/5 (size & time per algorithm). The repro
//! binary derives the paper's context-scaled times from work units; these
//! benches measure the actual Rust ports on this machine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dnacomp_algos::all_algorithms;
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::PackedSeq;
use std::hint::black_box;
use std::time::Duration;

fn sequences() -> Vec<(&'static str, PackedSeq)> {
    vec![
        ("bacterial_16k", GenomeModel::default().generate(16_000, 1)),
        (
            "repetitive_16k",
            GenomeModel::highly_repetitive().generate(16_000, 2),
        ),
        ("random_16k", GenomeModel::random_only(0.5).generate(16_000, 3)),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let seqs = sequences();
    let mut group = c.benchmark_group("compress");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for compressor in all_algorithms() {
        for (kind, seq) in &seqs {
            group.throughput(Throughput::Bytes(seq.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(compressor.name(), kind),
                seq,
                |b, seq| b.iter(|| black_box(compressor.compress(black_box(seq)).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let seqs = sequences();
    let mut group = c.benchmark_group("decompress");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_millis(1200));
    group.sample_size(10);
    for compressor in all_algorithms() {
        for (kind, seq) in &seqs {
            let blob = compressor.compress(seq).unwrap();
            group.throughput(Throughput::Bytes(seq.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(compressor.name(), kind),
                &blob,
                |b, blob| b.iter(|| black_box(compressor.decompress(black_box(blob)).unwrap())),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
