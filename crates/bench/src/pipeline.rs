//! The shared experiment pipeline behind every figure and table.
//!
//! Corpus → per-(file, algorithm) measurements (cached on disk — the
//! expensive part) → context-grid expansion → Eq.-1 labelling →
//! file-level train/test split (the paper holds out 33 of 132 files,
//! §V: "33 files so 33·32 = 1056 rows").

use dnacomp_algos::paper_algorithms;
use dnacomp_cloud::{context_grid, ClientContext, MachineSpec, PerfModel};
use dnacomp_core::{build_rows, measure_corpus, ExperimentRow, Measurement};
use dnacomp_core::{label_rows, LabeledRow, WeightVector};
use dnacomp_seq::corpus::{CorpusBuilder, FileSpec};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper grid: 132 files up to 2 MB. Minutes of measurement,
    /// cached after the first run.
    Paper,
    /// A reduced grid for CI and quick iterations: 24 files up to 200 kB.
    Quick,
}

impl Scale {
    /// Resolve from the environment (`DNACOMP_SCALE=quick|paper`),
    /// defaulting to `Paper`.
    pub fn from_env() -> Scale {
        match std::env::var("DNACOMP_SCALE").as_deref() {
            Ok("quick") | Ok("QUICK") => Scale::Quick,
            _ => Scale::Paper,
        }
    }

    fn corpus(&self, seed: u64) -> Vec<FileSpec> {
        match self {
            Scale::Paper => CorpusBuilder::paper(seed).build(),
            Scale::Quick => CorpusBuilder::paper(seed)
                .ncbi_files(13)
                .include_standard(true)
                .size_range(1_000, 200_000)
                .build(),
        }
    }

    fn tag(&self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Quick => "quick",
        }
    }
}

/// Everything downstream experiments need.
pub struct Pipeline {
    /// Corpus file specs.
    pub files: Vec<FileSpec>,
    /// Per-(file, algorithm) measurements.
    pub measurements: Vec<Measurement>,
    /// Fully expanded experiment rows (files × 32 contexts × algos).
    pub rows: Vec<ExperimentRow>,
    /// The context grid.
    pub contexts: Vec<ClientContext>,
    /// The performance model used.
    pub perf: PerfModel,
    /// The cloud VM.
    pub cloud_vm: MachineSpec,
}

impl Pipeline {
    /// Build the pipeline, reusing the measurement cache when present.
    pub fn load_or_run(seed: u64, scale: Scale) -> Pipeline {
        let files = scale.corpus(seed);
        // Key the cache on the corpus content so corpus changes cannot
        // serve stale measurements.
        let mut spec_hash = dnacomp_codec::checksum::Fnv1a::new();
        for f in &files {
            spec_hash.update(f.name.as_bytes());
            spec_hash.update(&(f.len as u64).to_le_bytes());
            spec_hash.update(&f.seed.to_le_bytes());
        }
        let cache = crate::results_dir().join(format!(
            "cache_measurements_{}_{}_{:016x}.json",
            scale.tag(),
            seed,
            spec_hash.digest()
        ));
        let measurements: Vec<Measurement> = match crate::load_cache(&cache) {
            Some(m) => m,
            None => {
                eprintln!(
                    "[pipeline] measuring {} files × 4 algorithms (cached at {}) …",
                    files.len(),
                    cache.display()
                );
                let m = measure_corpus(&files, &paper_algorithms())
                    .expect("corpus measurement failed");
                let _ = crate::store_cache(&cache, &m);
                m
            }
        };
        let contexts = context_grid();
        let perf = PerfModel::default();
        let cloud_vm = MachineSpec::azure_vm();
        let rows = build_rows(&measurements, &contexts, &perf, &cloud_vm);
        Pipeline {
            files,
            measurements,
            rows,
            contexts,
            perf,
            cloud_vm,
        }
    }

    /// Label every (file, context) cell under `weights` (paper Eq. 1,
    /// raw units).
    pub fn labeled(&self, weights: &WeightVector) -> Vec<LabeledRow> {
        label_rows(&self.rows, weights)
    }

    /// Label with the improved (max-normalised) Eq. 1 — the paper's
    /// future-work variant.
    pub fn labeled_normalized(&self, weights: &WeightVector) -> Vec<LabeledRow> {
        dnacomp_core::label_rows_with(
            &self.rows,
            weights,
            dnacomp_core::Normalization::MaxNormalized,
        )
    }

    /// File-level 75/25 split of labelled rows: every fourth file (by
    /// corpus order) is held out, mirroring the paper's 33-file test set.
    pub fn split_by_file(&self, labeled: &[LabeledRow]) -> (Vec<LabeledRow>, Vec<LabeledRow>) {
        let test_files: std::collections::HashSet<&str> = self
            .files
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 4 == 3)
            .map(|(_, f)| f.name.as_str())
            .collect();
        let mut train = Vec::new();
        let mut test = Vec::new();
        for row in labeled {
            if test_files.contains(row.file.as_str()) {
                test.push(row.clone());
            } else {
                train.push(row.clone());
            }
        }
        (train, test)
    }

    /// Test rows sorted by file size then context — the row-id axis the
    /// validation figures use (Figure 8 plots exactly this layout).
    pub fn order_rows(mut rows: Vec<LabeledRow>) -> Vec<LabeledRow> {
        rows.sort_by(|a, b| {
            a.file_bytes
                .cmp(&b.file_bytes)
                .then_with(|| a.file.cmp(&b.file))
                .then_with(|| a.ram_mb.cmp(&b.ram_mb))
                .then_with(|| a.cpu_mhz.cmp(&b.cpu_mhz))
                .then_with(|| a.bandwidth_mbps.total_cmp(&b.bandwidth_mbps))
        });
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_pipeline() -> Pipeline {
        // Use a private results dir to avoid clobbering user results.
        std::env::set_var("DNACOMP_RESULTS", "/tmp/dnacomp-bench-test-results");
        Pipeline::load_or_run(7, Scale::Quick)
    }

    #[test]
    fn pipeline_shapes() {
        let p = quick_pipeline();
        assert_eq!(p.files.len(), 24);
        assert_eq!(p.measurements.len(), 24 * 4);
        assert_eq!(p.rows.len(), 24 * 4 * 32);
        let labeled = p.labeled(&WeightVector::time_only());
        assert_eq!(labeled.len(), 24 * 32);
        let (train, test) = p.split_by_file(&labeled);
        assert_eq!(test.len(), 6 * 32);
        assert_eq!(train.len(), 18 * 32);
    }

    #[test]
    fn cache_roundtrip() {
        let p1 = quick_pipeline();
        let p2 = quick_pipeline(); // second load hits the cache
        assert_eq!(p1.measurements, p2.measurements);
    }

    #[test]
    fn ordering_is_by_size() {
        let p = quick_pipeline();
        let labeled = p.labeled(&WeightVector::time_only());
        let ordered = Pipeline::order_rows(labeled);
        assert!(ordered.windows(2).all(|w| w[0].file_bytes <= w[1].file_bytes));
    }
}
