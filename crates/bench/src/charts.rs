//! Plain-text chart rendering for the repro reports.
//!
//! The paper's figures are bar/line charts; the harness renders ASCII
//! equivalents so EXPERIMENTS.md can embed them and a terminal run shows
//! the shape at a glance. CSV twins carry the exact numbers.

/// Horizontal bar chart: one labelled bar per row.
pub fn bar_chart(title: &str, rows: &[(String, f64)], unit: &str) -> String {
    let mut out = format!("## {title}\n");
    let max = rows.iter().map(|r| r.1).fold(f64::EPSILON, f64::max);
    let label_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(0);
    for (label, value) in rows {
        let filled = ((value / max) * 50.0).round() as usize;
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {value:.1} {unit}\n",
            "#".repeat(filled),
            " ".repeat(50 - filled.min(50)),
        ));
    }
    out
}

/// Grouped series rendered as aligned columns: for each x-label, one
/// value per series.
pub fn series_table(
    title: &str,
    x_label: &str,
    series_names: &[String],
    rows: &[(String, Vec<f64>)],
) -> String {
    let mut out = format!("## {title}\n{x_label:<24}");
    for name in series_names {
        out.push_str(&format!("{name:>16}"));
    }
    out.push('\n');
    for (x, values) in rows {
        out.push_str(&format!("{x:<24}"));
        for v in values {
            out.push_str(&format!("{v:>16.1}"));
        }
        out.push('\n');
    }
    out
}

/// Match/gap strip: the validation figures (9, 11, 13, 15) show gaps
/// where rules mispredict. One character per test row: `#` match,
/// `.` gap.
pub fn gap_strip(title: &str, matches: &[bool], width: usize) -> String {
    let mut out = format!("## {title}\n");
    let width = width.max(8);
    for chunk in matches.chunks(width) {
        let line: String = chunk.iter().map(|&m| if m { '#' } else { '.' }).collect();
        out.push_str(&line);
        out.push('\n');
    }
    let acc = if matches.is_empty() {
        0.0
    } else {
        matches.iter().filter(|&&m| m).count() as f64 / matches.len() as f64
    };
    out.push_str(&format!(
        "rows={} matched={} accuracy={:.4}\n",
        matches.len(),
        matches.iter().filter(|&&m| m).count(),
        acc
    ));
    out
}

/// Normalised multi-line chart (the "analysis based on context" figures
/// 10/12/14/16): several series in \[0,1\] plus a ±1 match line, sampled
/// row by row.
pub fn context_analysis(
    title: &str,
    series_names: &[String],
    rows: &[Vec<f64>],
    matches: &[bool],
) -> String {
    let mut out = format!("## {title}\nrow  match ");
    for n in series_names {
        out.push_str(&format!("{n:>14}"));
    }
    out.push('\n');
    for (i, (vals, &m)) in rows.iter().zip(matches).enumerate() {
        out.push_str(&format!("{i:<4} {:>5} ", if m { "+1" } else { "-1" }));
        for v in vals {
            out.push_str(&format!("{v:>14.3}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let rows = vec![("a".to_owned(), 10.0), ("bb".to_owned(), 5.0)];
        let c = bar_chart("t", &rows, "ms");
        assert!(c.contains("## t"));
        let lines: Vec<&str> = c.lines().collect();
        let a_bars = lines[1].matches('#').count();
        let b_bars = lines[2].matches('#').count();
        assert_eq!(a_bars, 50);
        assert_eq!(b_bars, 25);
    }

    #[test]
    fn gap_strip_counts() {
        let c = gap_strip("v", &[true, true, false, true], 2);
        assert!(c.contains("accuracy=0.7500"));
        assert!(c.contains("##"));
        assert!(c.contains(".#"));
    }

    #[test]
    fn gap_strip_empty() {
        let c = gap_strip("v", &[], 10);
        assert!(c.contains("accuracy=0.0000"));
    }

    #[test]
    fn series_table_layout() {
        let c = series_table(
            "t",
            "ctx",
            &["A".into(), "B".into()],
            &[("x1".into(), vec![1.0, 2.0])],
        );
        assert!(c.contains("x1"));
        assert!(c.contains("1.0"));
        assert!(c.contains("2.0"));
    }

    #[test]
    fn context_analysis_renders_matches() {
        let c = context_analysis(
            "t",
            &["cpu".into()],
            &[vec![0.5], vec![0.7]],
            &[true, false],
        );
        assert!(c.contains("+1"));
        assert!(c.contains("-1"));
    }
}
