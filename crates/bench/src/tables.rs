//! Generators for the paper's tables.

use crate::pipeline::Pipeline;
use crate::{to_csv, write_result};
use dnacomp_algos::Algorithm;
use dnacomp_core::WeightVector;
use dnacomp_ml::TreeMethod;

/// Table 1 — algorithm survey: methodology/encoding per Table 1 of the
/// paper, plus *measured* mean bits/base of our ports over the corpus.
pub fn tab1(p: &Pipeline) -> String {
    // (name, methodology, repeat encoding, non-repeat encoding)
    let survey: [(Algorithm, &str, &str, &str); 4] = [
        (
            Algorithm::Ctw,
            "context tree weighting over bit-decomposed bases",
            "n/a (statistical)",
            "arithmetic coding of the CTW mixture",
        ),
        (
            Algorithm::Dnax,
            "exact repeats and reverse complement",
            "gamma-coded (kind, length, distance) pointers",
            "order-2 arithmetic coding",
        ),
        (
            Algorithm::GenCompress,
            "approximate repeats via edit (Hamming) operations",
            "pointer + substitution list",
            "order-2 arithmetic coding",
        ),
        (
            Algorithm::Gzip,
            "LZ77 window matching on the ASCII file",
            "Huffman-coded length/distance pairs",
            "Huffman-coded literals",
        ),
    ];
    let mut csv_rows = Vec::new();
    let mut txt = String::from("## Table 1 — algorithms, encodings, measured ratio\n");
    for (alg, method, rep, nonrep) in survey {
        let bpb = {
            let mut sum = 0.0;
            let mut n = 0;
            for m in p.measurements.iter().filter(|m| m.algorithm == alg) {
                if m.original_len > 0 {
                    sum += m.blob_bytes as f64 * 8.0 / m.original_len as f64;
                    n += 1;
                }
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        txt.push_str(&format!(
            "{:<12} | {method}\n{:<12} |   repeats: {rep}\n{:<12} |   non-repeats: {nonrep}\n{:<12} |   measured: {bpb:.3} bits/base\n",
            alg.name(), "", "", ""
        ));
        csv_rows.push(vec![
            alg.name().to_owned(),
            method.to_owned(),
            rep.to_owned(),
            nonrep.to_owned(),
            format!("{bpb:.4}"),
        ]);
    }
    write_result(
        "tab1.csv",
        &to_csv(
            &["algorithm", "methodology", "repeat_encoding", "nonrepeat_encoding", "bits_per_base"],
            &csv_rows,
        ),
    )
    .expect("write csv");
    write_result("tab1.txt", &txt).expect("write txt");
    "tab1: algorithm survey with measured bits/base written".to_owned()
}

/// The weight combinations of Table 2, in its row order.
pub fn tab2_configs() -> Vec<(&'static str, WeightVector)> {
    vec![
        ("RAM 100", WeightVector::ram_only()),
        ("TIME 100", WeightVector::time_only()),
        ("CompressionTime 100", WeightVector::compress_time_only()),
        ("RAM:TIME 60:40", WeightVector::ram_time(60.0, 40.0)),
        ("RAM:TIME 40:60", WeightVector::ram_time(40.0, 60.0)),
        ("RAM:TIME 70:30", WeightVector::ram_time(70.0, 30.0)),
        ("RAM:TIME 30:70", WeightVector::ram_time(30.0, 70.0)),
        ("RAM:TIME 80:20", WeightVector::ram_time(80.0, 20.0)),
        ("RAM:TIME 20:80", WeightVector::ram_time(20.0, 80.0)),
        ("RAM:TIME 90:10", WeightVector::ram_time(90.0, 10.0)),
        ("RAM:TIME 10:90", WeightVector::ram_time(10.0, 90.0)),
        ("RAM:CT 50:50", WeightVector::ram_compress(50.0, 50.0)),
        (
            "RAM:CT:UP 33:33:33",
            WeightVector::ram_compress_upload(33.0, 33.0, 33.0),
        ),
        (
            "RAM:CT:UP 20:40:40",
            WeightVector::ram_compress_upload(20.0, 40.0, 40.0),
        ),
        (
            "RAM:CT:UP 40:40:20",
            WeightVector::ram_compress_upload(40.0, 40.0, 20.0),
        ),
        (
            "RAM:CT:UP 40:50:10",
            WeightVector::ram_compress_upload(40.0, 50.0, 10.0),
        ),
    ]
}

/// Table 2 — accuracy of the generated rules for every weight
/// combination × method, under the paper's literal Eq. 1.
pub fn tab2(p: &Pipeline) -> String {
    tab2_impl(p, "tab2", false)
}

/// Extension: Table 2 re-run with the improved (max-normalised) Eq. 1 —
/// the paper's stated future work ("improve the Eq. 1", §VI).
pub fn tab2x(p: &Pipeline) -> String {
    tab2_impl(p, "tab2x", true)
}

fn tab2_impl(p: &Pipeline, id: &str, normalized: bool) -> String {
    let variant = if normalized {
        "improved (max-normalised) Eq. 1"
    } else {
        "paper Eq. 1 (raw units)"
    };
    let mut csv_rows = Vec::new();
    let mut txt = format!("## Table 2 — accuracy of generated rules — {variant}\n");
    txt.push_str(&format!("{:<24} {:>8} {:>8}\n", "weights", "CART", "CHAID"));
    for (name, weights) in tab2_configs() {
        let cart = crate::figures::validate_with(p, TreeMethod::Cart, &weights, normalized)
            .accuracy;
        let chaid =
            crate::figures::validate_with(p, TreeMethod::Chaid, &weights, normalized).accuracy;
        txt.push_str(&format!(
            "{name:<24} {:>8.2} {:>8.2}\n",
            cart * 100.0,
            chaid * 100.0
        ));
        csv_rows.push(vec![
            name.to_owned(),
            format!("{:.2}", cart * 100.0),
            format!("{:.2}", chaid * 100.0),
        ]);
    }
    write_result(
        &format!("{id}.csv"),
        &to_csv(&["weights", "cart_accuracy_pct", "chaid_accuracy_pct"], &csv_rows),
    )
    .expect("write csv");
    write_result(&format!("{id}.txt"), &txt).expect("write txt");
    format!("{id}: accuracy sweep written ({variant})")
}
