//! Extension experiments beyond the paper's own figures — each realises
//! one of the paper's related-work/future-work threads (DESIGN.md §4).

use crate::pipeline::Pipeline;
use crate::{to_csv, write_result};
use dnacomp_algos::refcomp::{ReferenceCompressor, ReferenceIndex};
use dnacomp_algos::{Compressor, Dnax};
use dnacomp_cloud::{Ace, ClientContext, PerfModel};
use dnacomp_seq::gen::GenomeModel;
use dnacomp_seq::{Base, PackedSeq};

/// ext1 — vertical-mode reference compression: ratio vs block size
/// (paper §III: "by increasing block size more efficient results are
/// achieved"; §VI future work on vertical sequences).
pub fn ext1(_p: &Pipeline) -> String {
    let reference = GenomeModel::default().generate(400_000, 1001);
    // A same-species target: 99.9 % identical (§II-B).
    let target = {
        let mut bases = reference.unpack();
        let mut x = 12345u64;
        let mut i = 997usize;
        while i < bases.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            bases[i] = Base::from_code(bases[i].code().wrapping_add(1 + (x >> 60) as u8 % 3));
            i += 997;
        }
        PackedSeq::from(bases.as_slice())
    };
    let horizontal = Dnax::default().compress(&target).expect("dnax");
    let mut csv_rows = Vec::new();
    let mut txt = String::from("## ext1 — reference (vertical) compression vs block size\n");
    txt.push_str(&format!(
        "target: {} bases, 1 substitution per 997 (99.9% identity)\n",
        target.len()
    ));
    txt.push_str(&format!(
        "horizontal baseline (DNAX, no reference): {} bytes ({:.3} bits/base)\n",
        horizontal.total_bytes(),
        horizontal.bits_per_base()
    ));
    let mut last = usize::MAX;
    for block_log2 in [10u32, 12, 14, 16, 18] {
        let block = 1usize << block_log2;
        let rc = ReferenceCompressor {
            block,
            ..ReferenceCompressor::default()
        };
        let index = ReferenceIndex::build(&reference, block);
        let blob = rc.compress(&index, &target).expect("refcomp");
        let back = rc.decompress(&index, &blob).expect("ref decode");
        assert_eq!(back, target, "vertical roundtrip");
        let ratio = target.len() as f64 / blob.total_bytes() as f64;
        txt.push_str(&format!(
            "block 2^{block_log2:<2} = {block:>7} B : {:>6} bytes  (1:{ratio:.0})\n",
            blob.total_bytes()
        ));
        csv_rows.push(vec![
            block.to_string(),
            blob.total_bytes().to_string(),
            format!("{ratio:.1}"),
        ]);
        last = blob.total_bytes().min(last);
    }
    write_result(
        "ext1.csv",
        &to_csv(&["block_bases", "compressed_bytes", "ratio_to_one"], &csv_rows),
    )
    .expect("write csv");
    write_result("ext1.txt", &txt).expect("write txt");
    format!(
        "ext1: vertical reference compression — best {} bytes vs horizontal {} bytes",
        last,
        horizontal.total_bytes()
    )
}

/// ext2 — ACE-style adaptive on-the-fly compression across bandwidths
/// (paper §III, Krintz & Sucu): fraction of chunks compressed and total
/// time vs the two static policies.
pub fn ext2(_p: &Pipeline) -> String {
    let perf = PerfModel {
        time_jitter: 0.0,
        ..PerfModel::default()
    };
    let seq = GenomeModel::default().generate(240_000, 2002);
    let mut csv_rows = Vec::new();
    let mut txt = String::from("## ext2 — ACE adaptive streaming vs static policies\n");
    txt.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>12} {:>12}\n",
        "bw_mbps", "comp_frac", "ace_ms", "all_raw_ms", "all_comp_ms"
    ));
    for bw in [0.25f64, 0.5, 1.0, 2.0, 8.0, 50.0, 200.0] {
        let mut ace = Ace::new(8_192);
        let ctx = ClientContext::new(3072, 2393, bw);
        let dnax = Dnax::default();
        let report = ace
            .ship_stream(&perf, &ctx, &dnax, &format!("s{bw}"), &seq)
            .expect("ace stream");
        txt.push_str(&format!(
            "{bw:<10} {:>10.2} {:>12.0} {:>12.0} {:>12.0}\n",
            report.compressed_fraction(),
            report.total_ms,
            report.all_raw_ms,
            report.all_compressed_ms
        ));
        csv_rows.push(vec![
            bw.to_string(),
            format!("{:.3}", report.compressed_fraction()),
            format!("{:.1}", report.total_ms),
            format!("{:.1}", report.all_raw_ms),
            format!("{:.1}", report.all_compressed_ms),
        ]);
    }
    write_result(
        "ext2.csv",
        &to_csv(
            &["bw_mbps", "compressed_fraction", "ace_ms", "all_raw_ms", "all_compressed_ms"],
            &csv_rows,
        ),
    )
    .expect("write csv");
    write_result("ext2.txt", &txt).expect("write txt");
    "ext2: ACE adaptive streaming sweep written".to_owned()
}

/// ext3 — the extension compressors alongside the paper four: measured
/// bits/base and resource profile on a common input.
pub fn ext3(_p: &Pipeline) -> String {
    let seq = GenomeModel::default().generate(120_000, 3003);
    let mut csv_rows = Vec::new();
    let mut txt = String::from("## ext3 — full algorithm portfolio on a 120 kB bacterial-like input\n");
    txt.push_str(&format!(
        "{:<14} {:>10} {:>10} {:>12} {:>12}\n",
        "algorithm", "bytes", "bits/base", "comp_work", "heap_kB"
    ));
    for c in dnacomp_algos::all_algorithms() {
        let (blob, stats) = c.compress_with_stats(&seq).expect("compress");
        let back = c.decompress(&blob).expect("decode");
        assert_eq!(back, seq);
        txt.push_str(&format!(
            "{:<14} {:>10} {:>10.3} {:>12} {:>12}\n",
            c.name(),
            blob.total_bytes(),
            blob.bits_per_base(),
            stats.work_units,
            stats.peak_heap_bytes / 1024
        ));
        csv_rows.push(vec![
            c.name().to_owned(),
            blob.total_bytes().to_string(),
            format!("{:.4}", blob.bits_per_base()),
            stats.work_units.to_string(),
            (stats.peak_heap_bytes / 1024).to_string(),
        ]);
    }
    write_result(
        "ext3.csv",
        &to_csv(
            &["algorithm", "bytes", "bits_per_base", "work_units", "heap_kb"],
            &csv_rows,
        ),
    )
    .expect("write csv");
    write_result("ext3.txt", &txt).expect("write txt");
    "ext3: full portfolio table written".to_owned()
}

/// ext4 — multi-sequence sets: horizontal vs vertical strategies (paper
/// §VI future work: "the compression of multiple sequences, that is,
/// vertical sequences using horizontal algorithm vs the vertical
/// algorithms").
pub fn ext4(_p: &Pipeline) -> String {
    // Five same-species samples: one ancestor plus four mutated copies.
    let ancestor = GenomeModel::default().generate(150_000, 4004);
    let samples: Vec<PackedSeq> = (0..5)
        .map(|k| {
            if k == 0 {
                ancestor.clone()
            } else {
                let mut bases = ancestor.unpack();
                let mut x = 999u64 + k as u64;
                let mut i = 800 + k * 37;
                while i < bases.len() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    bases[i] =
                        Base::from_code(bases[i].code().wrapping_add(1 + (x >> 60) as u8 % 3));
                    i += 800;
                }
                PackedSeq::from(bases.as_slice())
            }
        })
        .collect();
    let dnax = Dnax::default();
    // (a) Horizontal, each sample independently.
    let independent: usize = samples
        .iter()
        .map(|s| dnax.compress(s).expect("dnax").total_bytes())
        .sum();
    // (b) Horizontal over the concatenated set: cross-sample repeats
    // become in-sequence repeats.
    let concatenated = {
        let mut all: Vec<Base> = Vec::new();
        for s in &samples {
            all.extend(s.unpack());
        }
        let seq = PackedSeq::from(all.as_slice());
        dnax.compress(&seq).expect("dnax concat").total_bytes()
    };
    // (c) Vertical: first sample as reference, the rest as RM entries.
    let rc = ReferenceCompressor::default();
    let index = ReferenceIndex::build(&samples[0], rc.block);
    let vertical: usize = dnax.compress(&samples[0]).expect("ref self").total_bytes()
        + samples[1..]
            .iter()
            .map(|s| {
                let blob = rc.compress(&index, s).expect("refcomp");
                assert_eq!(rc.decompress(&index, &blob).expect("ref decode"), *s);
                blob.total_bytes()
            })
            .sum::<usize>();
    let raw: usize = samples.iter().map(PackedSeq::len).sum();
    let txt = format!(
        "## ext4 — multi-sequence set (5 samples × 150 kB, 99.9% identity)\n\
         raw bytes:                      {raw}\n\
         (a) horizontal, independent:    {independent}\n\
         (b) horizontal, concatenated:   {concatenated}\n\
         (c) vertical (ref + RM blobs):  {vertical}\n"
    );
    write_result("ext4.txt", &txt).expect("write txt");
    write_result(
        "ext4.csv",
        &to_csv(
            &["strategy", "bytes"],
            &[
                vec!["raw".into(), raw.to_string()],
                vec!["horizontal_independent".into(), independent.to_string()],
                vec!["horizontal_concatenated".into(), concatenated.to_string()],
                vec!["vertical_reference".into(), vertical.to_string()],
            ],
        ),
    )
    .expect("write csv");
    format!(
        "ext4: multi-sequence — independent {independent} vs concatenated {concatenated} vs vertical {vertical} bytes"
    )
}

/// ext5 — varying the *cloud-side* context (paper §VI future work: "the
/// context at cloud could be changed to analyze the impact at
/// decompression and download time as in current research only client
/// context was changed").
pub fn ext5(p: &Pipeline) -> String {
    use dnacomp_cloud::MachineSpec;
    let vms = [
        MachineSpec::new("cloud-small-1.6GHz-1.75GB", 1792, 1600, 1),
        MachineSpec::azure_vm(),
        MachineSpec::new("cloud-large-2.8GHz-7GB", 7168, 2800, 2),
    ];
    let mut csv_rows = Vec::new();
    let mut txt = String::from("## ext5 — decompression/download time vs cloud VM size\n");
    txt.push_str(&format!(
        "{:<28} {:>14} {:>14} {:>14} {:>14}\n",
        "cloud VM", "CTW dec ms", "DNAX dec ms", "GC dec ms", "Gzip dec ms"
    ));
    for vm in &vms {
        let mut row = vec![vm.name.clone()];
        let mut cells = Vec::new();
        for alg in dnacomp_algos::Algorithm::PAPER {
            let mean: f64 = {
                let v: Vec<f64> = p
                    .measurements
                    .iter()
                    .filter(|m| m.algorithm == alg)
                    .map(|m| p.perf.decompress_ms(vm, alg, &m.file, &m.dec_stats))
                    .collect();
                v.iter().sum::<f64>() / v.len() as f64
            };
            cells.push(mean);
            row.push(format!("{mean:.1}"));
        }
        // Report in the paper's algorithm order CTW, DNAX, GC, Gzip.
        txt.push_str(&format!(
            "{:<28} {:>14.1} {:>14.1} {:>14.1} {:>14.1}\n",
            vm.name, cells[0], cells[1], cells[2], cells[3]
        ));
        csv_rows.push(row);
    }
    write_result(
        "ext5.csv",
        &to_csv(&["cloud_vm", "ctw_ms", "dnax_ms", "gencompress_ms", "gzip_ms"], &csv_rows),
    )
    .expect("write csv");
    write_result("ext5.txt", &txt).expect("write txt");
    "ext5: cloud-side context sweep written".to_owned()
}

/// ext6 — cross-corpus generalisation: rules trained on one corpus seed
/// validated on a *disjoint* corpus (different files, same context grid).
/// The paper's 75/25 split shares the generation process; this asks the
/// stronger question a deployment would — do the learned rules carry to
/// genuinely new sequences?
pub fn ext6(_p: &Pipeline) -> String {
    use dnacomp_algos::paper_algorithms;
    use dnacomp_cloud::{context_grid, MachineSpec};
    use dnacomp_core::{build_rows, label_rows, measure_corpus, ContextAwareFramework, WeightVector};
    use dnacomp_ml::TreeMethod;
    use dnacomp_seq::corpus::CorpusBuilder;

    let perf = PerfModel::default();
    let vm = MachineSpec::azure_vm();
    let grid = context_grid();
    let mut label_sets = Vec::new();
    for seed in [42u64, 4242] {
        let files = CorpusBuilder::paper(seed)
            .ncbi_files(29)
            .include_standard(seed == 42)
            .size_range(1_000, 400_000)
            .build();
        let ms = measure_corpus(&files, &paper_algorithms()).expect("grid");
        let rows = build_rows(&ms, &grid, &perf, &vm);
        label_sets.push(label_rows(&rows, &WeightVector::time_only()));
    }
    let (train, test) = (&label_sets[0], &label_sets[1]);
    let mut txt = String::from("## ext6 — cross-corpus generalisation (time rules)\n");
    let mut csv_rows = Vec::new();
    let mut summary = Vec::new();
    for method in [TreeMethod::Cart, TreeMethod::Chaid] {
        let fw = ContextAwareFramework::train(train, method);
        let in_corpus = fw.evaluate(train);
        let cross = fw.evaluate(test);
        txt.push_str(&format!(
            "{method}: in-corpus {in_corpus:.4}, cross-corpus {cross:.4}\n"
        ));
        csv_rows.push(vec![
            method.to_string(),
            format!("{in_corpus:.4}"),
            format!("{cross:.4}"),
        ]);
        summary.push(format!("{method} {cross:.3}"));
    }
    write_result(
        "ext6.csv",
        &to_csv(&["method", "in_corpus_accuracy", "cross_corpus_accuracy"], &csv_rows),
    )
    .expect("write csv");
    write_result("ext6.txt", &txt).expect("write txt");
    format!("ext6: cross-corpus accuracy — {}", summary.join(", "))
}
