//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p dnacomp-bench --release --bin repro            # everything
//! cargo run -p dnacomp-bench --release --bin repro -- fig9    # one artefact
//! DNACOMP_SCALE=quick cargo run -p dnacomp-bench --bin repro  # reduced grid
//! ```
//!
//! Results land in `results/` (CSV + ASCII chart per artefact) plus a
//! `summary.txt` with the one-line outcome of every experiment.

use dnacomp_bench::pipeline::{Pipeline, Scale};
use dnacomp_bench::{ext, figures, tables, write_result};

type Generator = (&'static str, fn(&Pipeline) -> String);

const GENERATORS: [Generator; 23] = [
    ("fig2", figures::fig2),
    ("fig3", figures::fig3),
    ("fig4", figures::fig4),
    ("fig5", figures::fig5),
    ("fig6", figures::fig6),
    ("fig8", figures::fig8),
    ("fig9", figures::fig9),
    ("fig10", figures::fig10),
    ("fig11", figures::fig11),
    ("fig12", figures::fig12),
    ("fig13", figures::fig13),
    ("fig14", figures::fig14),
    ("fig15", figures::fig15),
    ("fig16", figures::fig16),
    ("tab1", tables::tab1),
    ("tab2", tables::tab2),
    ("tab2x", tables::tab2x),
    ("ext1", ext::ext1),
    ("ext2", ext::ext2),
    ("ext3", ext::ext3),
    ("ext4", ext::ext4),
    ("ext5", ext::ext5),
    ("ext6", ext::ext6),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    eprintln!("[repro] scale = {scale:?}");
    let pipeline = Pipeline::load_or_run(42, scale);
    eprintln!(
        "[repro] {} files, {} measurements, {} rows",
        pipeline.files.len(),
        pipeline.measurements.len(),
        pipeline.rows.len()
    );
    let wanted: Vec<&Generator> = if args.is_empty() {
        GENERATORS.iter().collect()
    } else {
        GENERATORS
            .iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect()
    };
    if wanted.is_empty() {
        eprintln!(
            "unknown experiment id(s) {args:?}; known: {:?}",
            GENERATORS.map(|(id, _)| id)
        );
        std::process::exit(2);
    }
    let mut summary = String::new();
    for (id, gen) in wanted {
        let line = gen(&pipeline);
        println!("{line}");
        summary.push_str(&line);
        summary.push('\n');
        let _ = id;
    }
    if args.is_empty() {
        write_result("summary.txt", &summary).expect("write summary");
    }
}
