//! # dnacomp-bench — evaluation harness
//!
//! Library side of the `repro` binary: the shared experiment pipeline
//! (corpus → measurements → context grid → labels → trees), plain-text
//! chart rendering, and CSV output. Each figure/table of the paper has a
//! generator in [`figures`] / [`tables`]; the binary dispatches on the
//! experiment id (see DESIGN.md §3 for the index).

#![forbid(unsafe_code)]

pub mod charts;
pub mod ext;
pub mod figures;
pub mod pipeline;
pub mod tables;

use std::io::Write;
use std::path::{Path, PathBuf};

/// Where results land (`results/` at the workspace root by default,
/// override with `DNACOMP_RESULTS`).
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("DNACOMP_RESULTS") {
        return PathBuf::from(dir);
    }
    PathBuf::from("results")
}

/// Write `content` under the results dir, creating it if needed.
pub fn write_result(name: &str, content: &str) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path)?;
    f.write_all(content.as_bytes())?;
    Ok(path)
}

/// Render rows of (name, values...) as CSV.
pub fn to_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Load a cached JSON value if present.
pub fn load_cache<T: serde::de::DeserializeOwned>(path: &Path) -> Option<T> {
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

/// Store a JSON cache.
pub fn store_cache<T: serde::Serialize>(path: &Path, value: &T) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, serde_json::to_string(value)?)
}
