//! Generators for every figure of the paper's evaluation.
//!
//! Each `figN` function writes `results/figN.csv` (exact numbers) and
//! `results/figN.txt` (ASCII chart) and returns a one-line summary for
//! the console / EXPERIMENTS.md.

use crate::charts;
use crate::pipeline::Pipeline;
use crate::{to_csv, write_result};
use dnacomp_algos::Algorithm;
use dnacomp_core::{ExperimentRow, LabeledRow, WeightVector};
use dnacomp_ml::TreeMethod;

const ALGOS: [Algorithm; 4] = Algorithm::PAPER;

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Mean of `metric` per (context, algorithm).
fn per_context_metric(
    p: &Pipeline,
    metric: impl Fn(&ExperimentRow) -> f64,
) -> Vec<(String, Vec<f64>)> {
    p.contexts
        .iter()
        .map(|ctx| {
            let values: Vec<f64> = ALGOS
                .iter()
                .map(|&alg| {
                    mean(
                        p.rows
                            .iter()
                            .filter(|r| {
                                r.algorithm == alg
                                    && r.ram_mb == ctx.ram_mb
                                    && r.cpu_mhz == ctx.cpu_mhz
                                    && r.bandwidth_mbps == ctx.bandwidth.0
                            })
                            .map(&metric),
                    )
                })
                .collect();
            (ctx.key(), values)
        })
        .collect()
}

fn context_figure(
    p: &Pipeline,
    id: &str,
    title: &str,
    unit: &str,
    metric: impl Fn(&ExperimentRow) -> f64,
) -> String {
    let rows = per_context_metric(p, metric);
    let names: Vec<String> = ALGOS.iter().map(|a| a.name().to_owned()).collect();
    let chart = charts::series_table(title, "context", &names, &rows);
    let csv_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(k, v)| {
            let mut row = vec![k.clone()];
            row.extend(v.iter().map(|x| format!("{x:.3}")));
            row
        })
        .collect();
    let mut header = vec!["context"];
    header.extend(ALGOS.iter().map(|a| a.name()));
    write_result(&format!("{id}.csv"), &to_csv(&header, &csv_rows)).expect("write csv");
    write_result(&format!("{id}.txt"), &chart).expect("write chart");
    // Summary: overall mean per algorithm.
    let overall: Vec<String> = ALGOS
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let m = mean(rows.iter().map(|(_, v)| v[i]));
            format!("{}={m:.1}{unit}", a.name())
        })
        .collect();
    format!("{id}: {title} — mean {}", overall.join(" "))
}

/// Figure 2 — upload time in different contexts.
pub fn fig2(p: &Pipeline) -> String {
    context_figure(
        p,
        "fig2",
        "Uploading time by context (ms)",
        "ms",
        |r| r.upload_ms,
    )
}

/// Figure 3 — RAM used (MB) per algorithm per context.
pub fn fig3(p: &Pipeline) -> String {
    context_figure(
        p,
        "fig3",
        "RAM used by context (MB)",
        "MB",
        |r| r.ram_used_bytes as f64 / (1024.0 * 1024.0),
    )
}

/// Figure 4 — compressed file size per algorithm over the corpus.
pub fn fig4(p: &Pipeline) -> String {
    // One row per file (sorted by size): original + per-algo bytes.
    let mut files: Vec<(String, u64)> = p
        .measurements
        .iter()
        .map(|m| (m.file.clone(), m.original_len as u64))
        .collect();
    files.sort();
    files.dedup();
    files.sort_by_key(|&(_, len)| len);
    let mut csv_rows = Vec::new();
    for (file, len) in &files {
        let mut row = vec![file.clone(), len.to_string()];
        for &alg in &ALGOS {
            let bytes = p
                .measurements
                .iter()
                .find(|m| &m.file == file && m.algorithm == alg)
                .map(|m| m.blob_bytes)
                .unwrap_or(0);
            row.push(bytes.to_string());
        }
        csv_rows.push(row);
    }
    let mut header = vec!["file", "original_bytes"];
    header.extend(ALGOS.iter().map(|a| a.name()));
    write_result("fig4.csv", &to_csv(&header, &csv_rows)).expect("write csv");
    // Chart: mean bits/base per algorithm.
    let bars: Vec<(String, f64)> = ALGOS
        .iter()
        .map(|&alg| {
            let bpb = mean(
                p.measurements
                    .iter()
                    .filter(|m| m.algorithm == alg && m.original_len > 0)
                    .map(|m| m.blob_bytes as f64 * 8.0 / m.original_len as f64),
            );
            (alg.name().to_owned(), bpb)
        })
        .collect();
    let chart = charts::bar_chart("Compressed size (mean bits/base)", &bars, "bits/base");
    write_result("fig4.txt", &chart).expect("write chart");
    let s: Vec<String> = bars
        .iter()
        .map(|(n, v)| format!("{n}={v:.3}"))
        .collect();
    format!("fig4: compressed size — mean bits/base {}", s.join(" "))
}

/// Figure 5 — compression time by context.
pub fn fig5(p: &Pipeline) -> String {
    context_figure(
        p,
        "fig5",
        "Compression time by context (ms)",
        "ms",
        |r| r.compress_ms,
    )
}

/// Figure 6 — download time per algorithm.
pub fn fig6(p: &Pipeline) -> String {
    let bars: Vec<(String, f64)> = ALGOS
        .iter()
        .map(|&alg| {
            let v = mean(
                p.rows
                    .iter()
                    .filter(|r| r.algorithm == alg)
                    .map(|r| r.download_ms),
            );
            (alg.name().to_owned(), v)
        })
        .collect();
    let chart = charts::bar_chart("Download time (mean ms)", &bars, "ms");
    write_result("fig6.txt", &chart).expect("write chart");
    let csv_rows: Vec<Vec<String>> = bars
        .iter()
        .map(|(n, v)| vec![n.clone(), format!("{v:.3}")])
        .collect();
    write_result("fig6.csv", &to_csv(&["algorithm", "download_ms"], &csv_rows))
        .expect("write csv");
    let lo = bars.iter().map(|b| b.1).fold(f64::INFINITY, f64::min);
    let hi = bars.iter().map(|b| b.1).fold(0.0f64, f64::max);
    format!(
        "fig6: download time — per-algorithm means span {:.1}..{:.1} ms (gap {:.1} ms)",
        lo,
        hi,
        hi - lo
    )
}

/// Figure 8 — test-set file size vs row id.
pub fn fig8(p: &Pipeline) -> String {
    let labeled = p.labeled(&WeightVector::time_only());
    let (_, test) = p.split_by_file(&labeled);
    let ordered = Pipeline::order_rows(test);
    let csv_rows: Vec<Vec<String>> = ordered
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                i.to_string(),
                r.file.clone(),
                format!("{:.1}", r.file_bytes as f64 / 1024.0),
            ]
        })
        .collect();
    write_result("fig8.csv", &to_csv(&["row_id", "file", "file_kb"], &csv_rows))
        .expect("write csv");
    format!(
        "fig8: test layout — {} rows over {} files, sizes {:.1}..{:.1} kB",
        ordered.len(),
        ordered
            .iter()
            .map(|r| r.file.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len(),
        ordered.first().map(|r| r.file_bytes as f64 / 1024.0).unwrap_or(0.0),
        ordered.last().map(|r| r.file_bytes as f64 / 1024.0).unwrap_or(0.0),
    )
}

/// Outcome of one validation experiment (figures 9/11/13/15).
pub struct Validation {
    /// `Cases Matched / TotalCases`.
    pub accuracy: f64,
    /// Per-test-row match flags, size-ordered.
    pub matches: Vec<bool>,
    /// The size-ordered test rows.
    pub rows: Vec<LabeledRow>,
    /// Learned rules.
    pub rules: Vec<String>,
}

/// Train on 75 % of files, validate on the held-out 25 %.
pub fn validate(p: &Pipeline, method: TreeMethod, weights: &WeightVector) -> Validation {
    validate_with(p, method, weights, false)
}

/// [`validate`] with a choice of Eq.-1 unit combination (`normalized =
/// true` uses the improved max-normalised variant).
pub fn validate_with(
    p: &Pipeline,
    method: TreeMethod,
    weights: &WeightVector,
    normalized: bool,
) -> Validation {
    let labeled = if normalized {
        p.labeled_normalized(weights)
    } else {
        p.labeled(weights)
    };
    let (train, test) = p.split_by_file(&labeled);
    let fw = dnacomp_core::ContextAwareFramework::train(&train, method);
    let ordered = Pipeline::order_rows(test);
    let matches: Vec<bool> = ordered
        .iter()
        .map(|r| {
            fw.decide(&dnacomp_core::Context {
                ram_mb: r.ram_mb,
                cpu_mhz: r.cpu_mhz,
                bandwidth_mbps: r.bandwidth_mbps,
                file_bytes: r.file_bytes,
            }) == r.winner
        })
        .collect();
    let accuracy = if matches.is_empty() {
        0.0
    } else {
        matches.iter().filter(|&&m| m).count() as f64 / matches.len() as f64
    };
    Validation {
        accuracy,
        matches,
        rows: ordered,
        rules: fw.rules(),
    }
}

fn validation_figure(
    p: &Pipeline,
    id: &str,
    title: &str,
    method: TreeMethod,
    weights: &WeightVector,
) -> String {
    let v = validate(p, method, weights);
    let mut out = charts::gap_strip(title, &v.matches, 64);
    out.push_str("\n### Rules\n");
    for r in &v.rules {
        out.push_str(r);
        out.push('\n');
    }
    write_result(&format!("{id}.txt"), &out).expect("write chart");
    let csv_rows: Vec<Vec<String>> = v
        .rows
        .iter()
        .zip(&v.matches)
        .enumerate()
        .map(|(i, (r, &m))| {
            vec![
                i.to_string(),
                format!("{:.1}", r.file_bytes as f64 / 1024.0),
                r.ram_mb.to_string(),
                r.cpu_mhz.to_string(),
                format!("{}", r.bandwidth_mbps),
                r.winner.name().to_owned(),
                if m { "1" } else { "0" }.to_owned(),
            ]
        })
        .collect();
    write_result(
        &format!("{id}.csv"),
        &to_csv(
            &["row_id", "file_kb", "ram_mb", "cpu_mhz", "bw_mbps", "label", "matched"],
            &csv_rows,
        ),
    )
    .expect("write csv");
    format!("{id}: {title} — accuracy {:.4} over {} rows", v.accuracy, v.rows.len())
}

fn analysis_figure(
    p: &Pipeline,
    id: &str,
    title: &str,
    method: TreeMethod,
    weights: &WeightVector,
    take: usize,
) -> String {
    let v = validate(p, method, weights);
    // Normalised CPU / RAM / file size for the first `take` rows (the
    // paper plots the first ~86 records / the <50 kB region).
    let rows: Vec<&LabeledRow> = v.rows.iter().take(take).collect();
    let matches: Vec<bool> = v.matches.iter().take(take).copied().collect();
    let max_kb = rows
        .iter()
        .map(|r| r.file_bytes as f64 / 1024.0)
        .fold(f64::EPSILON, f64::max);
    let series: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cpu_mhz as f64 / 2800.0,
                r.ram_mb as f64 / 4096.0,
                (r.file_bytes as f64 / 1024.0) / max_kb,
            ]
        })
        .collect();
    let chart = charts::context_analysis(
        title,
        &["cpu_norm".into(), "ram_norm".into(), "size_norm".into()],
        &series,
        &matches,
    );
    write_result(&format!("{id}.txt"), &chart).expect("write chart");
    let matched = matches.iter().filter(|&&m| m).count();
    format!(
        "{id}: {title} — {matched}/{} of the first rows matched",
        matches.len()
    )
}

/// Figure 9 — CHAID validation, time 100 %.
pub fn fig9(p: &Pipeline) -> String {
    validation_figure(
        p,
        "fig9",
        "CHAID results for time (100% weight), validation",
        TreeMethod::Chaid,
        &WeightVector::time_only(),
    )
}

/// Figure 10 — CHAID context analysis (small files).
pub fn fig10(p: &Pipeline) -> String {
    analysis_figure(
        p,
        "fig10",
        "CHAID analysis based on context",
        TreeMethod::Chaid,
        &WeightVector::time_only(),
        86,
    )
}

/// Figure 11 — CART validation, time 100 %.
pub fn fig11(p: &Pipeline) -> String {
    validation_figure(
        p,
        "fig11",
        "CART results for total time (100% weight), validation",
        TreeMethod::Cart,
        &WeightVector::time_only(),
    )
}

/// Figure 12 — CART context analysis (first 86 records).
pub fn fig12(p: &Pipeline) -> String {
    analysis_figure(
        p,
        "fig12",
        "CART analysis based on context",
        TreeMethod::Cart,
        &WeightVector::time_only(),
        86,
    )
}

/// Figure 13 — CHAID validation, RAM 100 %.
pub fn fig13(p: &Pipeline) -> String {
    validation_figure(
        p,
        "fig13",
        "CHAID results for RAM (100% weight), validation",
        TreeMethod::Chaid,
        &WeightVector::ram_only(),
    )
}

/// Figure 14 — CHAID RAM context analysis (first 87 records).
pub fn fig14(p: &Pipeline) -> String {
    analysis_figure(
        p,
        "fig14",
        "CHAID analysis for RAM based on context",
        TreeMethod::Chaid,
        &WeightVector::ram_only(),
        87,
    )
}

/// Figure 15 — CART validation, RAM 100 %.
pub fn fig15(p: &Pipeline) -> String {
    validation_figure(
        p,
        "fig15",
        "CART results for RAM (100% weight), validation",
        TreeMethod::Cart,
        &WeightVector::ram_only(),
    )
}

/// Figure 16 — CART RAM context analysis (first 88 records).
pub fn fig16(p: &Pipeline) -> String {
    analysis_figure(
        p,
        "fig16",
        "CART analysis for RAM based on context",
        TreeMethod::Cart,
        &WeightVector::ram_only(),
        88,
    )
}
