//! Shared decision-tree representation, prediction, and rule extraction.

use crate::dataset::{Dataset, Row, Value};
use serde::{Deserialize, Serialize};

/// Which induction method built a tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeMethod {
    /// Classification and Regression Trees (binary, Gini).
    Cart,
    /// Chi-squared Automatic Interaction Detector (multiway, χ²).
    Chaid,
}

impl std::fmt::Display for TreeMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TreeMethod::Cart => "CART",
            TreeMethod::Chaid => "CHAID",
        })
    }
}

/// Split predicate at an internal node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Continuous: child 0 if `value ≤ threshold`, else child 1.
    Threshold {
        /// Split threshold.
        threshold: f64,
    },
    /// Multiway over value intervals: child `i` serves values in
    /// `(edges[i-1], edges[i]]`; values ≤ `edges[0]` go to child 0 and
    /// values > last edge go to the final child. Produced by CHAID for
    /// continuous predictors after category merging.
    Intervals {
        /// Ascending inner edges; `len = children - 1`.
        edges: Vec<f64>,
    },
    /// Categorical: child `i` serves category ids in `groups[i]`.
    Groups {
        /// Category groupings (disjoint).
        groups: Vec<Vec<u32>>,
    },
}

/// A tree node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `class`; `counts` are training class
    /// counts at the leaf.
    Leaf {
        /// Predicted class id.
        class: u32,
        /// Training class distribution at this leaf.
        counts: Vec<u32>,
    },
    /// Internal node splitting on `feature`.
    Split {
        /// Feature index.
        feature: usize,
        /// Split predicate.
        rule: SplitRule,
        /// Children, in predicate order.
        children: Vec<Node>,
        /// Majority class at this node (fallback for unmatched values).
        majority: u32,
    },
}

/// A trained decision tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Induction method.
    pub method: TreeMethod,
    /// Feature names (for rule rendering).
    pub feature_names: Vec<String>,
    /// Class names.
    pub classes: Vec<String>,
    /// Root node.
    pub root: Node,
}

impl DecisionTree {
    /// Predict the class id for a row of values.
    pub fn predict(&self, values: &[Value]) -> u32 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return *class,
                Node::Split {
                    feature,
                    rule,
                    children,
                    majority,
                } => {
                    let Some(v) = values.get(*feature) else {
                        return *majority;
                    };
                    let child = match rule {
                        SplitRule::Threshold { threshold } => {
                            usize::from(v.as_f64() > *threshold)
                        }
                        SplitRule::Intervals { edges } => {
                            let x = v.as_f64();
                            edges.iter().take_while(|&&e| x > e).count()
                        }
                        SplitRule::Groups { groups } => {
                            let cat = match v {
                                Value::Cat(c) => *c,
                                Value::Num(x) => *x as u32,
                            };
                            match groups.iter().position(|g| g.contains(&cat)) {
                                Some(i) => i,
                                None => return *majority,
                            }
                        }
                    };
                    match children.get(child) {
                        Some(c) => node = c,
                        None => return *majority,
                    }
                }
            }
        }
    }

    /// Predict a whole dataset, returning class ids.
    pub fn predict_all(&self, data: &Dataset) -> Vec<u32> {
        data.rows.iter().map(|r| self.predict(&r.values)).collect()
    }

    /// Predict one dataset row.
    pub fn predict_row(&self, row: &Row) -> u32 {
        self.predict(&row.values)
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => children.iter().map(walk).sum(),
            }
        }
        walk(&self.root)
    }

    /// Maximum depth (leaf-only tree = 1).
    pub fn depth(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { children, .. } => {
                    1 + children.iter().map(walk).max().unwrap_or(0)
                }
            }
        }
        walk(&self.root)
    }

    /// Render the tree as human-readable IF/THEN rules — the "rules"
    /// Figure 7's inference engine consumes.
    pub fn rules(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut path: Vec<String> = Vec::new();
        self.walk_rules(&self.root, &mut path, &mut out);
        out
    }

    fn walk_rules(&self, node: &Node, path: &mut Vec<String>, out: &mut Vec<String>) {
        match node {
            Node::Leaf { class, counts } => {
                let cond = if path.is_empty() {
                    "TRUE".to_owned()
                } else {
                    path.join(" AND ")
                };
                let support: u32 = counts.iter().sum();
                out.push(format!(
                    "IF {cond} THEN {} (support {support})",
                    self.classes
                        .get(*class as usize)
                        .map(String::as_str)
                        .unwrap_or("?")
                ));
            }
            Node::Split {
                feature,
                rule,
                children,
                ..
            } => {
                let name = self
                    .feature_names
                    .get(*feature)
                    .map(String::as_str)
                    .unwrap_or("?");
                for (i, child) in children.iter().enumerate() {
                    let cond = match rule {
                        SplitRule::Threshold { threshold } => {
                            if i == 0 {
                                format!("{name} <= {threshold:.4}")
                            } else {
                                format!("{name} > {threshold:.4}")
                            }
                        }
                        SplitRule::Intervals { edges } => {
                            if i == 0 {
                                format!("{name} <= {:.4}", edges[0])
                            } else if i == edges.len() {
                                format!("{name} > {:.4}", edges[i - 1])
                            } else {
                                format!(
                                    "{:.4} < {name} <= {:.4}",
                                    edges[i - 1],
                                    edges[i]
                                )
                            }
                        }
                        SplitRule::Groups { groups } => {
                            format!("{name} in {:?}", groups[i])
                        }
                    };
                    path.push(cond);
                    self.walk_rules(child, path, out);
                    path.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> DecisionTree {
        DecisionTree {
            method: TreeMethod::Cart,
            feature_names: vec!["size".into(), "algo".into()],
            classes: vec!["A".into(), "B".into(), "C".into()],
            root: Node::Split {
                feature: 0,
                rule: SplitRule::Threshold { threshold: 50.0 },
                majority: 0,
                children: vec![
                    Node::Leaf {
                        class: 1,
                        counts: vec![1, 5, 0],
                    },
                    Node::Split {
                        feature: 1,
                        rule: SplitRule::Groups {
                            groups: vec![vec![0, 2], vec![1]],
                        },
                        majority: 2,
                        children: vec![
                            Node::Leaf {
                                class: 0,
                                counts: vec![4, 0, 0],
                            },
                            Node::Leaf {
                                class: 2,
                                counts: vec![0, 0, 9],
                            },
                        ],
                    },
                ],
            },
        }
    }

    #[test]
    fn predict_walks_threshold_and_groups() {
        let t = sample_tree();
        assert_eq!(t.predict(&[Value::Num(10.0), Value::Cat(1)]), 1);
        assert_eq!(t.predict(&[Value::Num(60.0), Value::Cat(0)]), 0);
        assert_eq!(t.predict(&[Value::Num(60.0), Value::Cat(2)]), 0);
        assert_eq!(t.predict(&[Value::Num(60.0), Value::Cat(1)]), 2);
    }

    #[test]
    fn unseen_category_falls_back_to_majority() {
        let t = sample_tree();
        assert_eq!(t.predict(&[Value::Num(60.0), Value::Cat(9)]), 2);
    }

    #[test]
    fn missing_value_falls_back() {
        let t = sample_tree();
        assert_eq!(t.predict(&[Value::Num(60.0)]), 2);
        assert_eq!(t.predict(&[]), 0);
    }

    #[test]
    fn intervals_routing() {
        let t = DecisionTree {
            method: TreeMethod::Chaid,
            feature_names: vec!["x".into()],
            classes: vec!["a".into(), "b".into(), "c".into()],
            root: Node::Split {
                feature: 0,
                rule: SplitRule::Intervals {
                    edges: vec![10.0, 20.0],
                },
                majority: 0,
                children: vec![
                    Node::Leaf { class: 0, counts: vec![1, 0, 0] },
                    Node::Leaf { class: 1, counts: vec![0, 1, 0] },
                    Node::Leaf { class: 2, counts: vec![0, 0, 1] },
                ],
            },
        };
        assert_eq!(t.predict(&[Value::Num(5.0)]), 0);
        assert_eq!(t.predict(&[Value::Num(10.0)]), 0);
        assert_eq!(t.predict(&[Value::Num(15.0)]), 1);
        assert_eq!(t.predict(&[Value::Num(25.0)]), 2);
    }

    #[test]
    fn structure_metrics() {
        let t = sample_tree();
        assert_eq!(t.n_leaves(), 3);
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn rules_render() {
        let t = sample_tree();
        let rules = t.rules();
        assert_eq!(rules.len(), 3);
        assert!(rules[0].contains("size <= 50.0000"));
        assert!(rules[0].contains("THEN B"));
        assert!(rules[1].contains("algo in [0, 2]"));
        assert!(rules.iter().all(|r| r.starts_with("IF ")));
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::cart::{train_cart, CartParams};
    use crate::dataset::{Dataset, Feature, FeatureKind, Value};

    #[test]
    fn trees_serialize_and_predict_identically() {
        let mut d = Dataset::new(
            vec![
                Feature { name: "x".into(), kind: FeatureKind::Continuous },
                Feature { name: "c".into(), kind: FeatureKind::Categorical },
            ],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for i in 0..120 {
            let label = (i % 3) as u32;
            d.push(
                vec![Value::Num((i * 7 % 50) as f64), Value::Cat(label)],
                label,
            );
        }
        let tree = train_cart(&d, &CartParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
        for row in &d.rows {
            assert_eq!(tree.predict(&row.values), back.predict(&row.values));
        }
    }
}
