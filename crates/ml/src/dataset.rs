//! Tabular datasets for tree induction.

use serde::{Deserialize, Serialize};

/// Feature type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Ordered numeric (file size, RAM, CPU MHz, bandwidth).
    Continuous,
    /// Unordered categories identified by small integers.
    Categorical,
}

/// Feature descriptor.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Column name, e.g. `"file_kb"`.
    pub name: String,
    /// Continuous or categorical.
    pub kind: FeatureKind,
}

/// One cell value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Numeric value of a continuous feature.
    Num(f64),
    /// Category id of a categorical feature.
    Cat(u32),
}

impl Value {
    /// Numeric view; categorical ids coerce to their id value.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Value::Num(x) => x,
            Value::Cat(c) => c as f64,
        }
    }
}

/// One observation: feature values plus a class label.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Values aligned with [`Dataset::features`].
    pub values: Vec<Value>,
    /// Class label id (index into [`Dataset::classes`]).
    pub label: u32,
}

/// A labelled dataset.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Feature descriptors.
    pub features: Vec<Feature>,
    /// Class names, indexed by label id.
    pub classes: Vec<String>,
    /// Observations.
    pub rows: Vec<Row>,
}

impl Dataset {
    /// New empty dataset with the given schema.
    pub fn new(features: Vec<Feature>, classes: Vec<String>) -> Self {
        Dataset {
            features,
            classes,
            rows: Vec::new(),
        }
    }

    /// Add an observation. Panics if the arity mismatches the schema or
    /// the label is out of range.
    pub fn push(&mut self, values: Vec<Value>, label: u32) {
        assert_eq!(values.len(), self.features.len(), "arity mismatch");
        assert!((label as usize) < self.classes.len(), "label out of range");
        self.rows.push(Row { values, label });
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }

    /// Class counts over the given row indices.
    pub fn class_counts(&self, idx: &[u32]) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_classes()];
        for &i in idx {
            counts[self.rows[i as usize].label as usize] += 1;
        }
        counts
    }

    /// Majority class over the given row indices (ties → smallest id).
    pub fn majority(&self, idx: &[u32]) -> u32 {
        let counts = self.class_counts(idx);
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, usize::MAX - i))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }

    /// Deterministic train/test split: every `1/test_every`-th row (by
    /// index, offset `phase`) goes to test. The paper holds out 25 % —
    /// `test_every = 4`.
    pub fn split(&self, test_every: usize, phase: usize) -> (Dataset, Dataset) {
        assert!(test_every >= 2);
        let mut train = Dataset::new(self.features.clone(), self.classes.clone());
        let mut test = Dataset::new(self.features.clone(), self.classes.clone());
        for (i, row) in self.rows.iter().enumerate() {
            if i % test_every == phase % test_every {
                test.rows.push(row.clone());
            } else {
                train.rows.push(row.clone());
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Dataset {
        Dataset::new(
            vec![
                Feature {
                    name: "x".into(),
                    kind: FeatureKind::Continuous,
                },
                Feature {
                    name: "c".into(),
                    kind: FeatureKind::Categorical,
                },
            ],
            vec!["a".into(), "b".into()],
        )
    }

    #[test]
    fn push_and_counts() {
        let mut d = schema();
        d.push(vec![Value::Num(1.0), Value::Cat(0)], 0);
        d.push(vec![Value::Num(2.0), Value::Cat(1)], 1);
        d.push(vec![Value::Num(3.0), Value::Cat(1)], 1);
        let idx: Vec<u32> = (0..3).collect();
        assert_eq!(d.class_counts(&idx), vec![1, 2]);
        assert_eq!(d.majority(&idx), 1);
        assert_eq!(d.majority(&[0]), 0);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut d = schema();
        d.push(vec![Value::Num(1.0)], 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_checked() {
        let mut d = schema();
        d.push(vec![Value::Num(1.0), Value::Cat(0)], 5);
    }

    #[test]
    fn split_75_25() {
        let mut d = schema();
        for i in 0..100 {
            d.push(vec![Value::Num(i as f64), Value::Cat(0)], (i % 2) as u32);
        }
        let (train, test) = d.split(4, 0);
        assert_eq!(train.rows.len(), 75);
        assert_eq!(test.rows.len(), 25);
        // Different phases give different test sets.
        let (_, test1) = d.split(4, 1);
        assert_ne!(test.rows[0], test1.rows[0]);
    }

    #[test]
    fn majority_tie_breaks_low() {
        let mut d = schema();
        d.push(vec![Value::Num(1.0), Value::Cat(0)], 1);
        d.push(vec![Value::Num(2.0), Value::Cat(0)], 0);
        assert_eq!(d.majority(&[0, 1]), 0);
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::Num(2.5).as_f64(), 2.5);
        assert_eq!(Value::Cat(3).as_f64(), 3.0);
    }
}
