//! Evaluation metrics.
//!
//! The paper reports `Accuracy = Cases Matched / TotalCases` for every
//! rule set (§V-A…E, Table 2); the confusion matrix backs the per-class
//! "gap" analysis of Figures 9–16.

/// Fraction of predictions equal to the labels. Empty input → 0.0.
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let matched = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    matched as f64 / predictions.len() as f64
}

/// `matrix[actual][predicted]` counts over `n_classes`.
pub fn confusion_matrix(predictions: &[u32], labels: &[u32], n_classes: usize) -> Vec<Vec<u32>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0u32; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        if (p as usize) < n_classes && (l as usize) < n_classes {
            m[l as usize][p as usize] += 1;
        }
    }
    m
}

/// Per-class recall from a confusion matrix (`None` if the class has no
/// actual instances).
pub fn recalls(matrix: &[Vec<u32>]) -> Vec<Option<f64>> {
    matrix
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: u32 = row.iter().sum();
            if total == 0 {
                None
            } else {
                Some(row[i] as f64 / total as f64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(accuracy(&[1, 2, 3], &[1, 0, 0]), 1.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_checked() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn confusion_and_recalls() {
        let preds = [0, 0, 1, 1, 1, 2];
        let labels = [0, 1, 1, 1, 2, 2];
        let m = confusion_matrix(&preds, &labels, 3);
        assert_eq!(m[0], vec![1, 0, 0]);
        assert_eq!(m[1], vec![1, 2, 0]);
        assert_eq!(m[2], vec![0, 1, 1]);
        let r = recalls(&m);
        assert_eq!(r[0], Some(1.0));
        assert_eq!(r[1], Some(2.0 / 3.0));
        assert_eq!(r[2], Some(0.5));
    }

    #[test]
    fn empty_class_has_no_recall() {
        let m = confusion_matrix(&[0, 0], &[0, 0], 2);
        let r = recalls(&m);
        assert_eq!(r[1], None);
    }
}
