//! # dnacomp-ml — decision-tree rule induction
//!
//! The paper generates its context-aware selection rules "through
//! Decision tree induction using methods CHAID (Chi-squared Automatic
//! Interaction Detector) and CART (Classification and Regression Trees)"
//! (§IV-D). SPSS-style tooling is not available here, so both learners
//! are implemented from scratch:
//!
//! * [`cart`] — CART: binary splits maximising Gini impurity decrease,
//!   depth/sample stopping rules;
//! * [`chaid`] — CHAID: multiway splits chosen by χ² significance with
//!   the classic category-merge step and Bonferroni adjustment;
//! * [`stats`] — the χ² survival function (regularised incomplete gamma)
//!   both methods and the tests rely on;
//! * [`tree`] — the shared tree representation, prediction, and
//!   rule extraction ("the rules are incorporated in framework", §V);
//! * [`dataset`] — tabular data with continuous and categorical features;
//! * [`metrics`] — accuracy (the paper's `Cases Matched/TotalCases`) and
//!   confusion matrices.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cart;
pub mod chaid;
pub mod dataset;
pub mod metrics;
pub mod stats;
pub mod tree;

pub use cart::CartParams;
pub use chaid::ChaidParams;
pub use dataset::{Dataset, Feature, FeatureKind, Row, Value};
pub use metrics::{accuracy, confusion_matrix};
pub use tree::{DecisionTree, TreeMethod};

/// Train a tree with either method using its default parameters.
pub fn train(method: TreeMethod, data: &Dataset) -> DecisionTree {
    match method {
        TreeMethod::Cart => cart::train_cart(data, &CartParams::default()),
        TreeMethod::Chaid => chaid::train_chaid(data, &ChaidParams::default()),
    }
}
