//! Statistical primitives: χ² tests via the regularised incomplete gamma
//! function (series + continued-fraction evaluation, Numerical-Recipes
//! style, implemented from scratch).

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g=7, n=9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// Regularised lower incomplete gamma P(a, x) by series expansion
/// (converges well for x < a + 1).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..500 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularised upper incomplete gamma Q(a, x) by continued fraction
/// (converges well for x ≥ a + 1).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Regularised lower incomplete gamma P(a, x).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain");
    if x == 0.0 {
        0.0
    } else if x < a + 1.0 {
        gamma_p_series(a, x).clamp(0.0, 1.0)
    } else {
        (1.0 - gamma_q_cf(a, x)).clamp(0.0, 1.0)
    }
}

/// χ² survival function: `P(X ≥ x)` for `df` degrees of freedom.
pub fn chi2_sf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "df must be positive");
    if x <= 0.0 {
        return 1.0;
    }
    let a = df / 2.0;
    let x2 = x / 2.0;
    if x2 < a + 1.0 {
        (1.0 - gamma_p_series(a, x2)).clamp(0.0, 1.0)
    } else {
        gamma_q_cf(a, x2).clamp(0.0, 1.0)
    }
}

/// Pearson χ² statistic and degrees of freedom for an r×c contingency
/// table given as rows of counts. Rows/columns with zero totals are
/// ignored (they contribute no information).
pub fn chi2_statistic(table: &[Vec<u32>]) -> (f64, f64) {
    let r = table.len();
    let c = table.first().map_or(0, |row| row.len());
    if r == 0 || c == 0 {
        return (0.0, 1.0);
    }
    let row_tot: Vec<f64> = table.iter().map(|row| row.iter().sum::<u32>() as f64).collect();
    let mut col_tot = vec![0f64; c];
    for row in table {
        for (j, &v) in row.iter().enumerate() {
            col_tot[j] += v as f64;
        }
    }
    let total: f64 = row_tot.iter().sum();
    if total == 0.0 {
        return (0.0, 1.0);
    }
    let live_rows = row_tot.iter().filter(|&&t| t > 0.0).count();
    let live_cols = col_tot.iter().filter(|&&t| t > 0.0).count();
    if live_rows < 2 || live_cols < 2 {
        return (0.0, 1.0);
    }
    let mut stat = 0.0;
    for (i, row) in table.iter().enumerate() {
        if row_tot[i] == 0.0 {
            continue;
        }
        for (j, &v) in row.iter().enumerate() {
            if col_tot[j] == 0.0 {
                continue;
            }
            let expected = row_tot[i] * col_tot[j] / total;
            let d = v as f64 - expected;
            stat += d * d / expected;
        }
    }
    let df = ((live_rows - 1) * (live_cols - 1)) as f64;
    (stat, df.max(1.0))
}

/// p-value of the Pearson χ² independence test on a contingency table.
pub fn chi2_p_value(table: &[Vec<u32>]) -> f64 {
    let (stat, df) = chi2_statistic(table);
    if stat == 0.0 {
        1.0
    } else {
        chi2_sf(stat, df)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π.
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi2_sf_known_values() {
        // df=1: P(X ≥ 3.841) ≈ 0.05; df=2: P(X ≥ 5.991) ≈ 0.05.
        assert!((chi2_sf(3.841, 1.0) - 0.05).abs() < 2e-3);
        assert!((chi2_sf(5.991, 2.0) - 0.05).abs() < 2e-3);
        // df=2 has closed form exp(-x/2).
        for x in [0.5f64, 1.0, 3.0, 10.0] {
            assert!((chi2_sf(x, 2.0) - (-x / 2.0).exp()).abs() < 1e-10, "x={x}");
        }
        assert_eq!(chi2_sf(0.0, 3.0), 1.0);
        assert!(chi2_sf(1000.0, 3.0) < 1e-12);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..50 {
            let p = gamma_p(2.5, i as f64 * 0.3);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
        assert!(prev > 0.999);
    }

    #[test]
    fn chi2_statistic_hand_computed() {
        // Table [[10, 20], [20, 10]]: expected 15 everywhere, stat =
        // 4 × 25/15 = 6.6667, df = 1.
        let (stat, df) = chi2_statistic(&[vec![10, 20], vec![20, 10]]);
        assert!((stat - 20.0 / 3.0).abs() < 1e-9);
        assert_eq!(df, 1.0);
    }

    #[test]
    fn independent_table_has_high_p() {
        let p = chi2_p_value(&[vec![30, 30], vec![30, 30]]);
        assert!((p - 1.0).abs() < 1e-9);
        let p = chi2_p_value(&[vec![29, 31], vec![31, 29]]);
        assert!(p > 0.5);
    }

    #[test]
    fn dependent_table_has_low_p() {
        let p = chi2_p_value(&[vec![50, 0], vec![0, 50]]);
        assert!(p < 1e-10);
    }

    #[test]
    fn degenerate_tables() {
        assert_eq!(chi2_p_value(&[]), 1.0);
        assert_eq!(chi2_p_value(&[vec![0, 0], vec![0, 0]]), 1.0);
        // Single live row: no information.
        assert_eq!(chi2_p_value(&[vec![10, 20], vec![0, 0]]), 1.0);
        // Single live column.
        assert_eq!(chi2_p_value(&[vec![10, 0], vec![20, 0]]), 1.0);
    }
}
