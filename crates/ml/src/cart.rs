//! CART: binary classification trees with Gini impurity.
//!
//! §V-B: CART "identifies the resemblance within the class and generates
//! binary tree accordingly" — binary splits on continuous thresholds and
//! on category-subset membership, chosen to maximise the Gini impurity
//! decrease, with minimum-sample and depth stopping rules.

use crate::dataset::{Dataset, FeatureKind, Value};
use crate::tree::{DecisionTree, Node, SplitRule, TreeMethod};

/// CART hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CartParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows required to attempt a split.
    pub min_split: usize,
    /// Minimum rows in each child.
    pub min_leaf: usize,
    /// Minimum Gini decrease for a split to be kept (pre-pruning).
    pub min_gain: f64,
    /// Cost-complexity (weakest-link) pruning strength α: subtrees whose
    /// per-leaf misclassification improvement is below α are collapsed.
    /// 0 disables post-pruning.
    pub prune_alpha: f64,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams {
            max_depth: 12,
            min_split: 8,
            min_leaf: 3,
            min_gain: 1e-4,
            prune_alpha: 0.0,
        }
    }
}

/// Gini impurity of a class-count vector.
pub fn gini(counts: &[u32]) -> f64 {
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

struct BestSplit {
    feature: usize,
    rule: SplitRule,
    gain: f64,
    left: Vec<u32>,
    right: Vec<u32>,
}

/// Train a CART tree.
pub fn train_cart(data: &Dataset, params: &CartParams) -> DecisionTree {
    let idx: Vec<u32> = (0..data.rows.len() as u32).collect();
    let mut root = build(data, params, idx, 0);
    if params.prune_alpha > 0.0 {
        prune(&mut root, params.prune_alpha);
    }
    DecisionTree {
        method: TreeMethod::Cart,
        feature_names: data.features.iter().map(|f| f.name.clone()).collect(),
        classes: data.classes.clone(),
        root,
    }
}

/// Weakest-link (cost-complexity) pruning, bottom-up. A subtree is
/// collapsed into a leaf when the misclassification errors it saves per
/// extra leaf fall below `alpha` (errors measured on the training
/// counts, in rows).
///
/// Returns `(class_counts, n_leaves, subtree_errors)` for the node.
fn prune(node: &mut Node, alpha: f64) -> (Vec<u32>, usize, u32) {
    match node {
        Node::Leaf { counts, class } => {
            let errors: u32 = counts.iter().sum::<u32>()
                - counts.get(*class as usize).copied().unwrap_or(0);
            (counts.clone(), 1, errors)
        }
        Node::Split { children, .. } => {
            let mut counts: Vec<u32> = Vec::new();
            let mut leaves = 0usize;
            let mut sub_errors = 0u32;
            for child in children.iter_mut() {
                let (c, l, e) = prune(child, alpha);
                if counts.is_empty() {
                    counts = c;
                } else {
                    for (a, b) in counts.iter_mut().zip(&c) {
                        *a += b;
                    }
                }
                leaves += l;
                sub_errors += e;
            }
            let total: u32 = counts.iter().sum();
            let best = counts.iter().copied().max().unwrap_or(0);
            let leaf_errors = total - best;
            // g(t) = (R(leaf) - R(subtree)) / (leaves - 1)
            let g = (leaf_errors.saturating_sub(sub_errors)) as f64
                / (leaves.max(2) - 1) as f64;
            if g <= alpha {
                // Collapse into a leaf.
                let class = counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &c)| (c, usize::MAX - i))
                    .map(|(i, _)| i as u32)
                    .unwrap_or(0);
                *node = Node::Leaf {
                    class,
                    counts: counts.clone(),
                };
                (counts, 1, leaf_errors)
            } else {
                (counts, leaves, sub_errors)
            }
        }
    }
}

fn build(data: &Dataset, params: &CartParams, idx: Vec<u32>, depth: usize) -> Node {
    let counts = data.class_counts(&idx);
    let majority = data.majority(&idx);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= params.max_depth || idx.len() < params.min_split {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }
    let Some(best) = find_best_split(data, params, &idx) else {
        return Node::Leaf {
            class: majority,
            counts,
        };
    };
    if best.gain < params.min_gain {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }
    let left = build(data, params, best.left, depth + 1);
    let right = build(data, params, best.right, depth + 1);
    Node::Split {
        feature: best.feature,
        rule: best.rule,
        children: vec![left, right],
        majority,
    }
}

fn find_best_split(data: &Dataset, params: &CartParams, idx: &[u32]) -> Option<BestSplit> {
    let parent_gini = gini(&data.class_counts(idx));
    let n = idx.len() as f64;
    let mut best: Option<BestSplit> = None;
    for (f, feat) in data.features.iter().enumerate() {
        let candidate = match feat.kind {
            FeatureKind::Continuous => best_threshold_split(data, idx, f),
            FeatureKind::Categorical => best_subset_split(data, idx, f),
        };
        if let Some((rule, left, right)) = candidate {
            if left.len() < params.min_leaf || right.len() < params.min_leaf {
                continue;
            }
            let gl = gini(&data.class_counts(&left));
            let gr = gini(&data.class_counts(&right));
            let weighted =
                (left.len() as f64 * gl + right.len() as f64 * gr) / n;
            let gain = parent_gini - weighted;
            if best.as_ref().is_none_or(|b| gain > b.gain) {
                best = Some(BestSplit {
                    feature: f,
                    rule,
                    gain,
                    left,
                    right,
                });
            }
        }
    }
    best
}

/// Best `value ≤ t` split on a continuous feature: scan the sorted
/// midpoints, tracking class counts incrementally.
fn best_threshold_split(
    data: &Dataset,
    idx: &[u32],
    f: usize,
) -> Option<(SplitRule, Vec<u32>, Vec<u32>)> {
    let mut vals: Vec<(f64, u32)> = idx
        .iter()
        .map(|&i| (data.rows[i as usize].values[f].as_f64(), i))
        .collect();
    vals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let k = data.n_classes();
    let mut left_counts = vec![0u32; k];
    let mut right_counts = data.class_counts(idx);
    let total = idx.len() as f64;
    let parent = gini(&right_counts);
    let mut best: Option<(f64, f64)> = None; // (gain, threshold)
    for w in 0..vals.len().saturating_sub(1) {
        let (v, i) = vals[w];
        let label = data.rows[i as usize].label as usize;
        left_counts[label] += 1;
        right_counts[label] -= 1;
        let next_v = vals[w + 1].0;
        if next_v <= v {
            continue; // same value; threshold must separate
        }
        let nl = (w + 1) as f64;
        let nr = total - nl;
        let weighted = (nl * gini(&left_counts) + nr * gini(&right_counts)) / total;
        let gain = parent - weighted;
        let threshold = (v + next_v) / 2.0;
        if best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, threshold));
        }
    }
    let (_, threshold) = best?;
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &i in idx {
        if data.rows[i as usize].values[f].as_f64() <= threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    Some((SplitRule::Threshold { threshold }, left, right))
}

/// Best one-group-vs-rest categorical split (for the small cardinalities
/// of this problem — algorithm id, machine id — this matches full subset
/// search closely at a fraction of the cost; classic CART twoing).
fn best_subset_split(
    data: &Dataset,
    idx: &[u32],
    f: usize,
) -> Option<(SplitRule, Vec<u32>, Vec<u32>)> {
    let mut cats: Vec<u32> = idx
        .iter()
        .map(|&i| match data.rows[i as usize].values[f] {
            Value::Cat(c) => c,
            Value::Num(x) => x as u32,
        })
        .collect();
    cats.sort_unstable();
    cats.dedup();
    if cats.len() < 2 {
        return None;
    }
    let parent = gini(&data.class_counts(idx));
    let total = idx.len() as f64;
    let mut best: Option<(f64, u32)> = None;
    for &c in &cats {
        let (mut l, mut r) = (Vec::new(), Vec::new());
        for &i in idx {
            let v = match data.rows[i as usize].values[f] {
                Value::Cat(x) => x,
                Value::Num(x) => x as u32,
            };
            if v == c {
                l.push(i);
            } else {
                r.push(i);
            }
        }
        if l.is_empty() || r.is_empty() {
            continue;
        }
        let weighted = (l.len() as f64 * gini(&data.class_counts(&l))
            + r.len() as f64 * gini(&data.class_counts(&r)))
            / total;
        let gain = parent - weighted;
        if best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, c));
        }
    }
    let (_, c) = best?;
    let rest: Vec<u32> = cats.iter().copied().filter(|&x| x != c).collect();
    let (mut left, mut right) = (Vec::new(), Vec::new());
    for &i in idx {
        let v = match data.rows[i as usize].values[f] {
            Value::Cat(x) => x,
            Value::Num(x) => x as u32,
        };
        if v == c {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    Some((
        SplitRule::Groups {
            groups: vec![vec![c], rest],
        },
        left,
        right,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;
    use crate::metrics::accuracy;

    fn dataset_xor_like() -> Dataset {
        // Two continuous features; class = (x > 5) XOR (y > 5) — needs
        // depth 2.
        let mut d = Dataset::new(
            vec![
                Feature { name: "x".into(), kind: FeatureKind::Continuous },
                Feature { name: "y".into(), kind: FeatureKind::Continuous },
            ],
            vec!["0".into(), "1".into()],
        );
        for xi in 0..10 {
            for yi in 0..10 {
                let label = u32::from((xi > 5) ^ (yi > 5));
                d.push(
                    vec![Value::Num(xi as f64), Value::Num(yi as f64)],
                    label,
                );
            }
        }
        d
    }

    #[test]
    fn gini_values() {
        assert_eq!(gini(&[10, 0]), 0.0);
        assert!((gini(&[5, 5]) - 0.5).abs() < 1e-12);
        assert!((gini(&[1, 1, 1, 1]) - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn learns_simple_threshold() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["lo".into(), "hi".into()],
        );
        for i in 0..40 {
            d.push(vec![Value::Num(i as f64)], u32::from(i >= 20));
        }
        let t = train_cart(&d, &CartParams::default());
        let preds = t.predict_all(&d);
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        assert_eq!(accuracy(&preds, &labels), 1.0);
        assert_eq!(t.depth(), 2); // single split suffices
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let d = dataset_xor_like();
        let t = train_cart(&d, &CartParams::default());
        let preds = t.predict_all(&d);
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        assert!(accuracy(&preds, &labels) > 0.95);
    }

    #[test]
    fn categorical_split() {
        let mut d = Dataset::new(
            vec![Feature { name: "algo".into(), kind: FeatureKind::Categorical }],
            vec!["slow".into(), "fast".into()],
        );
        for i in 0..30 {
            let cat = i % 3;
            d.push(vec![Value::Cat(cat)], u32::from(cat == 2));
        }
        let t = train_cart(&d, &CartParams::default());
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        assert_eq!(accuracy(&t.predict_all(&d), &labels), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let d = dataset_xor_like();
        let t = train_cart(
            &d,
            &CartParams {
                max_depth: 1,
                ..CartParams::default()
            },
        );
        assert!(t.depth() <= 2);
    }

    #[test]
    fn pure_dataset_is_single_leaf() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["only".into()],
        );
        for i in 0..10 {
            d.push(vec![Value::Num(i as f64)], 0);
        }
        let t = train_cart(&d, &CartParams::default());
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn constant_feature_yields_leaf() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        for i in 0..20 {
            d.push(vec![Value::Num(1.0)], (i % 2) as u32);
        }
        let t = train_cart(&d, &CartParams::default());
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn min_leaf_respected() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        // One outlier of class b.
        for i in 0..20 {
            d.push(vec![Value::Num(i as f64)], 0);
        }
        d.push(vec![Value::Num(100.0)], 1);
        let t = train_cart(
            &d,
            &CartParams {
                min_leaf: 3,
                ..CartParams::default()
            },
        );
        // The outlier cannot be isolated: single leaf.
        assert_eq!(t.n_leaves(), 1);
    }
}

#[cfg(test)]
mod prune_tests {
    use super::*;
    use crate::dataset::{Dataset, Feature, FeatureKind, Value};
    use crate::metrics::accuracy;

    /// A clean threshold signal plus label noise: unpruned CART chases
    /// the noise; pruning should collapse those splits.
    fn noisy_dataset() -> Dataset {
        let mut d = Dataset::new(
            vec![Feature {
                name: "x".into(),
                kind: FeatureKind::Continuous,
            }],
            vec!["a".into(), "b".into()],
        );
        for i in 0..400 {
            let label = u32::from(i >= 200) ^ u32::from(i % 17 == 0); // ~6% noise
            d.push(vec![Value::Num(i as f64)], label);
        }
        d
    }

    #[test]
    fn pruning_shrinks_the_tree() {
        let d = noisy_dataset();
        let unpruned = train_cart(&d, &CartParams::default());
        let pruned = train_cart(
            &d,
            &CartParams {
                prune_alpha: 3.0,
                ..CartParams::default()
            },
        );
        assert!(
            pruned.n_leaves() < unpruned.n_leaves(),
            "pruned {} vs unpruned {}",
            pruned.n_leaves(),
            unpruned.n_leaves()
        );
        // The pruned tree still captures the main signal.
        let labels: Vec<u32> = (0..400).map(|i| u32::from(i >= 200)).collect();
        let acc = accuracy(&pruned.predict_all(&d), &labels);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn huge_alpha_collapses_to_single_leaf() {
        let d = noisy_dataset();
        let t = train_cart(
            &d,
            &CartParams {
                prune_alpha: 1e9,
                ..CartParams::default()
            },
        );
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn zero_alpha_is_a_noop() {
        let d = noisy_dataset();
        let a = train_cart(&d, &CartParams::default());
        let b = train_cart(
            &d,
            &CartParams {
                prune_alpha: 0.0,
                ..CartParams::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn pruned_counts_are_preserved() {
        // Collapsed leaves carry the merged class counts of the subtree.
        let d = noisy_dataset();
        let t = train_cart(
            &d,
            &CartParams {
                prune_alpha: 1e9,
                ..CartParams::default()
            },
        );
        if let Node::Leaf { counts, .. } = &t.root {
            assert_eq!(counts.iter().sum::<u32>(), 400);
        } else {
            panic!("expected a single leaf");
        }
    }
}
