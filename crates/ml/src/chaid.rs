//! CHAID: Chi-squared Automatic Interaction Detector.
//!
//! §IV-D names CHAID as one of the two rule generators; §V-A notes "CHAID
//! uses the methodology based on the variable which splits more" — the
//! χ²-most-significant predictor wins each node, with the classic
//! category-merge step first.
//!
//! Implementation notes:
//!
//! * Continuous predictors are discretised once, globally, into at most
//!   `max_bins` quantile bins (SPSS does the same). Within a node, only
//!   *adjacent* bins may merge (ordinal treatment); nominal features may
//!   merge any pair.
//! * Merging continues while the least-significant pair's χ² p-value
//!   exceeds `alpha_merge`.
//! * The winning feature's p-value is Bonferroni-adjusted by the number
//!   of ways its categories can collapse into the final group count; the
//!   node splits only if the adjusted p is below `alpha_split`.

use crate::dataset::{Dataset, FeatureKind, Value};
use crate::stats::chi2_p_value;
use crate::tree::{DecisionTree, Node, SplitRule, TreeMethod};

/// CHAID hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaidParams {
    /// Significance threshold to *stop* merging (pairs with p above this
    /// keep merging).
    pub alpha_merge: f64,
    /// Significance threshold required to split a node.
    pub alpha_split: f64,
    /// Maximum quantile bins for continuous predictors.
    pub max_bins: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum rows to attempt a split.
    pub min_split: usize,
    /// Minimum rows per child.
    pub min_leaf: usize,
}

impl Default for ChaidParams {
    fn default() -> Self {
        ChaidParams {
            alpha_merge: 0.05,
            alpha_split: 0.05,
            max_bins: 8,
            max_depth: 10,
            min_split: 12,
            min_leaf: 4,
        }
    }
}

/// Train a CHAID tree.
pub fn train_chaid(data: &Dataset, params: &ChaidParams) -> DecisionTree {
    // Global quantile bin edges for each continuous feature.
    let bin_edges: Vec<Option<Vec<f64>>> = data
        .features
        .iter()
        .enumerate()
        .map(|(f, feat)| match feat.kind {
            FeatureKind::Continuous => Some(quantile_edges(data, f, params.max_bins)),
            FeatureKind::Categorical => None,
        })
        .collect();
    let idx: Vec<u32> = (0..data.rows.len() as u32).collect();
    let root = build(data, params, &bin_edges, idx, 0);
    DecisionTree {
        method: TreeMethod::Chaid,
        feature_names: data.features.iter().map(|f| f.name.clone()).collect(),
        classes: data.classes.clone(),
        root,
    }
}

/// Inner quantile edges (ascending, deduplicated) giving ≤ `max_bins`
/// bins over feature `f`.
fn quantile_edges(data: &Dataset, f: usize, max_bins: usize) -> Vec<f64> {
    let mut vals: Vec<f64> = data
        .rows
        .iter()
        .map(|r| r.values[f].as_f64())
        .collect();
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    if vals.len() <= max_bins {
        // Each distinct value is its own bin; edges at midpoints.
        return vals
            .windows(2)
            .map(|w| (w[0] + w[1]) / 2.0)
            .collect();
    }
    let mut edges = Vec::with_capacity(max_bins - 1);
    for b in 1..max_bins {
        let q = b as f64 / max_bins as f64;
        let pos = ((vals.len() - 1) as f64 * q) as usize;
        edges.push(vals[pos]);
    }
    edges.sort_by(f64::total_cmp);
    edges.dedup();
    edges
}

/// The category (bin id) of a value under the node's feature encoding.
fn category_of(v: &Value, edges: Option<&Vec<f64>>) -> u32 {
    match (v, edges) {
        (Value::Num(x), Some(e)) => e.iter().take_while(|&&t| *x > t).count() as u32,
        (Value::Cat(c), _) => *c,
        (Value::Num(x), None) => *x as u32,
    }
}

struct ChaidSplit {
    feature: usize,
    /// Groups of category ids (bin ids for continuous), each non-empty.
    groups: Vec<Vec<u32>>,
    adjusted_p: f64,
    children_idx: Vec<Vec<u32>>,
}

fn build(
    data: &Dataset,
    params: &ChaidParams,
    bin_edges: &[Option<Vec<f64>>],
    idx: Vec<u32>,
    depth: usize,
) -> Node {
    let counts = data.class_counts(&idx);
    let majority = data.majority(&idx);
    let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
    if pure || depth >= params.max_depth || idx.len() < params.min_split {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }
    let best = (0..data.features.len())
        .filter_map(|f| evaluate_feature(data, params, bin_edges, &idx, f))
        .min_by(|a, b| a.adjusted_p.total_cmp(&b.adjusted_p));
    let Some(best) = best else {
        return Node::Leaf {
            class: majority,
            counts,
        };
    };
    if best.adjusted_p > params.alpha_split {
        return Node::Leaf {
            class: majority,
            counts,
        };
    }
    let rule = match &bin_edges[best.feature] {
        Some(edges) => {
            // Adjacent bin groups → interval edges at group boundaries.
            let mut split_edges = Vec::with_capacity(best.groups.len() - 1);
            for g in &best.groups[..best.groups.len() - 1] {
                let hi_bin = *g.iter().max().expect("non-empty group") as usize;
                // Edge between bin hi and hi+1 is edges[hi]; the last bin
                // has no upper edge.
                if hi_bin < edges.len() {
                    split_edges.push(edges[hi_bin]);
                }
            }
            SplitRule::Intervals { edges: split_edges }
        }
        None => SplitRule::Groups {
            groups: best.groups.clone(),
        },
    };
    let children = best
        .children_idx
        .into_iter()
        .map(|child_idx| build(data, params, bin_edges, child_idx, depth + 1))
        .collect();
    Node::Split {
        feature: best.feature,
        rule,
        children,
        majority,
    }
}

/// Merge categories and compute the adjusted p-value for one feature.
fn evaluate_feature(
    data: &Dataset,
    params: &ChaidParams,
    bin_edges: &[Option<Vec<f64>>],
    idx: &[u32],
    f: usize,
) -> Option<ChaidSplit> {
    let edges = bin_edges[f].as_ref();
    let ordinal = edges.is_some();
    // Rows per category present at this node.
    let mut cat_rows: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for &i in idx {
        let c = category_of(&data.rows[i as usize].values[f], edges);
        cat_rows.entry(c).or_default().push(i);
    }
    if cat_rows.len() < 2 {
        return None;
    }
    let n_original = cat_rows.len();
    // Groups start as singleton categories (sorted for ordinal).
    let mut groups: Vec<Vec<u32>> = cat_rows.keys().map(|&c| vec![c]).collect();
    let mut group_rows: Vec<Vec<u32>> = cat_rows.values().cloned().collect();

    let class_table = |rows: &[u32]| data.class_counts(rows);

    // Merge loop.
    while groups.len() > 2 {
        // Candidate pairs: adjacent only for ordinal features.
        let mut worst: Option<(usize, usize, f64)> = None;
        for a in 0..groups.len() {
            let bs: Vec<usize> = if ordinal {
                if a + 1 < groups.len() {
                    vec![a + 1]
                } else {
                    vec![]
                }
            } else {
                ((a + 1)..groups.len()).collect()
            };
            for b in bs {
                let table = vec![class_table(&group_rows[a]), class_table(&group_rows[b])];
                let p = chi2_p_value(&table);
                if worst.is_none_or(|(_, _, wp)| p > wp) {
                    worst = Some((a, b, p));
                }
            }
        }
        let Some((a, b, p)) = worst else { break };
        if p <= params.alpha_merge {
            break; // all pairs significantly different — stop merging
        }
        let (bg, brows) = (groups.remove(b), group_rows.remove(b));
        groups[a].extend(bg);
        groups[a].sort_unstable();
        group_rows[a].extend(brows);
    }

    // Children must satisfy min_leaf.
    if group_rows.iter().any(|g| g.len() < params.min_leaf) {
        return None;
    }
    let table: Vec<Vec<u32>> = group_rows.iter().map(|g| class_table(g)).collect();
    let p = chi2_p_value(&table);
    // Bonferroni: number of ways to reduce n_original categories to g
    // groups — C(n-1, g-1) for ordinal, Stirling-ish bound for nominal
    // (we use the same binomial bound; conservative enough here).
    let g = groups.len();
    let multiplier = binomial(n_original - 1, g - 1).max(1.0);
    let adjusted_p = (p * multiplier).min(1.0);
    Some(ChaidSplit {
        feature: f,
        groups,
        adjusted_p,
        children_idx: group_rows,
    })
}

fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut r = 1.0f64;
    for i in 0..k {
        r = r * (n - i) as f64 / (i + 1) as f64;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Feature;
    use crate::metrics::accuracy;

    #[test]
    fn quantile_edges_small_domain() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        for i in 0..10 {
            d.push(vec![Value::Num((i % 3) as f64)], (i % 2) as u32);
        }
        let e = quantile_edges(&d, 0, 8);
        assert_eq!(e, vec![0.5, 1.5]);
    }

    #[test]
    fn quantile_edges_large_domain() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        for i in 0..1000 {
            d.push(vec![Value::Num(i as f64)], (i % 2) as u32);
        }
        let e = quantile_edges(&d, 0, 8);
        assert_eq!(e.len(), 7);
        assert!(e.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(7, 0), 1.0);
        assert_eq!(binomial(3, 5), 0.0);
    }

    #[test]
    fn learns_threshold_classification() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["lo".into(), "hi".into()],
        );
        for i in 0..200 {
            d.push(vec![Value::Num(i as f64)], u32::from(i >= 100));
        }
        let t = train_chaid(&d, &ChaidParams::default());
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        let acc = accuracy(&t.predict_all(&d), &labels);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn learns_categorical_grouping() {
        // Categories {0,2,4} → class 0; {1,3} → class 1.
        let mut d = Dataset::new(
            vec![Feature { name: "c".into(), kind: FeatureKind::Categorical }],
            vec!["even".into(), "odd".into()],
        );
        for i in 0..250 {
            let c = (i % 5) as u32;
            d.push(vec![Value::Cat(c)], c % 2);
        }
        let t = train_chaid(&d, &ChaidParams::default());
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        assert_eq!(accuracy(&t.predict_all(&d), &labels), 1.0);
        // The merge step should have collapsed to exactly two groups.
        if let Node::Split { rule: SplitRule::Groups { groups }, .. } = &t.root {
            assert_eq!(groups.len(), 2);
            let mut g: Vec<Vec<u32>> = groups.clone();
            g.iter_mut().for_each(|x| x.sort_unstable());
            g.sort();
            assert_eq!(g, vec![vec![0, 2, 4], vec![1, 3]]);
        } else {
            panic!("expected a categorical split at the root, got {:?}", t.root);
        }
    }

    #[test]
    fn multiway_split_on_three_way_signal() {
        // x in [0,30) → class depends on thirds: 3 intervals, one split.
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into(), "c".into()],
        );
        for i in 0..300 {
            let x = (i % 30) as f64;
            let label = (x as u32) / 10;
            d.push(vec![Value::Num(x)], label);
        }
        // Enough bins that the global quantile grid aligns with the
        // class boundaries (binning resolution is a real CHAID limit).
        let params = ChaidParams {
            max_bins: 15,
            ..ChaidParams::default()
        };
        let t = train_chaid(&d, &params);
        let labels: Vec<u32> = d.rows.iter().map(|r| r.label).collect();
        assert_eq!(accuracy(&t.predict_all(&d), &labels), 1.0);
        // Root should be one multiway Intervals split with 3 children.
        if let Node::Split { rule: SplitRule::Intervals { edges }, children, .. } = &t.root {
            assert_eq!(children.len(), 3);
            assert_eq!(edges.len(), 2);
        } else {
            panic!("expected multiway intervals root, got {:?}", t.root);
        }
    }

    #[test]
    fn no_signal_yields_leaf() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        // Label independent of x (alternating).
        for i in 0..100 {
            d.push(vec![Value::Num((i / 2) as f64)], (i % 2) as u32);
        }
        let t = train_chaid(&d, &ChaidParams::default());
        assert_eq!(t.n_leaves(), 1, "rules: {:?}", t.rules());
    }

    #[test]
    fn pure_node_is_leaf() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["only".into(), "other".into()],
        );
        for i in 0..50 {
            d.push(vec![Value::Num(i as f64)], 0);
        }
        let t = train_chaid(&d, &ChaidParams::default());
        assert_eq!(t.n_leaves(), 1);
    }

    #[test]
    fn respects_min_split() {
        let mut d = Dataset::new(
            vec![Feature { name: "x".into(), kind: FeatureKind::Continuous }],
            vec!["a".into(), "b".into()],
        );
        for i in 0..10 {
            d.push(vec![Value::Num(i as f64)], u32::from(i >= 5));
        }
        let t = train_chaid(
            &d,
            &ChaidParams {
                min_split: 50,
                ..ChaidParams::default()
            },
        );
        assert_eq!(t.n_leaves(), 1);
    }
}
