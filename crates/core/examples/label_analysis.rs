//! Diagnostic: who wins the time label per size band, and how close the
//! race is. Run with `DNACOMP_SCALE` semantics of the bench pipeline but
//! self-contained here.
use dnacomp_algos::paper_algorithms;
use dnacomp_cloud::{context_grid, MachineSpec, PerfModel};
use dnacomp_core::{build_rows, label_rows, measure_corpus, WeightVector};
use dnacomp_seq::corpus::CorpusBuilder;
use std::collections::BTreeMap;

fn main() {
    let files = CorpusBuilder::paper(42).build();
    let ms = measure_corpus(&files, &paper_algorithms()).unwrap();
    let rows = build_rows(&ms, &context_grid(), &PerfModel::default(), &MachineSpec::azure_vm());
    let labeled = label_rows(&rows, &WeightVector::time_only());
    // winner histogram per size decade
    let mut bands: BTreeMap<u32, BTreeMap<String, u32>> = BTreeMap::new();
    for l in &labeled {
        let band = (l.file_bytes as f64).log10().floor() as u32;
        *bands
            .entry(band)
            .or_default()
            .entry(l.winner.name().to_owned())
            .or_default() += 1;
    }
    for (band, hist) in &bands {
        println!("10^{band}B: {hist:?}");
    }
    // margin analysis: per cell, (best, second) total-ms gap relative.
    let mut cells: BTreeMap<(String, u32, u32, u64), Vec<f64>> = BTreeMap::new();
    for r in &rows {
        cells
            .entry((r.file.clone(), r.ram_mb, r.cpu_mhz, (r.bandwidth_mbps * 1000.0) as u64))
            .or_default()
            .push(r.total_ms());
    }
    let mut tight = 0;
    let mut total = 0;
    for (_, mut v) in cells {
        v.sort_by(f64::total_cmp);
        let margin = (v[1] - v[0]) / v[0];
        if margin < 0.08 {
            tight += 1;
        }
        total += 1;
    }
    println!("cells with <8% winner margin: {tight}/{total}");
}
