//! The deployed framework of Figure 7.
//!
//! Components, as the paper names them: the **Context Gatherer**
//! (collects resources — [`crate::context`]), the **Inference Engine**
//! ("decides which algorithm should be chosen for compression" — the
//! learned decision tree), and the **Compressor**. The framework answers
//! the paper's two framing questions (§I):
//!
//! 1. *whether it is crucial to compress* the sequence at all, and
//! 2. *which algorithm should be used*.

use crate::context::Context;
use crate::dataset::{build_dataset, class_to_algorithm};
use crate::labeler::LabeledRow;
use dnacomp_algos::{compressor_for, Algorithm};
use dnacomp_cloud::{CloudSim, ExchangeError, ExchangeReport, PerfModel};
use dnacomp_codec::CodecError;
use dnacomp_ml::{accuracy, CartParams, ChaidParams, Dataset, DecisionTree, TreeMethod, Value};
use dnacomp_seq::PackedSeq;
use std::sync::Arc;

/// Per-algorithm circuit breaker for the degradation ladder.
///
/// Each algorithm accumulates *consecutive* exchange failures; once the
/// count reaches the threshold its circuit **opens** and
/// [`ContextAwareFramework::exchange_resilient`] skips it rather than
/// burning retries on a compressor that keeps failing in this
/// environment. A successful exchange closes the circuit again. The last
/// rung of the ladder ([`Algorithm::Raw`]) is never skipped — when
/// everything else is open, shipping 2-bit-packed bases is still
/// attempted as the last resort.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CircuitBreaker {
    threshold: u32,
    /// `(algorithm tag, consecutive failures)` pairs, created on demand.
    counts: Vec<(u8, u32)>,
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::with_threshold(3)
    }
}

impl CircuitBreaker {
    /// Breaker opening after `threshold` consecutive failures (≥ 1).
    pub fn with_threshold(threshold: u32) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        CircuitBreaker {
            threshold,
            counts: Vec::new(),
        }
    }

    /// Consecutive failures recorded for `alg`.
    pub fn failures(&self, alg: Algorithm) -> u32 {
        self.counts
            .iter()
            .find(|(tag, _)| *tag == alg.tag())
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Is `alg`'s circuit open (should the ladder skip it)?
    pub fn is_open(&self, alg: Algorithm) -> bool {
        self.failures(alg) >= self.threshold
    }

    fn slot(&mut self, alg: Algorithm) -> &mut u32 {
        let tag = alg.tag();
        if let Some(i) = self.counts.iter().position(|(t, _)| *t == tag) {
            &mut self.counts[i].1
        } else {
            self.counts.push((tag, 0));
            &mut self.counts.last_mut().expect("just pushed").1
        }
    }

    /// Record a failed exchange with `alg`.
    pub fn record_failure(&mut self, alg: Algorithm) {
        *self.slot(alg) += 1;
    }

    /// Record a successful exchange with `alg` (closes the circuit).
    pub fn record_success(&mut self, alg: Algorithm) {
        *self.slot(alg) = 0;
    }
}

/// The trained context-aware selection framework.
///
/// ```
/// use dnacomp_core::{Context, ContextAwareFramework, LabeledRow};
/// use dnacomp_algos::Algorithm;
/// use dnacomp_ml::TreeMethod;
/// // Labelled rows normally come from the measurement grid; a crisp
/// // synthetic rule suffices to demonstrate the API.
/// let rows: Vec<LabeledRow> = (0..60).map(|i| LabeledRow {
///     file: format!("f{i}"),
///     file_bytes: 1_000 + i * 10_000,
///     ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///     winner: if i < 30 { Algorithm::GenCompress } else { Algorithm::Dnax },
///     score: 0.0,
/// }).collect();
/// let fw = ContextAwareFramework::train(&rows, TreeMethod::Cart);
/// let small = Context { ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///                       file_bytes: 50_000 };
/// assert_eq!(fw.decide(&small), Algorithm::GenCompress);
/// ```
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ContextAwareFramework {
    tree: DecisionTree,
    /// Dataset schema used at training time (for class mapping).
    schema: Dataset,
    /// Fallback when the tree's prediction cannot be mapped.
    fallback: Algorithm,
    /// Per-algorithm circuit breaker driving the degradation ladder.
    breaker: CircuitBreaker,
}

impl ContextAwareFramework {
    /// Train from labelled rows with the given method and default
    /// parameters.
    pub fn train(rows: &[LabeledRow], method: TreeMethod) -> Self {
        let data = build_dataset(rows, &Algorithm::PAPER);
        let tree = match method {
            TreeMethod::Cart => dnacomp_ml::cart::train_cart(&data, &CartParams::default()),
            TreeMethod::Chaid => dnacomp_ml::chaid::train_chaid(&data, &ChaidParams::default()),
        };
        let mut schema = data;
        schema.rows.clear();
        ContextAwareFramework {
            tree,
            schema,
            fallback: Algorithm::Dnax,
            breaker: CircuitBreaker::default(),
        }
    }

    /// The circuit breaker's current state.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// The learned tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Serialise the trained model (rules + schema) to JSON — the
    /// persisted "rules" the Figure-7 deployment reads at startup.
    pub fn to_json(&self) -> Result<String, CodecError> {
        serde_json::to_string(self).map_err(|_| CodecError::Corrupt("framework serialisation"))
    }

    /// Load a model previously saved with
    /// [`ContextAwareFramework::to_json`].
    pub fn from_json(json: &str) -> Result<Self, CodecError> {
        serde_json::from_str(json).map_err(|_| CodecError::Corrupt("framework deserialisation"))
    }

    /// Human-readable rules (Figure 7: "the rules available").
    pub fn rules(&self) -> Vec<String> {
        self.tree.rules()
    }

    /// The Inference Engine: pick the algorithm for a context.
    pub fn decide(&self, ctx: &Context) -> Algorithm {
        let values = [
            Value::Num(ctx.file_kb()),
            Value::Num(ctx.ram_mb as f64),
            Value::Num(ctx.cpu_mhz as f64),
            Value::Num(ctx.bandwidth_mbps),
        ];
        let class = self.tree.predict(&values);
        class_to_algorithm(&self.schema, class).unwrap_or(self.fallback)
    }

    /// The paper's first question: is compressing worth it at all?
    ///
    /// Compares the estimated exchange cost of shipping raw against
    /// compressing with the context's chosen algorithm (assuming a
    /// typical DNA ratio), using the same performance model that prices
    /// the simulator. On very fast links with slow CPUs, raw wins.
    pub fn worth_compressing(&self, ctx: &Context, perf: &PerfModel) -> bool {
        let client = ctx.client();
        let n = ctx.file_bytes as usize;
        let alg = self.decide(ctx);
        // Raw path: upload the uncompressed file.
        let raw_ms = perf.upload_ms(&client, alg, "raw", n, 0);
        // Compressed path: estimated compress cost + upload of ~0.25×.
        // Work/base estimates mirror each port's measured meter rates.
        let work_per_base: u64 = match alg {
            Algorithm::Dnax => 10,
            Algorithm::Ctw => 36,
            Algorithm::GenCompress => 14,
            Algorithm::Gzip => 11,
            Algorithm::BioCompress2 => 9,
            Algorithm::DnaPackLite => 7,
            Algorithm::Cfact => 40,
            Algorithm::XmLite => 36,
            Algorithm::Reference => 6,
            Algorithm::Dnac => 42,
            Algorithm::DnaCompress => 12,
            Algorithm::DnaSequitur => 20,
            Algorithm::CtwLz => 40,
            Algorithm::Raw => 1,
            Algorithm::Bwt => 18,
        };
        let est_stats = dnacomp_algos::ResourceStats {
            work_units: n as u64 * work_per_base,
            peak_heap_bytes: n as u64 * 16,
        };
        let comp_ms = perf.compress_ms(&client, alg, "raw", &est_stats);
        let up_ms = perf.upload_ms(&client, alg, "raw", n / 4, est_stats.peak_heap_bytes);
        comp_ms + up_ms < raw_ms
    }

    /// Accuracy of the framework's decisions against labelled rows —
    /// the paper's `Cases Matched / TotalCases`.
    pub fn evaluate(&self, rows: &[LabeledRow]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let preds: Vec<Algorithm> = rows
            .iter()
            .map(|r| {
                self.decide(&Context {
                    ram_mb: r.ram_mb,
                    cpu_mhz: r.cpu_mhz,
                    bandwidth_mbps: r.bandwidth_mbps,
                    file_bytes: r.file_bytes,
                })
            })
            .collect();
        let pred_ids: Vec<u32> = preds.iter().map(|a| a.tag() as u32).collect();
        let label_ids: Vec<u32> = rows.iter().map(|r| r.winner.tag() as u32).collect();
        accuracy(&pred_ids, &label_ids)
    }

    /// Full Figure-7 exchange: gather → infer → compress → upload →
    /// download → decompress, on the simulator. One shot: the chosen
    /// algorithm's failure (if any) is surfaced, not worked around —
    /// use [`exchange_resilient`](Self::exchange_resilient) for the
    /// degradation ladder.
    pub fn exchange(
        &self,
        sim: &mut CloudSim,
        ctx: &Context,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<(Algorithm, ExchangeReport), ExchangeError> {
        let alg = self.decide(ctx);
        let compressor = compressor_for(alg);
        let report = sim.exchange(&ctx.client(), compressor.as_ref(), file, seq)?;
        Ok((alg, report))
    }

    /// Resilient exchange with graceful degradation.
    ///
    /// Walks the ladder *chosen algorithm → Gzip → Raw (2-bit pass-
    /// through)*: each rung is attempted unless its circuit is open
    /// (Raw, the last resort, is never skipped). A rung that fails — or
    /// is skipped — is recorded in the successful report's
    /// [`ExchangeReport::degraded_from`], and its breaker count is
    /// incremented so persistently failing compressors get skipped
    /// outright on later calls. If every rung fails, the last rung's
    /// typed error is returned: the caller always gets either a verified
    /// roundtrip or an explicit failure.
    pub fn exchange_resilient(
        &mut self,
        sim: &mut CloudSim,
        ctx: &Context,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<(Algorithm, ExchangeReport), ExchangeError> {
        let chosen = self.decide(ctx);
        run_ladder(chosen, &mut self.breaker, sim, ctx, file, seq)
    }
}

/// Walk the degradation ladder *`chosen` → Gzip → Raw* with an external
/// circuit breaker.
///
/// This is [`ContextAwareFramework::exchange_resilient`] with the
/// decision and the breaker supplied by the caller, so a shared
/// read-only framework snapshot ([`FrameworkHandle`]) can drive
/// resilient exchanges from many workers, each owning its own breaker
/// and simulator. Semantics are identical: rungs with an open circuit
/// are skipped (never the last resort), every failure increments the
/// rung's breaker count, a success resets it and records the abandoned
/// rungs in [`ExchangeReport::degraded_from`].
pub fn run_ladder(
    chosen: Algorithm,
    breaker: &mut CircuitBreaker,
    sim: &mut CloudSim,
    ctx: &Context,
    file: &str,
    seq: &PackedSeq,
) -> Result<(Algorithm, ExchangeReport), ExchangeError> {
    let mut ladder = vec![chosen];
    if chosen != Algorithm::Gzip {
        ladder.push(Algorithm::Gzip);
    }
    if chosen != Algorithm::Raw {
        ladder.push(Algorithm::Raw);
    }
    let mut degraded: Vec<Algorithm> = Vec::new();
    let mut last_err: Option<ExchangeError> = None;
    for (i, alg) in ladder.iter().copied().enumerate() {
        let last_resort = i == ladder.len() - 1;
        if !last_resort && breaker.is_open(alg) {
            degraded.push(alg);
            continue;
        }
        let compressor = compressor_for(alg);
        match sim.exchange(&ctx.client(), compressor.as_ref(), file, seq) {
            Ok(mut report) => {
                breaker.record_success(alg);
                report.degraded_from = degraded;
                return Ok((alg, report));
            }
            Err(e) => {
                breaker.record_failure(alg);
                degraded.push(alg);
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| CodecError::Corrupt("no algorithm left to attempt").into()))
}

/// A cheap, cloneable, thread-safe handle to a trained framework.
///
/// The rule tree is immutable after training, so concurrent services
/// share one snapshot behind an [`Arc`] instead of retraining or
/// cloning per worker. The handle exposes the *read-only* surface
/// ([`decide`](Self::decide), [`worth_compressing`](Self::worth_compressing),
/// [`rules`](Self::rules)); mutable per-caller state — the circuit
/// breaker and the simulator — is passed in explicitly where needed
/// ([`exchange_resilient`](Self::exchange_resilient)), which is what
/// lets many workers drive exchanges off one snapshot without locking.
///
/// ```
/// use dnacomp_core::{Context, ContextAwareFramework, FrameworkHandle, LabeledRow};
/// use dnacomp_algos::Algorithm;
/// use dnacomp_ml::TreeMethod;
/// let rows: Vec<LabeledRow> = (0..60).map(|i| LabeledRow {
///     file: format!("f{i}"),
///     file_bytes: 1_000 + i * 10_000,
///     ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///     winner: if i < 30 { Algorithm::GenCompress } else { Algorithm::Dnax },
///     score: 0.0,
/// }).collect();
/// let handle = FrameworkHandle::new(ContextAwareFramework::train(&rows, TreeMethod::Cart));
/// let clone = handle.clone(); // shares the snapshot, no retrain
/// let ctx = Context { ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///                     file_bytes: 50_000 };
/// assert_eq!(handle.decide(&ctx), clone.decide(&ctx));
/// ```
#[derive(Clone)]
pub struct FrameworkHandle {
    inner: Arc<ContextAwareFramework>,
}

impl FrameworkHandle {
    /// Wrap a trained framework in a shareable snapshot.
    pub fn new(framework: ContextAwareFramework) -> Self {
        FrameworkHandle {
            inner: Arc::new(framework),
        }
    }

    /// The Inference Engine: pick the algorithm for a context.
    pub fn decide(&self, ctx: &Context) -> Algorithm {
        self.inner.decide(ctx)
    }

    /// The paper's first question: is compressing worth it at all?
    pub fn worth_compressing(&self, ctx: &Context, perf: &PerfModel) -> bool {
        self.inner.worth_compressing(ctx, perf)
    }

    /// Human-readable rules of the shared snapshot.
    pub fn rules(&self) -> Vec<String> {
        self.inner.rules()
    }

    /// Accuracy of the snapshot's decisions against labelled rows.
    pub fn evaluate(&self, rows: &[LabeledRow]) -> f64 {
        self.inner.evaluate(rows)
    }

    /// Resilient exchange off the shared snapshot, with the caller's
    /// own breaker and simulator (see [`run_ladder`]).
    pub fn exchange_resilient(
        &self,
        breaker: &mut CircuitBreaker,
        sim: &mut CloudSim,
        ctx: &Context,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<(Algorithm, ExchangeReport), ExchangeError> {
        run_ladder(self.decide(ctx), breaker, sim, ctx, file, seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeler::LabeledRow;

    /// Synthetic labelled rows with a crisp rule: small files →
    /// GenCompress, large → DNAX (the paper's headline pattern).
    fn synthetic_rows() -> Vec<LabeledRow> {
        let mut rows = Vec::new();
        for i in 0..200 {
            let kb = 1.0 + (i as f64) * 5.0;
            rows.push(LabeledRow {
                file: format!("f{i}"),
                file_bytes: (kb * 1024.0) as u64,
                ram_mb: [1024u32, 4096][i % 2],
                cpu_mhz: [1600u32, 2800][(i / 2) % 2],
                bandwidth_mbps: 2.0,
                winner: if kb < 250.0 {
                    Algorithm::GenCompress
                } else {
                    Algorithm::Dnax
                },
                score: 0.0,
            });
        }
        rows
    }

    #[test]
    fn learns_the_size_rule_with_both_methods() {
        let rows = synthetic_rows();
        for method in [TreeMethod::Cart, TreeMethod::Chaid] {
            let fw = ContextAwareFramework::train(&rows, method);
            let acc = fw.evaluate(&rows);
            assert!(acc > 0.9, "{method} accuracy {acc}");
            let small = Context {
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                file_bytes: 10 * 1024,
            };
            let large = Context {
                file_bytes: 900 * 1024,
                ..small.clone()
            };
            assert_eq!(fw.decide(&small), Algorithm::GenCompress, "{method}");
            assert_eq!(fw.decide(&large), Algorithm::Dnax, "{method}");
        }
    }

    #[test]
    fn rules_are_renderable() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let rules = fw.rules();
        assert!(!rules.is_empty());
        assert!(rules.iter().any(|r| r.contains("file_kb")));
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        assert_eq!(fw.evaluate(&[]), 0.0);
    }

    #[test]
    fn worth_compressing_typical_context() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let perf = PerfModel::default();
        // Slow link, decent CPU, sizeable file: compression pays.
        let ctx = Context {
            ram_mb: 4096,
            cpu_mhz: 2800,
            bandwidth_mbps: 2.0,
            file_bytes: 2_000_000,
        };
        assert!(fw.worth_compressing(&ctx, &perf));
    }

    #[test]
    fn model_persistence_roundtrip() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let json = fw.to_json().unwrap();
        let back = ContextAwareFramework::from_json(&json).unwrap();
        // Same decisions over a sweep of contexts.
        for kb in [1u64, 10, 100, 400, 900] {
            let ctx = Context {
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                file_bytes: kb * 1024,
            };
            assert_eq!(fw.decide(&ctx), back.decide(&ctx), "{kb} kB");
        }
        assert!(ContextAwareFramework::from_json("{broken").is_err());
    }

    #[test]
    fn end_to_end_exchange() {
        use dnacomp_seq::gen::GenomeModel;
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(20_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let (alg, report) = fw.exchange(&mut sim, &ctx, "f", &seq).unwrap();
        assert_eq!(alg, Algorithm::GenCompress); // 20 kB < 250 kB rule
        assert_eq!(report.algorithm, alg);
        assert!(report.total_ms() > 0.0);
    }

    #[test]
    fn handle_shares_one_snapshot_across_threads() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let ctx = Context {
            ram_mb: 2048,
            cpu_mhz: 2000,
            bandwidth_mbps: 2.0,
            file_bytes: 10 * 1024,
        };
        let expected = fw.decide(&ctx);
        let handle = FrameworkHandle::new(fw);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                let c = ctx.clone();
                std::thread::spawn(move || h.decide(&c))
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), expected);
        }
    }

    #[test]
    fn handle_ladder_matches_owned_resilient_exchange() {
        use dnacomp_cloud::{BlobStore, FaultPlan};
        use dnacomp_seq::gen::GenomeModel;
        let mut fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let seq = GenomeModel::default().generate(20_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let sim = || CloudSim {
            store: BlobStore::with_block_bytes(256),
            faults: FaultPlan::uniform(11, 0.2),
            ..CloudSim::default()
        };
        let owned = fw.exchange_resilient(&mut sim(), &ctx, "f", &seq);
        let handle = FrameworkHandle::new(ContextAwareFramework::train(
            &synthetic_rows(),
            TreeMethod::Cart,
        ));
        let mut breaker = CircuitBreaker::default();
        let external = handle.exchange_resilient(&mut breaker, &mut sim(), &ctx, "f", &seq);
        match (owned, external) {
            (Ok((a1, r1)), Ok((a2, r2))) => {
                assert_eq!(a1, a2);
                assert_eq!(r1, r2);
            }
            (Err(_), Err(_)) => {}
            (a, b) => panic!("diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn breaker_opens_after_threshold_and_resets_on_success() {
        let mut b = CircuitBreaker::default();
        assert!(!b.is_open(Algorithm::Dnax));
        for _ in 0..3 {
            assert!(!b.is_open(Algorithm::Dnax));
            b.record_failure(Algorithm::Dnax);
        }
        assert!(b.is_open(Algorithm::Dnax));
        assert_eq!(b.failures(Algorithm::Dnax), 3);
        // Other algorithms are independent.
        assert!(!b.is_open(Algorithm::Gzip));
        b.record_success(Algorithm::Dnax);
        assert!(!b.is_open(Algorithm::Dnax));
        assert_eq!(b.failures(Algorithm::Dnax), 0);
    }

    #[test]
    fn resilient_exchange_is_plain_when_fault_free() {
        use dnacomp_seq::gen::GenomeModel;
        let mut fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(20_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let (alg, report) = fw.exchange_resilient(&mut sim, &ctx, "f", &seq).unwrap();
        assert_eq!(alg, fw.decide(&ctx));
        assert!(report.degraded_from.is_empty());
        assert_eq!(report.retries, 0);
        assert_eq!(report.wasted_ms, 0.0);
    }

    #[test]
    fn resilient_exchange_degrades_down_the_ladder() {
        use dnacomp_cloud::{BlobStore, FaultPlan};
        use dnacomp_seq::gen::GenomeModel;
        let mut fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let seq = GenomeModel::default().generate(20_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let chosen = fw.decide(&ctx);
        let mut saw_degrade = false;
        for seed in 0..40u64 {
            let mut sim = CloudSim {
                store: BlobStore::with_block_bytes(256),
                faults: FaultPlan::uniform(seed, 0.35),
                ..CloudSim::default()
            };
            // A typed failure is an acceptable outcome; a success must
            // tell the truth about how it was reached.
            if let Ok((alg, report)) = fw.exchange_resilient(&mut sim, &ctx, "f", &seq) {
                assert_eq!(report.algorithm, alg);
                if !report.degraded_from.is_empty() {
                    saw_degrade = true;
                    // The abandoned chain starts at the first choice
                    // and never contains the algorithm that won.
                    assert_eq!(report.degraded_from[0], chosen);
                    assert!(!report.degraded_from.contains(&alg));
                }
            }
        }
        assert!(saw_degrade, "no degradation observed across 40 seeds");
    }

    #[test]
    fn resilient_exchange_fails_typed_when_everything_fails() {
        use dnacomp_cloud::{BlobStore, ExchangeError, FaultPlan};
        use dnacomp_seq::gen::GenomeModel;
        let mut fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let mut sim = CloudSim {
            store: BlobStore::with_block_bytes(256),
            faults: FaultPlan {
                seed: 9,
                upload_fail_rate: 1.0,
                ..FaultPlan::none()
            },
            ..CloudSim::default()
        };
        let seq = GenomeModel::default().generate(10_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let err = fw.exchange_resilient(&mut sim, &ctx, "f", &seq).unwrap_err();
        assert!(matches!(err, ExchangeError::UploadFailed { .. }));
        // Every rung of the ladder took a breaker hit.
        assert_eq!(fw.breaker().failures(fw.decide(&ctx)), 1);
        assert_eq!(fw.breaker().failures(Algorithm::Gzip), 1);
        assert_eq!(fw.breaker().failures(Algorithm::Raw), 1);
    }
}
