//! The deployed framework of Figure 7.
//!
//! Components, as the paper names them: the **Context Gatherer**
//! (collects resources — [`crate::context`]), the **Inference Engine**
//! ("decides which algorithm should be chosen for compression" — the
//! learned decision tree), and the **Compressor**. The framework answers
//! the paper's two framing questions (§I):
//!
//! 1. *whether it is crucial to compress* the sequence at all, and
//! 2. *which algorithm should be used*.

use crate::context::Context;
use crate::dataset::{build_dataset, class_to_algorithm};
use crate::labeler::LabeledRow;
use dnacomp_algos::{compressor_for, Algorithm};
use dnacomp_cloud::{CloudSim, ExchangeReport, PerfModel};
use dnacomp_codec::CodecError;
use dnacomp_ml::{accuracy, CartParams, ChaidParams, Dataset, DecisionTree, TreeMethod, Value};
use dnacomp_seq::PackedSeq;

/// The trained context-aware selection framework.
///
/// ```
/// use dnacomp_core::{Context, ContextAwareFramework, LabeledRow};
/// use dnacomp_algos::Algorithm;
/// use dnacomp_ml::TreeMethod;
/// // Labelled rows normally come from the measurement grid; a crisp
/// // synthetic rule suffices to demonstrate the API.
/// let rows: Vec<LabeledRow> = (0..60).map(|i| LabeledRow {
///     file: format!("f{i}"),
///     file_bytes: 1_000 + i * 10_000,
///     ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///     winner: if i < 30 { Algorithm::GenCompress } else { Algorithm::Dnax },
///     score: 0.0,
/// }).collect();
/// let fw = ContextAwareFramework::train(&rows, TreeMethod::Cart);
/// let small = Context { ram_mb: 2048, cpu_mhz: 2393, bandwidth_mbps: 2.0,
///                       file_bytes: 50_000 };
/// assert_eq!(fw.decide(&small), Algorithm::GenCompress);
/// ```
#[derive(serde::Serialize, serde::Deserialize)]
pub struct ContextAwareFramework {
    tree: DecisionTree,
    /// Dataset schema used at training time (for class mapping).
    schema: Dataset,
    /// Fallback when the tree's prediction cannot be mapped.
    fallback: Algorithm,
}

impl ContextAwareFramework {
    /// Train from labelled rows with the given method and default
    /// parameters.
    pub fn train(rows: &[LabeledRow], method: TreeMethod) -> Self {
        let data = build_dataset(rows, &Algorithm::PAPER);
        let tree = match method {
            TreeMethod::Cart => dnacomp_ml::cart::train_cart(&data, &CartParams::default()),
            TreeMethod::Chaid => dnacomp_ml::chaid::train_chaid(&data, &ChaidParams::default()),
        };
        let mut schema = data;
        schema.rows.clear();
        ContextAwareFramework {
            tree,
            schema,
            fallback: Algorithm::Dnax,
        }
    }

    /// The learned tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Serialise the trained model (rules + schema) to JSON — the
    /// persisted "rules" the Figure-7 deployment reads at startup.
    pub fn to_json(&self) -> Result<String, CodecError> {
        serde_json::to_string(self).map_err(|_| CodecError::Corrupt("framework serialisation"))
    }

    /// Load a model previously saved with
    /// [`ContextAwareFramework::to_json`].
    pub fn from_json(json: &str) -> Result<Self, CodecError> {
        serde_json::from_str(json).map_err(|_| CodecError::Corrupt("framework deserialisation"))
    }

    /// Human-readable rules (Figure 7: "the rules available").
    pub fn rules(&self) -> Vec<String> {
        self.tree.rules()
    }

    /// The Inference Engine: pick the algorithm for a context.
    pub fn decide(&self, ctx: &Context) -> Algorithm {
        let values = [
            Value::Num(ctx.file_kb()),
            Value::Num(ctx.ram_mb as f64),
            Value::Num(ctx.cpu_mhz as f64),
            Value::Num(ctx.bandwidth_mbps),
        ];
        let class = self.tree.predict(&values);
        class_to_algorithm(&self.schema, class).unwrap_or(self.fallback)
    }

    /// The paper's first question: is compressing worth it at all?
    ///
    /// Compares the estimated exchange cost of shipping raw against
    /// compressing with the context's chosen algorithm (assuming a
    /// typical DNA ratio), using the same performance model that prices
    /// the simulator. On very fast links with slow CPUs, raw wins.
    pub fn worth_compressing(&self, ctx: &Context, perf: &PerfModel) -> bool {
        let client = ctx.client();
        let n = ctx.file_bytes as usize;
        let alg = self.decide(ctx);
        // Raw path: upload the uncompressed file.
        let raw_ms = perf.upload_ms(&client, alg, "raw", n, 0);
        // Compressed path: estimated compress cost + upload of ~0.25×.
        // Work/base estimates mirror each port's measured meter rates.
        let work_per_base: u64 = match alg {
            Algorithm::Dnax => 10,
            Algorithm::Ctw => 36,
            Algorithm::GenCompress => 14,
            Algorithm::Gzip => 11,
            Algorithm::BioCompress2 => 9,
            Algorithm::DnaPackLite => 7,
            Algorithm::Cfact => 40,
            Algorithm::XmLite => 36,
            Algorithm::Reference => 6,
            Algorithm::Dnac => 42,
            Algorithm::DnaCompress => 12,
            Algorithm::DnaSequitur => 20,
            Algorithm::CtwLz => 40,
        };
        let est_stats = dnacomp_algos::ResourceStats {
            work_units: n as u64 * work_per_base,
            peak_heap_bytes: n as u64 * 16,
        };
        let comp_ms = perf.compress_ms(&client, alg, "raw", &est_stats);
        let up_ms = perf.upload_ms(&client, alg, "raw", n / 4, est_stats.peak_heap_bytes);
        comp_ms + up_ms < raw_ms
    }

    /// Accuracy of the framework's decisions against labelled rows —
    /// the paper's `Cases Matched / TotalCases`.
    pub fn evaluate(&self, rows: &[LabeledRow]) -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        let preds: Vec<Algorithm> = rows
            .iter()
            .map(|r| {
                self.decide(&Context {
                    ram_mb: r.ram_mb,
                    cpu_mhz: r.cpu_mhz,
                    bandwidth_mbps: r.bandwidth_mbps,
                    file_bytes: r.file_bytes,
                })
            })
            .collect();
        let pred_ids: Vec<u32> = preds.iter().map(|a| a.tag() as u32).collect();
        let label_ids: Vec<u32> = rows.iter().map(|r| r.winner.tag() as u32).collect();
        accuracy(&pred_ids, &label_ids)
    }

    /// Full Figure-7 exchange: gather → infer → compress → upload →
    /// download → decompress, on the simulator.
    pub fn exchange(
        &self,
        sim: &mut CloudSim,
        ctx: &Context,
        file: &str,
        seq: &PackedSeq,
    ) -> Result<(Algorithm, ExchangeReport), CodecError> {
        let alg = self.decide(ctx);
        let compressor = compressor_for(alg);
        let report = sim.exchange(&ctx.client(), compressor.as_ref(), file, seq)?;
        Ok((alg, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeler::LabeledRow;

    /// Synthetic labelled rows with a crisp rule: small files →
    /// GenCompress, large → DNAX (the paper's headline pattern).
    fn synthetic_rows() -> Vec<LabeledRow> {
        let mut rows = Vec::new();
        for i in 0..200 {
            let kb = 1.0 + (i as f64) * 5.0;
            rows.push(LabeledRow {
                file: format!("f{i}"),
                file_bytes: (kb * 1024.0) as u64,
                ram_mb: [1024u32, 4096][i % 2],
                cpu_mhz: [1600u32, 2800][(i / 2) % 2],
                bandwidth_mbps: 2.0,
                winner: if kb < 250.0 {
                    Algorithm::GenCompress
                } else {
                    Algorithm::Dnax
                },
                score: 0.0,
            });
        }
        rows
    }

    #[test]
    fn learns_the_size_rule_with_both_methods() {
        let rows = synthetic_rows();
        for method in [TreeMethod::Cart, TreeMethod::Chaid] {
            let fw = ContextAwareFramework::train(&rows, method);
            let acc = fw.evaluate(&rows);
            assert!(acc > 0.9, "{method} accuracy {acc}");
            let small = Context {
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                file_bytes: 10 * 1024,
            };
            let large = Context {
                file_bytes: 900 * 1024,
                ..small.clone()
            };
            assert_eq!(fw.decide(&small), Algorithm::GenCompress, "{method}");
            assert_eq!(fw.decide(&large), Algorithm::Dnax, "{method}");
        }
    }

    #[test]
    fn rules_are_renderable() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let rules = fw.rules();
        assert!(!rules.is_empty());
        assert!(rules.iter().any(|r| r.contains("file_kb")));
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        assert_eq!(fw.evaluate(&[]), 0.0);
    }

    #[test]
    fn worth_compressing_typical_context() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let perf = PerfModel::default();
        // Slow link, decent CPU, sizeable file: compression pays.
        let ctx = Context {
            ram_mb: 4096,
            cpu_mhz: 2800,
            bandwidth_mbps: 2.0,
            file_bytes: 2_000_000,
        };
        assert!(fw.worth_compressing(&ctx, &perf));
    }

    #[test]
    fn model_persistence_roundtrip() {
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let json = fw.to_json().unwrap();
        let back = ContextAwareFramework::from_json(&json).unwrap();
        // Same decisions over a sweep of contexts.
        for kb in [1u64, 10, 100, 400, 900] {
            let ctx = Context {
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                file_bytes: kb * 1024,
            };
            assert_eq!(fw.decide(&ctx), back.decide(&ctx), "{kb} kB");
        }
        assert!(ContextAwareFramework::from_json("{broken").is_err());
    }

    #[test]
    fn end_to_end_exchange() {
        use dnacomp_seq::gen::GenomeModel;
        let fw = ContextAwareFramework::train(&synthetic_rows(), TreeMethod::Cart);
        let mut sim = CloudSim::default();
        let seq = GenomeModel::default().generate(20_000, 3);
        let ctx = Context {
            ram_mb: 3072,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            file_bytes: seq.len() as u64,
        };
        let (alg, report) = fw.exchange(&mut sim, &ctx, "f", &seq).unwrap();
        assert_eq!(alg, Algorithm::GenCompress); // 20 kB < 250 kB rule
        assert_eq!(report.algorithm, alg);
        assert!(report.total_ms() > 0.0);
    }
}
