//! From labelled rows to an ML dataset.
//!
//! Features are the paper's context variables — file size, RAM, CPU
//! speed, bandwidth — and the class is the winning algorithm.

use crate::labeler::LabeledRow;
use dnacomp_algos::Algorithm;
use dnacomp_ml::{Dataset, Feature, FeatureKind, Value};

/// Column order of the built dataset.
pub const FEATURE_NAMES: [&str; 4] = ["file_kb", "ram_mb", "cpu_mhz", "bandwidth_mbps"];

/// Build a classification dataset from labelled rows. Classes cover all
/// algorithms that appear (plus any in `force_classes`, so train and
/// test sets share one class space).
pub fn build_dataset(rows: &[LabeledRow], force_classes: &[Algorithm]) -> Dataset {
    let mut classes: Vec<Algorithm> = force_classes.to_vec();
    for r in rows {
        if !classes.contains(&r.winner) {
            classes.push(r.winner);
        }
    }
    classes.sort();
    let features = FEATURE_NAMES
        .iter()
        .map(|&name| Feature {
            name: name.to_owned(),
            kind: FeatureKind::Continuous,
        })
        .collect();
    let mut data = Dataset::new(
        features,
        classes.iter().map(|a| a.name().to_owned()).collect(),
    );
    for r in rows {
        let label = classes
            .iter()
            .position(|&a| a == r.winner)
            .expect("winner registered above") as u32;
        data.push(
            vec![
                Value::Num(r.file_bytes as f64 / 1024.0),
                Value::Num(r.ram_mb as f64),
                Value::Num(r.cpu_mhz as f64),
                Value::Num(r.bandwidth_mbps),
            ],
            label,
        );
    }
    data
}

/// Map a predicted class id back to an algorithm.
pub fn class_to_algorithm(data: &Dataset, class: u32) -> Option<Algorithm> {
    data.classes
        .get(class as usize)
        .and_then(|n| Algorithm::from_name(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(file_kb: f64, winner: Algorithm) -> LabeledRow {
        LabeledRow {
            file: "f".into(),
            file_bytes: (file_kb * 1024.0) as u64,
            ram_mb: 2048,
            cpu_mhz: 2000,
            bandwidth_mbps: 2.0,
            winner,
            score: 0.0,
        }
    }

    #[test]
    fn builds_schema_and_rows() {
        let rows = vec![
            labeled(10.0, Algorithm::GenCompress),
            labeled(500.0, Algorithm::Dnax),
        ];
        let d = build_dataset(&rows, &Algorithm::PAPER);
        assert_eq!(d.features.len(), 4);
        assert_eq!(d.classes.len(), 4);
        assert_eq!(d.rows.len(), 2);
        // Class set sorted by algorithm tag order.
        assert_eq!(d.classes, vec!["Gzip", "CTW", "GenCompress", "DNAX"]);
    }

    #[test]
    fn labels_map_back() {
        let rows = vec![labeled(10.0, Algorithm::Dnax)];
        let d = build_dataset(&rows, &Algorithm::PAPER);
        let label = d.rows[0].label;
        assert_eq!(class_to_algorithm(&d, label), Some(Algorithm::Dnax));
    }

    #[test]
    fn unseen_winner_extends_classes() {
        let rows = vec![labeled(10.0, Algorithm::BioCompress2)];
        let d = build_dataset(&rows, &Algorithm::PAPER);
        assert_eq!(d.classes.len(), 5);
        assert!(d.classes.contains(&"BioCompress2".to_owned()));
    }

    #[test]
    fn feature_values_in_order() {
        let rows = vec![labeled(50.0, Algorithm::Ctw)];
        let d = build_dataset(&rows, &[]);
        let v = &d.rows[0].values;
        assert_eq!(v[0], Value::Num(50.0));
        assert_eq!(v[1], Value::Num(2048.0));
        assert_eq!(v[2], Value::Num(2000.0));
        assert_eq!(v[3], Value::Num(2.0));
    }
}
