//! Labelling the training data (§IV-C, Eq. 1).
//!
//! *"Labeling is actually deciding which algorithm is good in a given
//! context. … Using [Eq. 1], label were assigned based on which
//! algorithm is giving less value for this equation."*
//!
//! The four time components are commensurable (all milliseconds), so the
//! time part of Eq. 1 is the *raw* weighted sum — exactly "the algorithm
//! which minimizes the overall time is the winner" (§I). RAM (bytes)
//! lives on a different scale; when a weight vector mixes RAM with time
//! (Table 2's "RAM : TIME 60:40" rows), both aggregates are normalised
//! by their cell maximum before combining, so the ratio of the weights is
//! what matters.

use crate::experiment::ExperimentRow;
use dnacomp_algos::Algorithm;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The five cost components of Eq. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Client-side compression time.
    CompressTime,
    /// Cloud-side decompression time.
    DecompressTime,
    /// Upload time.
    UploadTime,
    /// Download time.
    DownloadTime,
    /// Observed RAM.
    RamUsed,
}

impl Metric {
    /// All metrics, Eq.-1 order.
    pub const ALL: [Metric; 5] = [
        Metric::CompressTime,
        Metric::DecompressTime,
        Metric::UploadTime,
        Metric::DownloadTime,
        Metric::RamUsed,
    ];

    /// Extract the metric value from a row.
    pub fn of(self, row: &ExperimentRow) -> f64 {
        match self {
            Metric::CompressTime => row.compress_ms,
            Metric::DecompressTime => row.decompress_ms,
            Metric::UploadTime => row.upload_ms,
            Metric::DownloadTime => row.download_ms,
            Metric::RamUsed => row.ram_used_bytes as f64,
        }
    }
}

/// Weights of Eq. 1. They need not sum to 1; only ratios matter.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WeightVector {
    /// Weight of compression time.
    pub compress: f64,
    /// Weight of decompression time.
    pub decompress: f64,
    /// Weight of upload time.
    pub upload: f64,
    /// Weight of download time.
    pub download: f64,
    /// Weight of observed RAM.
    pub ram: f64,
}

impl WeightVector {
    /// Eq. 1 with equal weights on the four times, no RAM — the paper's
    /// "TIME (100 % weight)" configuration.
    pub fn time_only() -> Self {
        WeightVector {
            compress: 0.25,
            decompress: 0.25,
            upload: 0.25,
            download: 0.25,
            ram: 0.0,
        }
    }

    /// "RAM (100 %)".
    pub fn ram_only() -> Self {
        WeightVector {
            compress: 0.0,
            decompress: 0.0,
            upload: 0.0,
            download: 0.0,
            ram: 1.0,
        }
    }

    /// "Compression Time (100 %)".
    pub fn compress_time_only() -> Self {
        WeightVector {
            compress: 1.0,
            decompress: 0.0,
            upload: 0.0,
            download: 0.0,
            ram: 0.0,
        }
    }

    /// Table 2's `RAM:TIME` rows — `ram_pct : time_pct`, the time share
    /// split equally over the four time components.
    pub fn ram_time(ram_pct: f64, time_pct: f64) -> Self {
        WeightVector {
            compress: time_pct / 4.0,
            decompress: time_pct / 4.0,
            upload: time_pct / 4.0,
            download: time_pct / 4.0,
            ram: ram_pct,
        }
    }

    /// Table 2's `RAM : CompressionTime` rows.
    pub fn ram_compress(ram_pct: f64, comp_pct: f64) -> Self {
        WeightVector {
            compress: comp_pct,
            decompress: 0.0,
            upload: 0.0,
            download: 0.0,
            ram: ram_pct,
        }
    }

    /// Table 2's `RAM : CompressionTime : UploadTime` rows.
    pub fn ram_compress_upload(ram_pct: f64, comp_pct: f64, up_pct: f64) -> Self {
        WeightVector {
            compress: comp_pct,
            decompress: 0.0,
            upload: up_pct,
            download: 0.0,
            ram: ram_pct,
        }
    }

    /// The weight of one Eq.-1 component.
    pub fn weight(&self, m: Metric) -> f64 {
        match m {
            Metric::CompressTime => self.compress,
            Metric::DecompressTime => self.decompress,
            Metric::UploadTime => self.upload,
            Metric::DownloadTime => self.download,
            Metric::RamUsed => self.ram,
        }
    }
}

/// How Eq. 1 combines metrics of different units.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Normalization {
    /// The paper's literal Eq. 1: raw milliseconds plus raw bytes. RAM
    /// (≈10⁷ bytes) numerically dwarfs times (≈10³ ms), so any nonzero
    /// RAM weight makes the label RAM-driven — which is exactly why the
    /// paper's mixed-weight rows in Table 2 all score close to its
    /// RAM-only rows. Default, for fidelity.
    #[default]
    RawEq1,
    /// Improved combination (the paper's future work: "improve the
    /// Eq. 1"): time aggregate and RAM are each normalised by their cell
    /// maximum before weighting, so the RAM:TIME ratio is meaningful.
    MaxNormalized,
}

/// A labelled (file, context) cell: the context features plus the
/// winning algorithm.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabeledRow {
    /// File name.
    pub file: String,
    /// Raw file size, bytes.
    pub file_bytes: u64,
    /// Client RAM, MB.
    pub ram_mb: u32,
    /// Client CPU, MHz.
    pub cpu_mhz: u32,
    /// Bandwidth, Mbit/s.
    pub bandwidth_mbps: f64,
    /// The algorithm minimising Eq. 1 in this cell.
    pub winner: Algorithm,
    /// Eq.-1 score of the winner (normalised units).
    pub score: f64,
}

/// Group experiment rows by (file, context) and label each group with
/// the Eq.-1 winner under [`Normalization::RawEq1`]. Rows must contain
/// every algorithm for every cell.
pub fn label_rows(rows: &[ExperimentRow], weights: &WeightVector) -> Vec<LabeledRow> {
    label_rows_with(rows, weights, Normalization::RawEq1)
}

/// [`label_rows`] with an explicit unit-combination scheme.
pub fn label_rows_with(
    rows: &[ExperimentRow],
    weights: &WeightVector,
    norm: Normalization,
) -> Vec<LabeledRow> {
    // BTreeMap keeps deterministic output order.
    let mut cells: BTreeMap<(String, u32, u32, u64), Vec<&ExperimentRow>> = BTreeMap::new();
    for r in rows {
        cells
            .entry((
                r.file.clone(),
                r.ram_mb,
                r.cpu_mhz,
                (r.bandwidth_mbps * 1000.0) as u64,
            ))
            .or_default()
            .push(r);
    }
    let mut out = Vec::with_capacity(cells.len());
    for ((file, ram_mb, cpu_mhz, bw_milli), group) in cells {
        debug_assert!(group.len() >= 2, "cell with fewer than two algorithms");
        // Time aggregate: raw weighted milliseconds (Eq. 1).
        let w_time_total =
            weights.compress + weights.decompress + weights.upload + weights.download;
        let time_agg: Vec<f64> = group
            .iter()
            .map(|r| {
                weights.compress * r.compress_ms
                    + weights.decompress * r.decompress_ms
                    + weights.upload * r.upload_ms
                    + weights.download * r.download_ms
            })
            .collect();
        let scores: Vec<f64> = if weights.ram == 0.0 {
            // Pure time: argmin of the raw weighted time.
            time_agg.clone()
        } else if w_time_total == 0.0 {
            // Pure RAM.
            group.iter().map(|r| r.ram_used_bytes as f64).collect()
        } else {
            match norm {
                Normalization::RawEq1 => group
                    .iter()
                    .zip(&time_agg)
                    .map(|(r, &t)| t + weights.ram * r.ram_used_bytes as f64)
                    .collect(),
                Normalization::MaxNormalized => {
                    let t_max = time_agg.iter().copied().fold(f64::EPSILON, f64::max);
                    let r_max = group
                        .iter()
                        .map(|r| r.ram_used_bytes as f64)
                        .fold(f64::EPSILON, f64::max);
                    group
                        .iter()
                        .zip(&time_agg)
                        .map(|(r, &t)| {
                            w_time_total * (t / t_max)
                                + weights.ram * (r.ram_used_bytes as f64 / r_max)
                        })
                        .collect()
                }
            }
        };
        let (best, score) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &s)| (i, s))
            .expect("non-empty cell");
        out.push(LabeledRow {
            file,
            file_bytes: group[best].file_bytes,
            ram_mb,
            cpu_mhz,
            bandwidth_mbps: bw_milli as f64 / 1000.0,
            winner: group[best].algorithm,
            score,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(alg: Algorithm, comp: f64, up: f64, ram: u64) -> ExperimentRow {
        ExperimentRow {
            file: "f".into(),
            file_bytes: 1000,
            ram_mb: 2048,
            cpu_mhz: 2000,
            bandwidth_mbps: 2.0,
            algorithm: alg,
            compressed_bytes: 100,
            compress_ms: comp,
            decompress_ms: 10.0,
            upload_ms: up,
            download_ms: 5.0,
            ram_used_bytes: ram,
        }
    }

    #[test]
    fn time_only_picks_fastest_total() {
        let rows = vec![
            row(Algorithm::Dnax, 100.0, 50.0, 999_999),
            row(Algorithm::Gzip, 400.0, 80.0, 1),
        ];
        let labeled = label_rows(&rows, &WeightVector::time_only());
        assert_eq!(labeled.len(), 1);
        assert_eq!(labeled[0].winner, Algorithm::Dnax);
    }

    #[test]
    fn ram_only_picks_smallest_ram() {
        let rows = vec![
            row(Algorithm::Dnax, 100.0, 50.0, 999_999),
            row(Algorithm::Gzip, 400.0, 80.0, 1),
        ];
        let labeled = label_rows(&rows, &WeightVector::ram_only());
        assert_eq!(labeled[0].winner, Algorithm::Gzip);
    }

    #[test]
    fn mixed_weights_interpolate_when_normalized() {
        // DNAX much faster; Gzip much lighter. Under the improved Eq. 1
        // a heavy RAM weight flips the winner.
        let rows = vec![
            row(Algorithm::Dnax, 100.0, 50.0, 1_000_000),
            row(Algorithm::Gzip, 150.0, 60.0, 100_000),
        ];
        let time_win = label_rows_with(
            &rows,
            &WeightVector::ram_time(10.0, 90.0),
            Normalization::MaxNormalized,
        );
        assert_eq!(time_win[0].winner, Algorithm::Dnax);
        let ram_win = label_rows_with(
            &rows,
            &WeightVector::ram_time(90.0, 10.0),
            Normalization::MaxNormalized,
        );
        assert_eq!(ram_win[0].winner, Algorithm::Gzip);
    }

    #[test]
    fn raw_eq1_is_ram_dominated_when_mixed() {
        // The paper's literal Eq. 1 sums ms and bytes: RAM numerically
        // dominates any mixed weighting (the Table 2 signature).
        let rows = vec![
            row(Algorithm::Dnax, 100.0, 50.0, 1_000_000),
            row(Algorithm::Gzip, 150.0, 60.0, 100_000),
        ];
        for (ram_w, time_w) in [(10.0, 90.0), (50.0, 50.0), (90.0, 10.0)] {
            let l = label_rows(&rows, &WeightVector::ram_time(ram_w, time_w));
            assert_eq!(l[0].winner, Algorithm::Gzip, "ram:{ram_w} time:{time_w}");
        }
    }

    #[test]
    fn cells_are_grouped_per_context() {
        let mut rows = vec![
            row(Algorithm::Dnax, 1.0, 1.0, 10),
            row(Algorithm::Gzip, 2.0, 2.0, 20),
        ];
        let mut other = vec![
            row(Algorithm::Dnax, 5.0, 5.0, 50),
            row(Algorithm::Gzip, 1.0, 1.0, 5),
        ];
        for r in &mut other {
            r.cpu_mhz = 2800;
        }
        rows.extend(other);
        let labeled = label_rows(&rows, &WeightVector::time_only());
        assert_eq!(labeled.len(), 2);
        let winners: Vec<Algorithm> = labeled.iter().map(|l| l.winner).collect();
        assert!(winners.contains(&Algorithm::Dnax));
        assert!(winners.contains(&Algorithm::Gzip));
    }

    #[test]
    fn ties_are_deterministic() {
        let rows = vec![
            row(Algorithm::Dnax, 1.0, 1.0, 10),
            row(Algorithm::Gzip, 1.0, 1.0, 10),
        ];
        let a = label_rows(&rows, &WeightVector::time_only());
        let b = label_rows(&rows, &WeightVector::time_only());
        assert_eq!(a, b);
    }

    #[test]
    fn preset_weights_shape() {
        let w = WeightVector::time_only();
        assert_eq!(w.ram, 0.0);
        assert!((w.compress + w.decompress + w.upload + w.download - 1.0).abs() < 1e-12);
        let w = WeightVector::ram_compress_upload(33.0, 33.0, 33.0);
        assert_eq!(w.decompress, 0.0);
        assert_eq!(w.download, 0.0);
    }
}
