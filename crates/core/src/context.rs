//! The context the framework decides on.

use dnacomp_cloud::{BandwidthMbps, ClientContext};
use serde::{Deserialize, Serialize};

/// Everything the Inference Engine sees before choosing an algorithm
/// (§IV-D: "Size of file, Algorithm, Bandwidth, CPU Speed, and Memory
/// Available" — the algorithm is the *output*, the rest is the input).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Context {
    /// RAM available on the client, MB.
    pub ram_mb: u32,
    /// Client CPU clock, MHz.
    pub cpu_mhz: u32,
    /// Uplink bandwidth, Mbit/s.
    pub bandwidth_mbps: f64,
    /// File size in bytes (1 byte per base for raw NCBI-style files).
    pub file_bytes: u64,
}

impl Context {
    /// Build from a machine context plus the file to ship.
    pub fn new(client: &ClientContext, file_bytes: u64) -> Self {
        Context {
            ram_mb: client.ram_mb,
            cpu_mhz: client.cpu_mhz,
            bandwidth_mbps: client.bandwidth.0,
            file_bytes,
        }
    }

    /// The machine part of the context.
    pub fn client(&self) -> ClientContext {
        ClientContext {
            ram_mb: self.ram_mb,
            cpu_mhz: self.cpu_mhz,
            bandwidth: BandwidthMbps(self.bandwidth_mbps),
        }
    }

    /// File size in kB — the unit the paper's rules are phrased in
    /// ("if the file size is less than 50kb…").
    pub fn file_kb(&self) -> f64 {
        self.file_bytes as f64 / 1024.0
    }
}

/// The Context Gatherer of Figure 7: "collects the information regarding
/// the resources available". In the simulator the resources are supplied
/// by the experiment grid; a production deployment would probe the OS.
pub trait ContextGatherer {
    /// Gather the current context for a file of `file_bytes`.
    fn gather(&self, file_bytes: u64) -> Context;
}

/// A gatherer with fixed machine resources (the simulated VM).
#[derive(Clone, Debug)]
pub struct StaticGatherer {
    /// The machine context this gatherer reports.
    pub client: ClientContext,
}

impl ContextGatherer for StaticGatherer {
    fn gather(&self, file_bytes: u64) -> Context {
        Context::new(&self.client, file_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_client() {
        let c = ClientContext::new(2048, 2393, 10.0);
        let ctx = Context::new(&c, 51_200);
        assert_eq!(ctx.client(), c);
        assert!((ctx.file_kb() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn static_gatherer() {
        let g = StaticGatherer {
            client: ClientContext::new(1024, 1600, 2.0),
        };
        let ctx = g.gather(1000);
        assert_eq!(ctx.ram_mb, 1024);
        assert_eq!(ctx.file_bytes, 1000);
    }
}
