//! # dnacomp-core — the context-aware compression framework
//!
//! The paper's primary contribution (Figures 1 and 7): given a *context*
//! — available RAM, CPU speed, bandwidth and file size — choose the
//! compression algorithm that minimises the weighted exchange cost
//!
//! ```text
//! E = w·T_compress + w·T_decompress + w·T_upload + w·T_download + w·RAM
//! ```
//!
//! Pipeline, mirroring §IV–V:
//!
//! 1. [`experiment`] — run the measurement grid (corpus × 32 contexts ×
//!    algorithms) on the cloud simulator;
//! 2. [`labeler`] — label each (file, context) with the winning
//!    algorithm under a [`WeightVector`] (Table 2's weight combinations);
//! 3. [`dataset`] — turn labelled rows into an `dnacomp_ml::Dataset`;
//! 4. train CHAID/CART rules (`dnacomp_ml`), validate on the held-out
//!    25 %;
//! 5. [`framework`] — the deployed Figure-7 loop: Context Gatherer →
//!    Inference Engine (the learned rules) → Compressor → upload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod dataset;
pub mod experiment;
pub mod framework;
pub mod labeler;
pub mod supervise;

pub use context::Context;
pub use experiment::{build_rows, measure_corpus, ExperimentRow, Measurement};
pub use framework::{run_ladder, CircuitBreaker, ContextAwareFramework, FrameworkHandle};
pub use labeler::{label_rows, label_rows_with, LabeledRow, Metric, Normalization, WeightVector};
pub use supervise::{contain_panic, panic_message, Deadline};
