//! The measurement grid.
//!
//! §IV-A/§V: 132 files × 32 contexts × 4 algorithms. Compression and
//! decompression are *measured once* per (file, algorithm) — their work
//! and heap statistics do not depend on the client context — and the
//! context-dependent times are derived per context by the
//! [`PerfModel`]. This is exactly the separation the paper exploits
//! ("the size of the compressed file remains unchanged" across contexts,
//! §IV-A), and it makes the 16k-row grid cheap.

use dnacomp_algos::{Algorithm, Compressor, ResourceStats};
use dnacomp_cloud::{ClientContext, MachineSpec, PerfModel};
use dnacomp_codec::CodecError;
use dnacomp_seq::corpus::FileSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Context-independent measurement of one (file, algorithm) pair.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// File name.
    pub file: String,
    /// Original length in bases (= raw bytes).
    pub original_len: usize,
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Serialised blob size in bytes.
    pub blob_bytes: usize,
    /// Compression statistics.
    pub comp_stats: ResourceStats,
    /// Decompression statistics.
    pub dec_stats: ResourceStats,
}

/// One row of the experiment table: a (file, context, algorithm) cell
/// with all dependent variables (§IV-B's six measurements).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRow {
    /// File name.
    pub file: String,
    /// Raw file size in bytes.
    pub file_bytes: u64,
    /// Client RAM, MB.
    pub ram_mb: u32,
    /// Client CPU, MHz.
    pub cpu_mhz: u32,
    /// Uplink bandwidth, Mbit/s.
    pub bandwidth_mbps: f64,
    /// Algorithm.
    pub algorithm: Algorithm,
    /// Compressed blob size, bytes (Figure 4).
    pub compressed_bytes: usize,
    /// Compression time, ms (Figure 5).
    pub compress_ms: f64,
    /// Decompression time at the cloud VM, ms.
    pub decompress_ms: f64,
    /// Upload time, ms (Figure 2).
    pub upload_ms: f64,
    /// Download time, ms (Figure 6).
    pub download_ms: f64,
    /// Observed RAM, bytes (Figure 3).
    pub ram_used_bytes: u64,
}

impl ExperimentRow {
    /// Total exchange time, ms.
    pub fn total_ms(&self) -> f64 {
        self.compress_ms + self.decompress_ms + self.upload_ms + self.download_ms
    }
}

/// Measure every (file, algorithm) pair of the corpus, in parallel.
///
/// Each compressor must roundtrip its own output — any mismatch is a
/// hard error, not a skipped cell.
pub fn measure_corpus(
    files: &[FileSpec],
    algorithms: &[Box<dyn Compressor>],
) -> Result<Vec<Measurement>, CodecError> {
    let nested: Result<Vec<Vec<Measurement>>, CodecError> = files
        .par_iter()
        .map(|spec| {
            let seq = spec.generate();
            let mut out = Vec::with_capacity(algorithms.len());
            for alg in algorithms {
                let (blob, comp_stats) = alg.compress_with_stats(&seq)?;
                let (decoded, dec_stats) = alg.decompress_with_stats(&blob)?;
                if decoded != seq {
                    return Err(CodecError::Corrupt("roundtrip mismatch in grid"));
                }
                out.push(Measurement {
                    file: spec.name.clone(),
                    original_len: seq.len(),
                    algorithm: alg.algorithm(),
                    blob_bytes: blob.total_bytes(),
                    comp_stats,
                    dec_stats,
                });
            }
            Ok(out)
        })
        .collect();
    Ok(nested?.into_iter().flatten().collect())
}

/// Expand measurements across the context grid into experiment rows.
pub fn build_rows(
    measurements: &[Measurement],
    contexts: &[ClientContext],
    perf: &PerfModel,
    cloud_vm: &MachineSpec,
) -> Vec<ExperimentRow> {
    let mut rows = Vec::with_capacity(measurements.len() * contexts.len());
    for m in measurements {
        for ctx in contexts {
            let compress_ms = perf.compress_ms(ctx, m.algorithm, &m.file, &m.comp_stats);
            let decompress_ms =
                perf.decompress_ms(cloud_vm, m.algorithm, &m.file, &m.dec_stats);
            let upload_ms = perf.upload_ms(
                ctx,
                m.algorithm,
                &m.file,
                m.blob_bytes,
                m.comp_stats.peak_heap_bytes,
            );
            let download_ms = perf.download_ms(cloud_vm, m.algorithm, &m.file, m.blob_bytes);
            let ram_used_bytes =
                perf.observed_ram_bytes(ctx, m.algorithm, &m.file, m.comp_stats.peak_heap_bytes);
            rows.push(ExperimentRow {
                file: m.file.clone(),
                file_bytes: m.original_len as u64,
                ram_mb: ctx.ram_mb,
                cpu_mhz: ctx.cpu_mhz,
                bandwidth_mbps: ctx.bandwidth.0,
                algorithm: m.algorithm,
                compressed_bytes: m.blob_bytes,
                compress_ms,
                decompress_ms,
                upload_ms,
                download_ms,
                ram_used_bytes,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_cloud::context_grid;
    use dnacomp_seq::corpus::CorpusBuilder;

    fn small_setup() -> (Vec<Measurement>, Vec<ClientContext>) {
        let files = CorpusBuilder::small(3).ncbi_files(3).build();
        let algos = dnacomp_algos::paper_algorithms();
        let ms = measure_corpus(&files, &algos).unwrap();
        (ms, context_grid())
    }

    #[test]
    fn measures_every_pair() {
        let (ms, _) = small_setup();
        assert_eq!(ms.len(), 3 * 4);
        for m in &ms {
            assert!(m.blob_bytes > 0);
            assert!(m.comp_stats.work_units > 0);
        }
    }

    #[test]
    fn rows_cover_grid() {
        let (ms, grid) = small_setup();
        let rows = build_rows(
            &ms,
            &grid,
            &PerfModel::default(),
            &MachineSpec::azure_vm(),
        );
        assert_eq!(rows.len(), ms.len() * 32);
        // Paper shape: 1 file × 32 contexts per algorithm.
        let f0 = &ms[0].file;
        let per_file: Vec<&ExperimentRow> = rows
            .iter()
            .filter(|r| &r.file == f0 && r.algorithm == ms[0].algorithm)
            .collect();
        assert_eq!(per_file.len(), 32);
        // Compressed size is context-independent (§IV-A).
        assert!(per_file
            .iter()
            .all(|r| r.compressed_bytes == per_file[0].compressed_bytes));
        // Times are context-dependent.
        assert!(per_file
            .iter()
            .any(|r| (r.compress_ms - per_file[0].compress_ms).abs() > 1e-9));
    }

    #[test]
    fn rows_are_deterministic() {
        let (ms, grid) = small_setup();
        let perf = PerfModel::default();
        let vm = MachineSpec::azure_vm();
        assert_eq!(
            build_rows(&ms, &grid, &perf, &vm),
            build_rows(&ms, &grid, &perf, &vm)
        );
    }
}
