//! Panic containment for supervised job execution.
//!
//! The deployed framework (Figure 7) is the front door for DNA exchange
//! with a cloud: one hostile blob or one buggy codec must fail *that
//! job*, never the worker thread that happened to run it. This module
//! is the smallest primitive that makes that possible: run a closure,
//! and either hand back its value or a **typed, owned description of
//! the panic** — the `String` a service can put on a job ticket,
//! count, fingerprint and quarantine on, instead of letting
//! `resume_unwind` tear through the pool.
//!
//! Containment is deliberately *not* transparent retry: the caller
//! decides what a contained panic means (fail the ticket, strike the
//! job's fingerprint, quarantine a repeat offender). This module only
//! guarantees the panic stops here and comes out typed.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A wall-clock budget every bounded operation checks against.
///
/// The supervision layers (worker deadlines, the TCP front-end's
/// read/write/idle timeouts) all need the same primitive: a fixed
/// expiry instant, a cheap `expired()` probe inside I/O loops, and the
/// remaining budget to derive nested timeouts from. Centralising it
/// keeps "no operation outlives its deadline" one type instead of a
/// per-module `Instant` convention.
///
/// ```
/// use dnacomp_core::supervise::Deadline;
/// use std::time::Duration;
/// let d = Deadline::after(Duration::from_secs(5));
/// assert!(!d.expired());
/// assert!(d.remaining() <= Duration::from_secs(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline {
            at: Instant::now() + budget,
        }
    }

    /// A deadline at an explicit instant.
    pub fn at(at: Instant) -> Self {
        Deadline { at }
    }

    /// `true` once the budget is spent.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Budget left, zero once expired (never negative).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The expiry instant.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// Extract a human-readable message from a panic payload.
///
/// Panics carry `&str` or `String` payloads in practice (`panic!` with
/// a literal or a formatted message); anything else is reported by its
/// type-erased nature rather than dropped.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run `f`, containing any panic as a typed error message.
///
/// Returns `Ok(value)` when `f` returns, `Err(message)` when it
/// panics. The unwind stops inside this call — the calling thread
/// survives and can keep serving jobs.
///
/// `AssertUnwindSafe` is sound here under the caller's contract:
/// state the closure mutates must either be private to the job (a
/// per-worker simulator whose staged blobs the next job overwrites) or
/// protected by poison-aware locks that recover-and-clear (the
/// decision cache). See `dnacomp-server`'s worker loop for the
/// canonical use.
///
/// ```
/// use dnacomp_core::supervise::contain_panic;
/// assert_eq!(contain_panic(|| 21 * 2), Ok(42));
/// let err = contain_panic(|| -> u32 { panic!("decoder bug on job 7") });
/// assert_eq!(err, Err("decoder bug on job 7".to_owned()));
/// ```
pub fn contain_panic<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_message(p.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_passes_through() {
        assert_eq!(contain_panic(|| "ok"), Ok("ok"));
    }

    #[test]
    fn str_and_string_payloads_are_extracted() {
        assert_eq!(
            contain_panic(|| -> () { panic!("literal payload") }),
            Err("literal payload".to_owned())
        );
        let n = 9;
        assert_eq!(
            contain_panic(|| -> () { panic!("formatted payload {n}") }),
            Err("formatted payload 9".to_owned())
        );
    }

    #[test]
    fn exotic_payloads_do_not_panic_the_extractor() {
        let err = contain_panic(|| -> () { std::panic::panic_any(77u64) });
        assert_eq!(err, Err("non-string panic payload".to_owned()));
    }

    #[test]
    fn deadlines_expire_exactly_once_spent() {
        let d = Deadline::after(Duration::from_millis(20));
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(20));
        std::thread::sleep(Duration::from_millis(30));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        // An explicit-instant deadline in the past is born expired.
        let past = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(past.expired());
        assert!(past.instant() < Instant::now());
    }

    #[test]
    fn zero_budget_deadline_is_born_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        // So is one pinned at exactly "now" — expiry is `>=`, not `>`.
        let now = Deadline::at(Instant::now());
        assert!(now.expired());
        assert_eq!(now.remaining(), Duration::ZERO);
    }

    #[test]
    fn remaining_saturates_at_zero_past_expiry() {
        // However long past its instant a deadline is sampled, the
        // remaining budget stays zero — it never wraps or panics.
        let long_dead = Deadline::at(Instant::now() - Duration::from_secs(3600));
        assert!(long_dead.expired());
        assert_eq!(long_dead.remaining(), Duration::ZERO);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(long_dead.remaining(), Duration::ZERO);
    }

    #[test]
    fn remaining_never_exceeds_budget_and_only_shrinks() {
        let budget = Duration::from_millis(200);
        let d = Deadline::after(budget);
        let mut prev = d.remaining();
        assert!(prev <= budget);
        // Successive samples of a fixed deadline are monotone
        // non-increasing, including across the expiry boundary.
        for _ in 0..50 {
            let now = d.remaining();
            assert!(now <= prev, "remaining() grew: {prev:?} -> {now:?}");
            prev = now;
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn near_expiry_samples_stay_consistent_with_expired() {
        // Hammer a short deadline through its expiry: at no sample may
        // `expired()` and `remaining()` disagree in the dangerous
        // direction (expired yet claiming budget remains).
        let d = Deadline::after(Duration::from_millis(10));
        loop {
            let remaining = d.remaining();
            let expired = d.expired();
            if expired {
                // remaining() sampled *after* expired() can only have
                // shrunk further, so it must be zero now.
                assert_eq!(d.remaining(), Duration::ZERO);
                break;
            }
            assert!(remaining > Duration::ZERO || d.expired());
        }
    }

    #[test]
    fn thread_survives_a_contained_panic() {
        // The whole point: one closure panicking must not stop the
        // caller from doing more work afterwards.
        let mut done = Vec::new();
        for i in 0..10 {
            let r = contain_panic(move || {
                if i % 3 == 0 {
                    panic!("job {i} panicked");
                }
                i * 2
            });
            done.push(r);
        }
        assert_eq!(done.iter().filter(|r| r.is_err()).count(), 4);
        assert_eq!(done[1], Ok(2));
    }
}
