//! XM-lite: expert-model statistical compressor (extension; paper
//! §III-A, ref \[19\]).
//!
//! The paper's survey places XM at the top of the *statistics-based*
//! horizontal compressors: "encoding is based on predicting the
//! probability distribution of the symbol to be encoded … XM is the
//! popular one and it has competitive compression ratio", with the caveat
//! that "these techniques require more computation … practically these
//! are usable for small sequences only".
//!
//! This lite port keeps XM's defining structure — a panel of context
//! **experts** whose predictions are combined by Bayesian-style
//! multiplicative weighting — with hashed order-k frequency experts
//! instead of the original's copy experts:
//!
//! * experts: adaptive order-k models for k ∈ {1, 2, 4, 6, 8, 11}
//!   (hashed context tables, bounded memory);
//! * mixture: each expert's weight is multiplied by the probability it
//!   assigned to the symbol that actually occurred, floored and
//!   renormalised — experts that predict well dominate quickly;
//! * coding: the quantised mixture drives the entropy coder.
//!
//! Each expert is consulted **once** per base: the panel's predictions
//! are cached by the mixture step and reused by the weight update
//! (bit-identical to predicting twice — `Expert::predict` is pure).
//! v1 blobs keep the historical arithmetic coding byte-exactly; v2
//! blobs quantise the mixture to an exact 2¹⁶ total, code through
//! interleaved rANS, and run the model in *fast* arithmetic —
//! reciprocal-multiply predictions and weight renormalisation, with the
//! next base's hashed table rows touched ahead of time so their cache
//! misses overlap the entropy coder. Both ends of the v2 path use the
//! same arithmetic, so roundtrips are exact; v1 never sees it.
//!
//! Both the paper's observations emerge: the ratio is competitive with
//! CTW, and the per-symbol cost (every expert consulted on every base)
//! makes it one of the slowest algorithms here.

use crate::blob::{Algorithm, CompressedBlob, VERSION, VERSION_SPEED};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder, EntropyBackend, EntropyDecoder, EntropyEncoder};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// Hashed context table size per expert (2^16 rows of 4 counters).
const TABLE_BITS: u32 = 16;
/// Mixture quantisation total for the entropy coder.
const MIX_TOTAL: u32 = 1 << 16;
/// Weight floor: experts never die entirely, so regime changes recover.
const WEIGHT_FLOOR: f64 = 1e-4;

/// One order-k frequency expert with a hashed context table.
#[derive(Clone)]
struct Expert {
    order: u32,
    /// Pre-mixed per-order hash salt (`φ·(order+1)`), hoisted out of the
    /// per-base slot hash. Same value the hash always used.
    salt: u64,
    table: Vec<[u16; 4]>,
}

impl Expert {
    fn new(order: u32) -> Expert {
        Expert {
            order,
            salt: 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(order as u64 + 1),
            table: vec![[0; 4]; 1 << TABLE_BITS],
        }
    }

    #[inline]
    fn slot(&self, history: u64) -> usize {
        // Low 2·order bits of the base history, mixed so different
        // orders use decorrelated slots.
        let ctx = history & ((1u64 << (2 * self.order)) - 1);
        let h = (ctx ^ self.salt) ^ ((ctx ^ self.salt) >> 30);
        let h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h >> (64 - TABLE_BITS)) as usize
    }

    /// Laplace-smoothed probabilities for the next symbol, reading the
    /// table row at a pre-computed `slot`. The four divisions share one
    /// denominator and are written as a lane loop so the SLP vectoriser
    /// can pack them (IEEE division is exact per lane, so this cannot
    /// change a single output bit vs the scalar form).
    fn predict_at(&self, slot: usize) -> [f64; 4] {
        let row = &self.table[slot];
        let total: u32 = row.iter().map(|&c| c as u32).sum();
        let denom = total as f64 + 4.0;
        let mut out = [0.0f64; 4];
        for s in 0..4 {
            out[s] = (row[s] as f64 + 1.0) / denom;
        }
        out
    }

    /// Speed-tier prediction: single-precision, one reciprocal, four
    /// multiplies. On the baseline SSE2 target all four lanes fit one
    /// vector (f64 would need two). The f32 noise (~2⁻²⁴ relative) sits
    /// far below the 2⁻¹⁶ quantisation grid — but it *is* a different
    /// bitstream, so only the v2 paths (both ends) ever call this.
    fn predict_at_f32(&self, slot: usize) -> [f32; 4] {
        let row = &self.table[slot];
        let total: u32 = row.iter().map(|&c| c as u32).sum();
        let inv = 1.0f32 / (total as f32 + 4.0);
        let mut out = [0.0f32; 4];
        for s in 0..4 {
            out[s] = (row[s] as f32 + 1.0) * inv;
        }
        out
    }

    fn update_at(&mut self, slot: usize, sym: usize) {
        let row = &mut self.table[slot];
        if row[sym] == u16::MAX {
            for c in row.iter_mut() {
                *c /= 2;
            }
        }
        row[sym] += 1;
    }

    fn heap_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<[u16; 4]>()
    }
}

/// The expert panel with its mixture weights and rolling base history.
struct XmModel {
    experts: Vec<Expert>,
    weights: Vec<f64>,
    /// Per-expert predictions for the current position, filled by the
    /// mixture step and reused by [`XmModel::observe`] — each expert
    /// predicts once per base, not twice.
    preds: Vec<[f64; 4]>,
    /// Fast-mode counterpart of `preds` (single precision).
    preds32: Vec<[f32; 4]>,
    /// Fast-mode mixture weights (single precision; the floor keeps
    /// them ≥ 1e-4, far above f32 underflow).
    weights32: Vec<f32>,
    /// Per-expert table slots for the **current** position, computed
    /// eagerly at the end of the previous `observe` (and touched there,
    /// so the hashed rows are streaming into cache while the entropy
    /// coder works between observe and the next mixture). Byte-exact
    /// either way — the hash only depends on `history`.
    slots: Vec<usize>,
    history: u64,
    /// Speed-tier arithmetic: reciprocal-multiply instead of per-lane
    /// division in predictions and weight renormalisation. Off for v1
    /// paths, whose bitstreams are pinned by checked-in fixtures.
    fast: bool,
}

impl XmModel {
    fn new(orders: &[u32]) -> XmModel {
        XmModel::with_mode(orders, false)
    }

    /// Speed-tier (v2) model: identical structure, reciprocal arithmetic.
    fn new_fast(orders: &[u32]) -> XmModel {
        XmModel::with_mode(orders, true)
    }

    fn with_mode(orders: &[u32], fast: bool) -> XmModel {
        let experts: Vec<Expert> = orders.iter().map(|&k| Expert::new(k)).collect();
        let w = 1.0 / experts.len() as f64;
        let mut model = XmModel {
            weights: vec![w; experts.len()],
            weights32: vec![w as f32; experts.len()],
            preds: vec![[0.0; 4]; experts.len()],
            preds32: vec![[0.0; 4]; experts.len()],
            slots: vec![0; experts.len()],
            experts,
            history: 0,
            fast,
        };
        model.refresh_slots();
        model
    }

    /// Hash the current history into each expert's table slot and touch
    /// the row, so the (random-access) cache lines are in flight before
    /// the next mixture needs them.
    fn refresh_slots(&mut self) {
        for (i, e) in self.experts.iter().enumerate() {
            let slot = e.slot(self.history);
            self.slots[i] = slot;
            dnacomp_seq::prefetch_read(&e.table[slot]);
        }
    }

    /// Encoder-side lookahead: the encoder knows the symbol *before* the
    /// mixture, so the **next** base's table rows can start streaming in
    /// while this base is mixed, coded and observed — hiding the hashed
    /// tables' random-access latency behind ~a full base of work. Pure
    /// cache warming: no model state changes, so decode (which cannot
    /// look ahead) stays bit-compatible.
    #[inline]
    fn prefetch_after(&self, sym: usize) {
        let next = (self.history << 2) | sym as u64;
        for e in &self.experts {
            dnacomp_seq::prefetch_read(&e.table[e.slot(next)]);
        }
    }

    /// Consult every expert once, caching predictions, and return the
    /// weighted mixture. Slots were precomputed by `refresh_slots`.
    /// Legacy (v1) arithmetic — byte-exact with the pre-speed-tier code.
    fn mix(&mut self) -> [f64; 4] {
        let mut mix = [0.0f64; 4];
        let it = self
            .experts
            .iter()
            .zip(&self.slots)
            .zip(self.preds.iter_mut())
            .zip(&self.weights);
        for (((e, &slot), pred), &w) in it {
            let p = e.predict_at(slot);
            *pred = p;
            for s in 0..4 {
                mix[s] += w * p[s];
            }
        }
        mix
    }

    /// Fast-mode (v2) mixture: single-precision expert lanes, weights
    /// applied in f32. Fills `preds32` for the weight update.
    fn mix_fast(&mut self) -> [f32; 4] {
        let mut mix = [0.0f32; 4];
        let it = self
            .experts
            .iter()
            .zip(&self.slots)
            .zip(self.preds32.iter_mut())
            .zip(&self.weights32);
        for (((e, &slot), pred), &w) in it {
            let p = e.predict_at_f32(slot);
            *pred = p;
            for s in 0..4 {
                mix[s] += w * p[s];
            }
        }
        mix
    }

    /// Legacy (v1) quantised mixture as cumulative bounds
    /// `[c0, c1, c2, c3, total]` — total is *approximately* 2¹⁶,
    /// byte-exact with the pre-speed-tier encoder.
    fn mixture(&mut self) -> [u32; 5] {
        let mix = self.mix();
        let mut cum = [0u32; 5];
        let mut acc = 0u32;
        for s in 0..4 {
            let f = ((mix[s] * (MIX_TOTAL - 4) as f64) as u32) + 1;
            cum[s] = acc;
            acc += f;
        }
        cum[4] = acc;
        cum
    }

    /// Speed-tier (v2) quantised mixture: cumulative bounds summing to
    /// **exactly** 2¹⁶ (the last symbol absorbs the remainder; every
    /// frequency stays ≥ 1), as the rANS coder requires. Every lane
    /// probability is strictly below 1 (Laplace smoothing caps an expert
    /// at (t+1)/(t+4), and the f32 noise is ~2⁻²⁴ relative), so the
    /// three quantised frequencies total < 2¹⁶ and the fourth symbol's
    /// width stays ≥ 1.
    fn mixture16(&mut self) -> [u32; 5] {
        let mut cum = [0u32; 5];
        let mut acc = 0u32;
        if self.fast {
            let mix = self.mix_fast();
            for s in 0..3 {
                let f = ((mix[s] * (MIX_TOTAL - 4) as f32) as u32) + 1;
                cum[s] = acc;
                acc += f;
            }
        } else {
            let mix = self.mix();
            for s in 0..3 {
                let f = ((mix[s] * (MIX_TOTAL - 4) as f64) as u32) + 1;
                cum[s] = acc;
                acc += f;
            }
        }
        cum[3] = acc;
        cum[4] = MIX_TOTAL;
        debug_assert!(acc < MIX_TOTAL);
        cum
    }

    /// Record the actual symbol: update weights, experts, history.
    /// Uses the predictions cached by the latest mixture call, which
    /// must precede every `observe` (pure functions — same values the
    /// experts would return if asked again).
    fn observe(&mut self, sym: usize) {
        if self.fast {
            let mut norm = 0.0f32;
            for (w, p) in self.weights32.iter_mut().zip(&self.preds32) {
                *w = (*w * p[sym]).max(WEIGHT_FLOOR as f32);
                norm += *w;
            }
            let inv = 1.0f32 / norm;
            for w in &mut self.weights32 {
                *w *= inv;
            }
        } else {
            let mut norm = 0.0f64;
            for (w, p) in self.weights.iter_mut().zip(&self.preds) {
                *w = (*w * p[sym]).max(WEIGHT_FLOOR);
                norm += *w;
            }
            for w in &mut self.weights {
                *w /= norm;
            }
        }
        for (e, &slot) in self.experts.iter_mut().zip(&self.slots) {
            e.update_at(slot, sym);
        }
        self.history = (self.history << 2) | sym as u64;
        self.refresh_slots();
    }

    fn heap_bytes(&self) -> usize {
        self.experts.iter().map(Expert::heap_bytes).sum::<usize>()
            + self.weights.capacity() * 8
    }
}

/// The XM-lite compressor.
#[derive(Clone, Debug)]
pub struct XmLite {
    /// Expert context orders (bases).
    pub orders: Vec<u32>,
    /// Entropy coding backend; picks the blob version on compress.
    /// Decoding follows the blob version instead.
    pub backend: EntropyBackend,
}

impl Default for XmLite {
    fn default() -> Self {
        XmLite {
            orders: vec![1, 2, 4, 6, 8, 11],
            backend: EntropyBackend::default(),
        }
    }
}

impl XmLite {
    /// XM-lite pinned to a specific entropy backend.
    pub fn with_backend(backend: EntropyBackend) -> Self {
        XmLite {
            backend,
            ..XmLite::default()
        }
    }

    fn work_per_base(&self) -> u64 {
        self.orders.len() as u64 * 6
    }
}

impl Compressor for XmLite {
    fn algorithm(&self) -> Algorithm {
        Algorithm::XmLite
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let mut model = match self.backend {
            EntropyBackend::Arith => XmModel::new(&self.orders),
            EntropyBackend::Rans => XmModel::new_fast(&self.orders),
        };
        let blob = match self.backend {
            EntropyBackend::Arith => {
                let mut enc = ArithEncoder::new();
                for b in seq.iter() {
                    let sym = b.code() as usize;
                    let cum = model.mixture();
                    enc.encode(cum[sym], cum[sym + 1], cum[4]);
                    model.observe(sym);
                }
                CompressedBlob::new(Algorithm::XmLite, seq, enc.finish())
            }
            EntropyBackend::Rans => {
                let mut enc = EntropyEncoder::new(EntropyBackend::Rans);
                for b in seq.iter() {
                    let sym = b.code() as usize;
                    model.prefetch_after(sym);
                    let cum = model.mixture16();
                    enc.encode_cum16(&cum, sym);
                    model.observe(sym);
                }
                CompressedBlob::new_v2(Algorithm::XmLite, seq, enc.finish())
            }
        };
        // Every expert consulted once per base, plus the weight update.
        meter.work(seq.len() as u64 * self.work_per_base());
        meter.heap_snapshot(model.heap_bytes() as u64 + seq.heap_bytes() as u64);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::XmLite)?;
        let mut meter = Meter::new();
        let mut model = match blob.version {
            VERSION_SPEED => XmModel::new_fast(&self.orders),
            _ => XmModel::new(&self.orders),
        };
        let mut seq = PackedSeq::with_capacity(blob.decode_capacity());
        match blob.version {
            VERSION => {
                let mut dec = ArithDecoder::new(&blob.payload);
                for _ in 0..blob.original_len {
                    let cum = model.mixture();
                    let target = dec.decode_target(cum[4]);
                    let sym = match cum[1..=4].iter().position(|&c| target < c) {
                        Some(s) => s,
                        None => return Err(CodecError::Corrupt("xm target out of range")),
                    };
                    dec.update(cum[sym], cum[sym + 1], cum[4]);
                    model.observe(sym);
                    seq.push(Base::from_code(sym as u8));
                }
            }
            VERSION_SPEED => {
                let mut dec = EntropyDecoder::new(EntropyBackend::Rans, &blob.payload)?;
                for _ in 0..blob.original_len {
                    let cum = model.mixture16();
                    let sym = dec.decode_cum16(&cum);
                    model.observe(sym);
                    seq.push(Base::from_code(sym as u8));
                }
            }
            v => return Err(CodecError::UnknownFormat(v)),
        }
        meter.work(blob.original_len as u64 * self.work_per_base());
        meter.heap_snapshot(model.heap_bytes() as u64 + seq.heap_bytes() as u64);
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }

    fn stage_times(&self, seq: &PackedSeq) -> Option<(f64, f64)> {
        use std::time::Instant;
        let t0 = Instant::now();
        self.compress(seq).ok()?;
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Same model walk into a discard sink.
        let t0 = Instant::now();
        let mut model = match self.backend {
            EntropyBackend::Arith => XmModel::new(&self.orders),
            EntropyBackend::Rans => XmModel::new_fast(&self.orders),
        };
        let mut sink = EntropyEncoder::discard();
        for b in seq.iter() {
            let sym = b.code() as usize;
            let cum = match self.backend {
                EntropyBackend::Arith => model.mixture(),
                EntropyBackend::Rans => {
                    model.prefetch_after(sym);
                    model.mixture16()
                }
            };
            sink.encode_cum16(&cum, sym);
            model.observe(sym);
        }
        let model_ms = t0.elapsed().as_secs_f64() * 1e3;
        Some((model_ms, (full_ms - model_ms).max(0.0)))
    }

    fn entropy_backend(&self) -> &'static str {
        self.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctw::Ctw;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &XmLite, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = XmLite::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "GGGGG"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn backends_cross_decode_via_blob_version() {
        let seq = GenomeModel::default().generate(6_000, 29);
        let legacy = XmLite::with_backend(EntropyBackend::Arith);
        let fast = XmLite::default();
        let v1 = legacy.compress(&seq).unwrap();
        assert_eq!(v1.version, VERSION);
        let v2 = fast.compress(&seq).unwrap();
        assert_eq!(v2.version, VERSION_SPEED);
        assert_eq!(fast.decompress(&v1).unwrap(), seq);
        assert_eq!(legacy.decompress(&v2).unwrap(), seq);
    }

    #[test]
    fn mixture16_is_exact_and_close_to_legacy() {
        let seq = GenomeModel::default().generate(2_000, 31);
        let mut model = XmModel::new(&[1, 2, 4]);
        for b in seq.iter() {
            let legacy = model.mixture();
            let exact = model.mixture16();
            assert_eq!(exact[4], MIX_TOTAL);
            assert_eq!(exact[0], 0);
            for s in 0..4 {
                assert!(exact[s] < exact[s + 1], "zero-width interval at {s}");
                // First three symbols quantise identically.
                if s < 3 {
                    assert_eq!(exact[s], legacy[s]);
                }
            }
            model.observe(b.code() as usize);
        }
    }

    #[test]
    fn fast_mode_tracks_legacy_within_quantisation_noise() {
        // Fast mode runs the experts in f32 (~2⁻²⁴ relative noise per
        // step, compounding through the weight trajectory), so the two
        // mixtures drift apart slowly — bound the drift to a fraction of
        // a percent of the 2¹⁶ grid. Structure (exact total, no
        // zero-width symbol) must hold exactly regardless.
        let seq = GenomeModel::default().generate(2_000, 31);
        let mut slow = XmModel::new(&[1, 2, 4]);
        let mut fast = XmModel::new_fast(&[1, 2, 4]);
        for b in seq.iter() {
            let a = slow.mixture16();
            let f = fast.mixture16();
            assert_eq!(f[4], MIX_TOTAL);
            assert_eq!(f[0], 0);
            for s in 0..4 {
                assert!(f[s] < f[s + 1], "zero-width interval at {s}");
                assert!(
                    (f[s] as i64 - a[s] as i64).abs() <= 256,
                    "fast/slow diverged at {s}: {f:?} vs {a:?}"
                );
            }
            let sym = b.code() as usize;
            slow.observe(sym);
            fast.observe(sym);
        }
    }

    #[test]
    fn competitive_with_ctw_on_dna() {
        let seq = GenomeModel::default().generate(40_000, 7);
        let xm = roundtrip(&XmLite::default(), &seq);
        let ctw = Ctw::default().compress(&seq).unwrap();
        // Within 15 % of CTW either way — "competitive compression ratio".
        let ratio = xm.total_bytes() as f64 / ctw.total_bytes() as f64;
        assert!((0.7..1.15).contains(&ratio), "xm/ctw = {ratio}");
    }

    #[test]
    fn strong_on_periodic_sequences() {
        let seq = PackedSeq::from_ascii("ACGTTGA".repeat(3000).as_bytes()).unwrap();
        let blob = roundtrip(&XmLite::default(), &seq);
        assert!(blob.bits_per_base() < 0.3, "{}", blob.bits_per_base());
    }

    #[test]
    fn near_two_bits_on_random() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 3);
        let blob = roundtrip(&XmLite::default(), &seq);
        assert!(blob.bits_per_base() < 2.2, "{}", blob.bits_per_base());
    }

    #[test]
    fn weights_concentrate_on_informative_expert() {
        // Period-5 text: the order-6/8/11 experts see the full period and
        // should out-weigh the order-1 expert.
        let seq = PackedSeq::from_ascii("ACGTT".repeat(2000).as_bytes()).unwrap();
        let mut model = XmModel::new(&[1, 6]);
        for b in seq.iter() {
            model.mix(); // fill the prediction cache observe consumes
            model.observe(b.code() as usize);
        }
        assert!(
            model.weights[1] > model.weights[0] * 10.0,
            "weights {:?}",
            model.weights
        );
    }

    #[test]
    fn single_expert_panel_still_works() {
        let c = XmLite {
            orders: vec![2],
            ..XmLite::default()
        };
        let seq = GenomeModel::default().generate(5_000, 9);
        roundtrip(&c, &seq);
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(2_000, 13);
        for backend in [EntropyBackend::Arith, EntropyBackend::Rans] {
            let c = XmLite::with_backend(backend);
            let blob = c.compress(&seq).unwrap();
            let mut bad = blob.clone();
            let at = bad.payload.len() / 2;
            bad.payload[at] ^= 0x40;
            if let Ok(back) = c.decompress(&bad) { assert_eq!(back, seq) }
            let mut wrong = blob.clone();
            wrong.algorithm = Algorithm::Dnax;
            assert!(c.decompress(&wrong).is_err());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,1200}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&XmLite::default(), &seq);
            roundtrip(&XmLite::with_backend(EntropyBackend::Arith), &seq);
        }
    }
}
