//! XM-lite: expert-model statistical compressor (extension; paper
//! §III-A, ref \[19\]).
//!
//! The paper's survey places XM at the top of the *statistics-based*
//! horizontal compressors: "encoding is based on predicting the
//! probability distribution of the symbol to be encoded … XM is the
//! popular one and it has competitive compression ratio", with the caveat
//! that "these techniques require more computation … practically these
//! are usable for small sequences only".
//!
//! This lite port keeps XM's defining structure — a panel of context
//! **experts** whose predictions are combined by Bayesian-style
//! multiplicative weighting — with hashed order-k frequency experts
//! instead of the original's copy experts:
//!
//! * experts: adaptive order-k models for k ∈ {1, 2, 4, 6, 8, 11}
//!   (hashed context tables, bounded memory);
//! * mixture: each expert's weight is multiplied by the probability it
//!   assigned to the symbol that actually occurred, floored and
//!   renormalised — experts that predict well dominate quickly;
//! * coding: the quantised mixture drives the arithmetic coder.
//!
//! Both the paper's observations emerge: the ratio is competitive with
//! CTW, and the per-symbol cost (every expert consulted on every base)
//! makes it one of the slowest algorithms here.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// Hashed context table size per expert (2^16 rows of 4 counters).
const TABLE_BITS: u32 = 16;
/// Mixture quantisation total for the arithmetic coder.
const MIX_TOTAL: u32 = 1 << 16;
/// Weight floor: experts never die entirely, so regime changes recover.
const WEIGHT_FLOOR: f64 = 1e-4;

/// One order-k frequency expert with a hashed context table.
#[derive(Clone)]
struct Expert {
    order: u32,
    table: Vec<[u16; 4]>,
}

impl Expert {
    fn new(order: u32) -> Expert {
        Expert {
            order,
            table: vec![[0; 4]; 1 << TABLE_BITS],
        }
    }

    #[inline]
    fn slot(&self, history: u64) -> usize {
        // Low 2·order bits of the base history, mixed so different
        // orders use decorrelated slots.
        let ctx = history & ((1u64 << (2 * self.order)) - 1);
        let mut h = ctx ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(self.order as u64 + 1));
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (h >> (64 - TABLE_BITS)) as usize
    }

    /// Laplace-smoothed probabilities for the next symbol.
    fn predict(&self, history: u64) -> [f64; 4] {
        let row = &self.table[self.slot(history)];
        let total: u32 = row.iter().map(|&c| c as u32).sum();
        let denom = total as f64 + 4.0;
        [
            (row[0] as f64 + 1.0) / denom,
            (row[1] as f64 + 1.0) / denom,
            (row[2] as f64 + 1.0) / denom,
            (row[3] as f64 + 1.0) / denom,
        ]
    }

    fn update(&mut self, history: u64, sym: usize) {
        let slot = self.slot(history);
        let row = &mut self.table[slot];
        if row[sym] == u16::MAX {
            for c in row.iter_mut() {
                *c /= 2;
            }
        }
        row[sym] += 1;
    }

    fn heap_bytes(&self) -> usize {
        self.table.capacity() * std::mem::size_of::<[u16; 4]>()
    }
}

/// The expert panel with its mixture weights and rolling base history.
struct XmModel {
    experts: Vec<Expert>,
    weights: Vec<f64>,
    history: u64,
}

impl XmModel {
    fn new(orders: &[u32]) -> XmModel {
        let experts: Vec<Expert> = orders.iter().map(|&k| Expert::new(k)).collect();
        let w = 1.0 / experts.len() as f64;
        XmModel {
            weights: vec![w; experts.len()],
            experts,
            history: 0,
        }
    }

    /// Quantised mixture distribution as cumulative bounds
    /// `[c0, c1, c2, c3, total]`.
    fn mixture(&self) -> ([f64; 4], [u32; 5]) {
        let mut mix = [0.0f64; 4];
        for (e, &w) in self.experts.iter().zip(&self.weights) {
            let p = e.predict(self.history);
            for s in 0..4 {
                mix[s] += w * p[s];
            }
        }
        // Quantise with a floor of 1 per symbol.
        let mut cum = [0u32; 5];
        let mut acc = 0u32;
        for s in 0..4 {
            let f = ((mix[s] * (MIX_TOTAL - 4) as f64) as u32) + 1;
            cum[s] = acc;
            acc += f;
        }
        cum[4] = acc;
        (mix, cum)
    }

    /// Record the actual symbol: update weights, experts, history.
    fn observe(&mut self, sym: usize) {
        let mut norm = 0.0;
        for (i, e) in self.experts.iter().enumerate() {
            let p = e.predict(self.history)[sym];
            self.weights[i] = (self.weights[i] * p).max(WEIGHT_FLOOR);
            norm += self.weights[i];
        }
        for w in &mut self.weights {
            *w /= norm;
        }
        for e in &mut self.experts {
            e.update(self.history, sym);
        }
        self.history = (self.history << 2) | sym as u64;
    }

    fn heap_bytes(&self) -> usize {
        self.experts.iter().map(Expert::heap_bytes).sum::<usize>()
            + self.weights.capacity() * 8
    }
}

/// The XM-lite compressor.
#[derive(Clone, Debug)]
pub struct XmLite {
    /// Expert context orders (bases).
    pub orders: Vec<u32>,
}

impl Default for XmLite {
    fn default() -> Self {
        XmLite {
            orders: vec![1, 2, 4, 6, 8, 11],
        }
    }
}

impl Compressor for XmLite {
    fn algorithm(&self) -> Algorithm {
        Algorithm::XmLite
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let mut model = XmModel::new(&self.orders);
        let mut enc = ArithEncoder::new();
        for b in seq.iter() {
            let sym = b.code() as usize;
            let (_, cum) = model.mixture();
            enc.encode(cum[sym], cum[sym + 1], cum[4]);
            model.observe(sym);
        }
        // Every expert consulted twice (predict + weight update) per base.
        meter.work(seq.len() as u64 * self.orders.len() as u64 * 6);
        meter.heap_snapshot(model.heap_bytes() as u64 + seq.heap_bytes() as u64);
        let blob = CompressedBlob::new(Algorithm::XmLite, seq, enc.finish());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::XmLite)?;
        let mut meter = Meter::new();
        let mut model = XmModel::new(&self.orders);
        let mut dec = ArithDecoder::new(&blob.payload);
        let mut seq = PackedSeq::with_capacity(blob.decode_capacity());
        for _ in 0..blob.original_len {
            let (_, cum) = model.mixture();
            let target = dec.decode_target(cum[4]);
            let sym = match cum[1..=4].iter().position(|&c| target < c) {
                Some(s) => s,
                None => return Err(CodecError::Corrupt("xm target out of range")),
            };
            dec.update(cum[sym], cum[sym + 1], cum[4]);
            model.observe(sym);
            seq.push(Base::from_code(sym as u8));
        }
        meter.work(blob.original_len as u64 * self.orders.len() as u64 * 6);
        meter.heap_snapshot(model.heap_bytes() as u64 + seq.heap_bytes() as u64);
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctw::Ctw;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &XmLite, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = XmLite::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "GGGGG"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn competitive_with_ctw_on_dna() {
        let seq = GenomeModel::default().generate(40_000, 7);
        let xm = roundtrip(&XmLite::default(), &seq);
        let ctw = Ctw::default().compress(&seq).unwrap();
        // Within 15 % of CTW either way — "competitive compression ratio".
        let ratio = xm.total_bytes() as f64 / ctw.total_bytes() as f64;
        assert!((0.7..1.15).contains(&ratio), "xm/ctw = {ratio}");
    }

    #[test]
    fn strong_on_periodic_sequences() {
        let seq = PackedSeq::from_ascii("ACGTTGA".repeat(3000).as_bytes()).unwrap();
        let blob = roundtrip(&XmLite::default(), &seq);
        assert!(blob.bits_per_base() < 0.3, "{}", blob.bits_per_base());
    }

    #[test]
    fn near_two_bits_on_random() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 3);
        let blob = roundtrip(&XmLite::default(), &seq);
        assert!(blob.bits_per_base() < 2.2, "{}", blob.bits_per_base());
    }

    #[test]
    fn weights_concentrate_on_informative_expert() {
        // Period-5 text: the order-6/8/11 experts see the full period and
        // should out-weigh the order-1 expert.
        let seq = PackedSeq::from_ascii("ACGTT".repeat(2000).as_bytes()).unwrap();
        let mut model = XmModel::new(&[1, 6]);
        for b in seq.iter() {
            model.observe(b.code() as usize);
        }
        assert!(
            model.weights[1] > model.weights[0] * 10.0,
            "weights {:?}",
            model.weights
        );
    }

    #[test]
    fn single_expert_panel_still_works() {
        let c = XmLite { orders: vec![2] };
        let seq = GenomeModel::default().generate(5_000, 9);
        roundtrip(&c, &seq);
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(2_000, 13);
        let c = XmLite::default();
        let blob = c.compress(&seq).unwrap();
        let mut bad = blob.clone();
        let at = bad.payload.len() / 2;
        bad.payload[at] ^= 0x40;
        if let Ok(back) = c.decompress(&bad) { assert_eq!(back, seq) }
        let mut wrong = blob.clone();
        wrong.algorithm = Algorithm::Dnax;
        assert!(c.decompress(&wrong).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,1200}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&XmLite::default(), &seq);
        }
    }
}
