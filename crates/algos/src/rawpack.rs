//! Raw 2-bit packing — the degradation ladder's last resort.
//!
//! No model, no repeat search: the payload is a uvarint length echo
//! followed by the sequence's packed 2-bit words verbatim. Compression
//! ratio is a fixed ~2 bits/base plus the container header, but the
//! encode/decode cost is a memory copy, so an exchange that has already
//! burned its retry budget on fancier compressors can always fall back
//! here and still ship a checksummed, integrity-verifiable container.
//!
//! The payload echoes the base count because the container's
//! `original_len` is attacker/corruption-reachable: without the echo, a
//! tampered length whose dropped bases pack to zero bits would decode
//! silently. The echo makes any length tamper a hard error.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// The raw 2-bit pass-through "compressor".
#[derive(Clone, Copy, Debug, Default)]
pub struct RawPack;

impl Compressor for RawPack {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Raw
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let words = seq.as_words();
        let mut payload = Vec::with_capacity(words.len() + 4);
        write_uvarint(&mut payload, seq.len() as u64);
        payload.extend_from_slice(words);
        // A straight copy: ~1 work unit per 16 bases (one word move).
        meter.work(seq.len() as u64 / 16 + 1);
        meter.heap_snapshot(payload.len() as u64);
        let blob = CompressedBlob::new(Algorithm::Raw, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Raw)?;
        let mut meter = Meter::new();
        let mut pos = 0usize;
        let echoed = read_uvarint(&blob.payload, &mut pos)? as usize;
        if echoed != blob.original_len {
            return Err(CodecError::Corrupt("raw payload length echo mismatch"));
        }
        let words = blob.payload[pos..].to_vec();
        if words.len() != blob.original_len.div_ceil(4) {
            return Err(CodecError::Corrupt("raw payload size mismatch"));
        }
        let seq = PackedSeq::from_words(words, blob.original_len)
            .map_err(|_| CodecError::Corrupt("raw payload shorter than declared length"))?;
        blob.verify(&seq)?;
        meter.work(blob.original_len as u64 / 16 + 1);
        meter.heap_snapshot(seq.as_words().len() as u64);
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;

    #[test]
    fn roundtrip() {
        let seq = GenomeModel::default().generate(5_000, 21);
        let c = RawPack;
        let (blob, stats) = c.compress_with_stats(&seq).unwrap();
        assert_eq!(blob.algorithm, Algorithm::Raw);
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(back, seq);
        assert!(stats.work_units > 0);
    }

    #[test]
    fn empty_roundtrip() {
        let seq = PackedSeq::new();
        let blob = RawPack.compress(&seq).unwrap();
        assert_eq!(RawPack.decompress(&blob).unwrap(), seq);
    }

    #[test]
    fn ratio_is_two_bits_per_base_plus_header() {
        let seq = GenomeModel::default().generate(40_000, 22);
        let blob = RawPack.compress(&seq).unwrap();
        let bpb = blob.bits_per_base();
        assert!((2.0..2.01).contains(&bpb), "bpb = {bpb}");
    }

    #[test]
    fn rejects_length_tamper() {
        let seq = GenomeModel::default().generate(3_000, 23);
        let mut blob = RawPack.compress(&seq).unwrap();
        blob.original_len = 2_999;
        assert!(RawPack.decompress(&blob).is_err());
    }

    #[test]
    fn rejects_truncation_and_flips() {
        let seq = GenomeModel::default().generate(2_000, 24);
        let blob = RawPack.compress(&seq).unwrap();
        let mut trunc = blob.clone();
        trunc.payload.truncate(trunc.payload.len() / 2);
        assert!(RawPack.decompress(&trunc).is_err());
        let mut flipped = blob.clone();
        let mid = flipped.payload.len() / 2;
        flipped.payload[mid] ^= 0x0F;
        assert!(RawPack.decompress(&flipped).is_err());
    }

    #[test]
    fn rejects_other_algorithms() {
        let seq = GenomeModel::default().generate(1_000, 25);
        let mut blob = RawPack.compress(&seq).unwrap();
        blob.algorithm = Algorithm::Dnax;
        assert!(RawPack.decompress(&blob).is_err());
    }
}
