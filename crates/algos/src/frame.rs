//! Framed block container: one sequence split into independently
//! compressed fixed-size blocks.
//!
//! Layout (bytes):
//!
//! ```text
//! 0..2   magic  b"DF"
//! 2      frame format version (1)
//! 3..    uvarint: block size in bases
//! ..     uvarint: number of blocks
//! ..     uvarint: total original length in bases
//! ..     u64 LE: FNV-1a checksum of the whole original packed words
//! per block:
//! ..     uvarint: record length in bytes
//! ..     one [`CompressedBlob`] in its ordinary wire format
//! ```
//!
//! Every block except the last holds exactly `block_size` bases, so
//! block boundaries are a pure function of `(block_size, total_len)` —
//! which is what lets the cloud's resumable-upload blocks and the
//! parallel decoder agree on boundaries without any side channel, and
//! what makes the frame bytes **independent of how many threads built
//! them**. Each record is a full [`CompressedBlob`] (per-block algorithm
//! tag, base length, FNV-1a checksum), so a single corrupt block is
//! detected by its own checksum and the frame-level checksum closes the
//! remaining gap (e.g. two equal-sized blocks swapped in transit).
//!
//! ## Hostile-header discipline
//!
//! [`FramedBlob::from_bytes`] rejects lying headers **before any
//! header-sized allocation**: the declared block count must be
//! affordable from the bytes actually present (each record costs at
//! least [`MIN_RECORD_BYTES`]), the block size must fit the per-blob
//! container limit, and the block count must equal
//! `total_len.div_ceil(block_size)` exactly. Decoding then grows with
//! real payload bytes only, mirroring the `MAX_PREALLOC_BASES`
//! discipline of the flat container.

use crate::blob::{Algorithm, CompressedBlob, MAX_PREALLOC_BASES};
use crate::{compressor_for, Compressor};
use dnacomp_codec::checksum::fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// Magic prefix of a framed container ("DX" is the flat blob).
pub const FRAME_MAGIC: [u8; 2] = *b"DF";
/// Frame format version.
pub const FRAME_VERSION: u8 = 1;
/// Upper bound on the total bases a frame may declare (4 Gi — a human
/// genome; per-*block* memory stays bounded by `MAX_PREALLOC_BASES`).
pub const MAX_FRAME_BASES: u64 = 1 << 32;
/// Cheapest possible block record: a 1-byte record-length uvarint plus
/// the 13-byte minimum `CompressedBlob` wire header. The block-count
/// affordability check divides by this.
pub const MIN_RECORD_BYTES: usize = 14;

/// A sequence compressed as independent fixed-size blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FramedBlob {
    /// Bases per block (every block but the last is exactly this long).
    pub block_size: usize,
    /// Original sequence length in bases.
    pub total_len: usize,
    /// FNV-1a of the whole original packed words.
    pub checksum: u64,
    /// The per-block containers, in sequence order.
    pub blocks: Vec<CompressedBlob>,
}

impl FramedBlob {
    /// `true` when `bytes` starts like a framed container — the sniff
    /// `dnacomp decompress` uses to pick the right parser.
    pub fn is_frame(bytes: &[u8]) -> bool {
        bytes.len() >= 3 && bytes[0..2] == FRAME_MAGIC
    }

    /// Number of blocks a `total_len`-base sequence splits into.
    pub fn block_count(block_size: usize, total_len: usize) -> usize {
        assert!(block_size > 0, "block size must be positive");
        total_len.div_ceil(block_size)
    }

    /// The expected base length of block `index`.
    pub fn block_len(&self, index: usize) -> usize {
        let start = index * self.block_size;
        self.total_len.saturating_sub(start).min(self.block_size)
    }

    /// Serialised frame size in bytes (the "compressed file size").
    pub fn total_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Compression ratio in bits per base, container overhead included.
    pub fn bits_per_base(&self) -> f64 {
        if self.total_len == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / self.total_len as f64
    }

    /// Serialise to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.blocks.len() * 16);
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(FRAME_VERSION);
        write_uvarint(&mut out, self.block_size as u64);
        write_uvarint(&mut out, self.blocks.len() as u64);
        write_uvarint(&mut out, self.total_len as u64);
        write_u64_le(&mut out, self.checksum);
        for block in &self.blocks {
            let record = block.to_bytes();
            write_uvarint(&mut out, record.len() as u64);
            out.extend_from_slice(&record);
        }
        out
    }

    /// Parse and validate from the wire format.
    ///
    /// Structural lies (impossible block counts or sizes, block counts
    /// the payload cannot afford, per-block lengths disagreeing with the
    /// frame geometry) are rejected with typed errors before any
    /// allocation proportional to the lie.
    pub fn from_bytes(bytes: &[u8]) -> Result<FramedBlob, CodecError> {
        if bytes.len() < 4 || bytes[0..2] != FRAME_MAGIC {
            return Err(CodecError::Corrupt("bad frame magic"));
        }
        if bytes[2] != FRAME_VERSION {
            return Err(CodecError::UnknownFormat(bytes[2]));
        }
        let mut pos = 3;
        let block_size = read_uvarint(bytes, &mut pos)?;
        let n_blocks = read_uvarint(bytes, &mut pos)?;
        let total_len = read_uvarint(bytes, &mut pos)?;
        let checksum = read_u64_le(bytes, &mut pos)?;
        if block_size == 0 || block_size > MAX_PREALLOC_BASES as u64 {
            return Err(CodecError::Corrupt("frame block size out of range"));
        }
        if total_len > MAX_FRAME_BASES {
            return Err(CodecError::Corrupt("frame length exceeds container limit"));
        }
        if n_blocks != total_len.div_ceil(block_size) {
            return Err(CodecError::Corrupt("frame block count disagrees with length"));
        }
        // Affordability: every declared block costs ≥ MIN_RECORD_BYTES of
        // payload, so a lying count is refused before the Vec allocation
        // below can be sized by it.
        let remaining = bytes.len() - pos;
        if n_blocks > (remaining / MIN_RECORD_BYTES) as u64 {
            return Err(CodecError::Corrupt("frame block count exceeds payload"));
        }
        let block_size = block_size as usize;
        let total_len = total_len as usize;
        let n_blocks = n_blocks as usize;
        let mut blocks = Vec::with_capacity(n_blocks);
        for index in 0..n_blocks {
            let record_len = read_uvarint(bytes, &mut pos)? as usize;
            if record_len > bytes.len() - pos {
                return Err(CodecError::Corrupt("frame block record truncated"));
            }
            let block = CompressedBlob::from_bytes(&bytes[pos..pos + record_len])?;
            pos += record_len;
            let expected = total_len.saturating_sub(index * block_size).min(block_size);
            if block.original_len != expected {
                return Err(CodecError::Corrupt("frame block length disagrees with geometry"));
            }
            if !Algorithm::HORIZONTAL.contains(&block.algorithm) {
                return Err(CodecError::UnknownFormat(block.algorithm.tag()));
            }
            blocks.push(block);
        }
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("trailing bytes after frame"));
        }
        Ok(FramedBlob {
            block_size,
            total_len,
            checksum,
            blocks,
        })
    }
}

/// Compress `seq` into a frame on the calling thread — the serial
/// reference encoder. Byte-identical to
/// [`crate::ParallelCompressor::compress`] with any pool.
pub fn compress_serial(
    compressor: &dyn Compressor,
    seq: &PackedSeq,
    block_size: usize,
) -> Result<FramedBlob, CodecError> {
    assert!(block_size > 0, "block size must be positive");
    let n_blocks = FramedBlob::block_count(block_size, seq.len());
    let mut blocks = Vec::with_capacity(n_blocks);
    for index in 0..n_blocks {
        let start = index * block_size;
        let end = (start + block_size).min(seq.len());
        blocks.push(compressor.compress(&seq.slice(start, end))?);
    }
    Ok(FramedBlob {
        block_size,
        total_len: seq.len(),
        checksum: fnv1a(seq.as_words()),
        blocks,
    })
}

/// Decompress a frame block-by-block on the calling thread — the serial
/// reference decoder. Accepts frames from any encoder (parallel or
/// serial) and verifies both per-block and whole-frame checksums.
pub fn decompress_serial(frame: &FramedBlob) -> Result<PackedSeq, CodecError> {
    let mut out = PackedSeq::with_capacity(frame.total_len);
    let mut cached: Option<(Algorithm, Box<dyn Compressor>)> = None;
    for (index, block) in frame.blocks.iter().enumerate() {
        let stale = !matches!(&cached, Some((alg, _)) if *alg == block.algorithm);
        if stale {
            cached = Some((block.algorithm, compressor_for(block.algorithm)));
        }
        let codec = &cached.as_ref().expect("compressor cached above").1;
        let decoded = codec.decompress(block)?;
        if decoded.len() != frame.block_len(index) {
            return Err(CodecError::Corrupt("frame block decoded to wrong length"));
        }
        out.extend_from_seq(&decoded);
    }
    verify_whole(frame, &out)?;
    Ok(out)
}

/// Check the reassembled sequence against the frame header.
pub(crate) fn verify_whole(frame: &FramedBlob, seq: &PackedSeq) -> Result<(), CodecError> {
    if seq.len() != frame.total_len {
        return Err(CodecError::Corrupt("frame decoded length mismatch"));
    }
    let actual = fnv1a(seq.as_words());
    if actual != frame.checksum {
        return Err(CodecError::ChecksumMismatch {
            expected: frame.checksum,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;

    fn sample(len: usize) -> PackedSeq {
        GenomeModel::default().generate(len, 7)
    }

    #[test]
    fn frame_roundtrips_through_wire_format() {
        let seq = sample(10_000);
        let frame = compress_serial(&*compressor_for(Algorithm::Dnax), &seq, 1_024).unwrap();
        assert_eq!(frame.blocks.len(), 10);
        let back = FramedBlob::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(decompress_serial(&back).unwrap(), seq);
    }

    #[test]
    fn empty_sequence_is_zero_blocks() {
        let frame = compress_serial(&*compressor_for(Algorithm::Raw), &PackedSeq::new(), 64)
            .unwrap();
        assert_eq!(frame.blocks.len(), 0);
        assert_eq!(frame.total_len, 0);
        let back = FramedBlob::from_bytes(&frame.to_bytes()).unwrap();
        assert_eq!(decompress_serial(&back).unwrap(), PackedSeq::new());
    }

    #[test]
    fn frame_magic_does_not_parse_as_flat_blob() {
        let seq = sample(256);
        let frame = compress_serial(&*compressor_for(Algorithm::Raw), &seq, 64).unwrap();
        let bytes = frame.to_bytes();
        assert!(FramedBlob::is_frame(&bytes));
        assert!(CompressedBlob::from_bytes(&bytes).is_err());
        let flat = compressor_for(Algorithm::Raw).compress(&seq).unwrap().to_bytes();
        assert!(!FramedBlob::is_frame(&flat));
    }

    #[test]
    fn swapped_equal_size_blocks_are_caught_by_frame_checksum() {
        let seq = sample(2_048);
        let mut frame =
            compress_serial(&*compressor_for(Algorithm::Raw), &seq, 512).unwrap();
        frame.blocks.swap(0, 1);
        let reparsed = FramedBlob::from_bytes(&frame.to_bytes()).unwrap();
        assert!(matches!(
            decompress_serial(&reparsed),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn lying_block_count_rejected_before_allocation() {
        let seq = sample(4_096);
        let frame = compress_serial(&*compressor_for(Algorithm::Raw), &seq, 1_024).unwrap();
        let honest = frame.to_bytes();
        // Rebuild the header with a huge block count and length whose
        // ratio is still consistent, leaving the payload unchanged: the
        // affordability check must fire, not an allocation.
        let mut lying = Vec::new();
        lying.extend_from_slice(&FRAME_MAGIC);
        lying.push(FRAME_VERSION);
        write_uvarint(&mut lying, 1); // block_size 1
        write_uvarint(&mut lying, 1 << 31); // n_blocks
        write_uvarint(&mut lying, 1 << 31); // total_len
        write_u64_le(&mut lying, frame.checksum);
        lying.extend_from_slice(&honest[..honest.len().min(64)]);
        assert!(matches!(
            FramedBlob::from_bytes(&lying),
            Err(CodecError::Corrupt("frame block count exceeds payload"))
        ));
    }

    #[test]
    fn geometry_lies_rejected() {
        let seq = sample(1_000);
        let frame = compress_serial(&*compressor_for(Algorithm::Raw), &seq, 256).unwrap();

        // Wrong count for the declared length.
        let mut bad = frame.clone();
        bad.blocks.pop();
        assert!(matches!(
            FramedBlob::from_bytes(&bad.to_bytes()),
            Err(CodecError::Corrupt("frame block count disagrees with length"))
        ));

        // Zero block size.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(FRAME_VERSION);
        write_uvarint(&mut bytes, 0);
        write_uvarint(&mut bytes, 0);
        write_uvarint(&mut bytes, 0);
        write_u64_le(&mut bytes, 0);
        assert!(matches!(
            FramedBlob::from_bytes(&bytes),
            Err(CodecError::Corrupt("frame block size out of range"))
        ));

        // Declared total beyond the frame limit.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(FRAME_VERSION);
        write_uvarint(&mut bytes, 4);
        write_uvarint(&mut bytes, 2);
        write_uvarint(&mut bytes, MAX_FRAME_BASES + 1);
        write_u64_le(&mut bytes, 0);
        assert!(FramedBlob::from_bytes(&bytes).is_err());
    }
}
