//! GenCompress port (paper ref \[14\]).
//!
//! §III-A: *"It searches the optimal prefix of unprocessed substring
//! which has approximate match in processed substring to encode it
//! efficiently. It limits the search by putting constraint at the edit
//! operation using a threshold value."* GenCompress-1 scores approximate
//! repeats with **Hamming distance** (substitutions only); that is the
//! variant ported here, with the exact-seed + mismatch-tolerant extension
//! the original uses.
//!
//! Cost profile (the paper's observations, which the selection framework
//! learns):
//!
//! * best compression ratio of the four — approximate repeats capture the
//!   99.9 %-similar mutated copies exact-only DNAX misses;
//! * slowest compression ("compression time for Gencompress is bad due
//!   to its edit distance operation", §IV-B) — every chain candidate is
//!   scored by extension, not just the longest exact one;
//! * high RAM ("The RAM usage of the Gencompress is high due to the fact
//!   that it looks for the approximate repeats", §III-A).

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::models::ContextModel;
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder, RepeatKind};
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The GenCompress compressor (GenCompress-1: Hamming-distance repeats).
#[derive(Clone, Debug)]
pub struct GenCompress {
    /// Seed search configuration.
    pub search: RepeatConfig,
    /// Minimum (approximate) repeat length worth a pointer.
    pub min_repeat: usize,
    /// Mismatch budget per approximate repeat — the paper's "threshold
    /// value" constraining edit operations.
    pub max_mismatches: usize,
    /// A mismatch is only tolerated if followed by at least this many
    /// matching bases (prevents degenerate all-mismatch extensions).
    pub resync: usize,
    /// Order of the literal-fallback context model.
    pub literal_order: usize,
}

impl Default for GenCompress {
    fn default() -> Self {
        GenCompress {
            search: RepeatConfig {
                seed_len: 12,
                max_chain: 96,
                window: 0,
                search_revcomp: true,
            },
            min_repeat: 20,
            max_mismatches: 24,
            resync: 4,
            literal_order: 2,
        }
    }
}

impl GenCompress {
    /// GenCompress with a custom mismatch budget (ablation knob).
    pub fn with_mismatch_budget(max_mismatches: usize) -> Self {
        GenCompress {
            max_mismatches,
            ..GenCompress::default()
        }
    }
}

/// An accepted approximate repeat.
#[derive(Clone, Debug)]
struct ApproxRepeat {
    /// Source start (forward) or source end (reverse complement).
    src: usize,
    /// Target length (equals source length — Hamming, no indels).
    len: usize,
    kind: RepeatKind,
    /// Mismatch positions (offset within the repeat) and replacement
    /// bases, ascending offsets. Empty for reverse-complement repeats.
    subs: Vec<(u32, Base)>,
}

enum Segment {
    Repeat(ApproxRepeat),
    Literals { start: usize, len: usize },
}

impl GenCompress {
    /// Extend an exact forward seed at `src → dst` into a Hamming
    /// approximate repeat. Returns `(len, subs)`.
    fn extend_hamming(
        &self,
        bases: &[Base],
        src: usize,
        dst: usize,
        meter: &mut Meter,
    ) -> (usize, Vec<(u32, Base)>) {
        let n = bases.len();
        // No-overlap constraint keeps edit replay simple and faithful to
        // GenCompress's processed/unprocessed split.
        let max_len = (n - dst).min(dst - src);
        let mut subs: Vec<(u32, Base)> = Vec::new();
        let mut l = 0usize;
        let mut best_l = 0usize;
        let mut best_subs_len = 0usize;
        while l < max_len {
            meter.work(1);
            if bases[src + l] == bases[dst + l] {
                l += 1;
                // A position is only *kept* if the tail ends on a match.
                best_l = l;
                best_subs_len = subs.len();
                continue;
            }
            // Mismatch: tolerate if budget remains and a resync run
            // follows.
            if subs.len() >= self.max_mismatches {
                break;
            }
            let run_ok = (1..=self.resync).all(|k| {
                dst + l + k < n
                    && src + l + k < dst // keep within no-overlap source
                    && l + k < max_len
                    && bases[src + l + k] == bases[dst + l + k]
            });
            meter.work(self.resync as u64);
            if !run_ok {
                break;
            }
            subs.push((l as u32, bases[dst + l]));
            l += 1;
        }
        subs.truncate(best_subs_len);
        (best_l, subs)
    }

    /// Find the best approximate repeat at `dst`, scoring *every* chain
    /// candidate (the "optimal prefix" search).
    fn find_approx(
        &self,
        bases: &[Base],
        finder: &RepeatFinder<'_>,
        dst: usize,
        meter: &mut Meter,
    ) -> Option<ApproxRepeat> {
        // Reverse-complement candidates stay exact (GenCompress-2
        // territory otherwise).
        let exact = finder.find(dst);
        let mut best: Option<ApproxRepeat> = None;
        let mut best_gain: i64 = 0;
        if let Some(m) = exact {
            if m.kind == RepeatKind::ReverseComplement && m.len >= self.min_repeat {
                let gain = 2 * m.len as i64 - pointer_cost_bits(m.len, dst - m.src, 0);
                if gain > best_gain {
                    best_gain = gain;
                    best = Some(ApproxRepeat {
                        src: m.src,
                        len: m.len,
                        kind: RepeatKind::ReverseComplement,
                        subs: Vec::new(),
                    });
                }
            }
        }
        // Score every forward seed candidate by Hamming extension.
        for cand in forward_candidates(finder, dst, self.search.max_chain) {
            meter.work(4);
            if cand >= dst {
                continue;
            }
            let (len, subs) = self.extend_hamming(bases, cand, dst, meter);
            if len < self.min_repeat {
                continue;
            }
            let gain =
                2 * len as i64 - pointer_cost_bits(len, dst - cand, subs.len());
            if gain > best_gain {
                best_gain = gain;
                best = Some(ApproxRepeat {
                    src: cand,
                    len,
                    kind: RepeatKind::Forward,
                    subs,
                });
            }
        }
        best
    }
}

/// Approximate encoded size of a repeat pointer, in bits.
fn pointer_cost_bits(len: usize, delta: usize, subs: usize) -> i64 {
    let g = |v: usize| 2 * (64 - (v as u64 + 1).leading_zeros() as i64) + 1;
    2 + g(len) + g(delta) + g(subs) + subs as i64 * (g(len) + 2)
}

/// All forward seed candidates on the chain at `dst` (up to `max_chain`).
fn forward_candidates(
    finder: &RepeatFinder<'_>,
    dst: usize,
    max_chain: usize,
) -> Vec<usize> {
    finder.forward_chain(dst, max_chain)
}

impl Compressor for GenCompress {
    fn algorithm(&self) -> Algorithm {
        Algorithm::GenCompress
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let mut finder = RepeatFinder::new(&bases, self.search);

        let mut segments: Vec<Segment> = Vec::new();
        let mut i = 0usize;
        let mut lit_start = 0usize;
        let mut scratch_peak = 0u64;
        while i < bases.len() {
            finder.advance(i);
            // Per-position cost: hashing plus candidate enumeration.
            meter.work(self.search.max_chain as u64 / 8 + 4);
            let m = self.find_approx(&bases, &finder, i, &mut meter);
            // The per-candidate scoring keeps O(max_chain) live extension
            // state — GenCompress's extra working set.
            scratch_peak = scratch_peak
                .max((self.search.max_chain * (self.max_mismatches * 8 + 64)) as u64);
            match m {
                Some(m) => {
                    if i > lit_start {
                        segments.push(Segment::Literals {
                            start: lit_start,
                            len: i - lit_start,
                        });
                    }
                    // The optimal-prefix search keeps re-scoring
                    // candidate extensions across the covered span, so
                    // repeat-covered bases cost as much as literal ones.
                    meter.work(m.len as u64 * 12);
                    i += m.len;
                    lit_start = i;
                    segments.push(Segment::Repeat(m));
                }
                None => i += 1,
            }
        }
        if bases.len() > lit_start {
            segments.push(Segment::Literals {
                start: lit_start,
                len: bases.len() - lit_start,
            });
        }

        let mut ctrl = BitWriter::new();
        let mut model = ContextModel::new(self.literal_order);
        let mut lit_enc = ArithEncoder::new();
        let mut dst = 0usize;
        for seg in &segments {
            match seg {
                Segment::Repeat(m) => {
                    ctrl.push_bit(true);
                    ctrl.push_bit(m.kind == RepeatKind::ReverseComplement);
                    gamma_encode(&mut ctrl, (m.len - self.min_repeat + 1) as u64)?;
                    let delta = match m.kind {
                        RepeatKind::Forward => (dst - 1 - m.src) as u64,
                        RepeatKind::ReverseComplement => (dst - m.src) as u64,
                    };
                    gamma_encode(&mut ctrl, delta + 1)?;
                    gamma_encode(&mut ctrl, m.subs.len() as u64 + 1)?;
                    let mut prev = 0u32;
                    for &(off, base) in &m.subs {
                        gamma_encode(&mut ctrl, (off - prev + 1) as u64)?;
                        ctrl.push_bits(base.code() as u64, 2);
                        prev = off + 1;
                    }
                    dst += m.len;
                    meter.work(2 + m.subs.len() as u64);
                }
                Segment::Literals { start, len } => {
                    ctrl.push_bit(false);
                    gamma_encode(&mut ctrl, *len as u64)?;
                    for b in &bases[*start..*start + *len] {
                        model.encode(&mut lit_enc, b.code() as usize);
                    }
                    dst += *len;
                    meter.work(*len as u64 * 2);
                }
            }
        }
        debug_assert_eq!(dst, bases.len());
        meter.heap_snapshot(
            finder.heap_bytes() as u64
                + bases.len() as u64
                + model.heap_bytes() as u64
                + scratch_peak
                + segments.len() as u64 * std::mem::size_of::<Segment>() as u64,
        );

        let ctrl_bytes = ctrl.into_bytes();
        let lit_bytes = lit_enc.finish();
        let mut payload = Vec::with_capacity(ctrl_bytes.len() + lit_bytes.len() + 8);
        write_uvarint(&mut payload, ctrl_bytes.len() as u64);
        payload.extend_from_slice(&ctrl_bytes);
        payload.extend_from_slice(&lit_bytes);
        let blob = CompressedBlob::new(Algorithm::GenCompress, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::GenCompress)?;
        let mut meter = Meter::new();
        let mut pos = 0usize;
        let ctrl_len = read_uvarint(&blob.payload, &mut pos)? as usize;
        let ctrl_end = pos
            .checked_add(ctrl_len)
            .filter(|&e| e <= blob.payload.len())
            .ok_or(CodecError::Corrupt("control stream length"))?;
        let mut ctrl = BitReader::new(&blob.payload[pos..ctrl_end]);
        let mut lit_dec = ArithDecoder::new(&blob.payload[ctrl_end..]);
        let mut model = ContextModel::new(self.literal_order);

        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            let is_repeat = ctrl.read_bit()?;
            if is_repeat {
                let revcomp = ctrl.read_bit()?;
                let len = gamma_decode(&mut ctrl)? as usize + self.min_repeat - 1;
                let delta = (gamma_decode(&mut ctrl)? - 1) as usize;
                let n_subs = (gamma_decode(&mut ctrl)? - 1) as usize;
                if n_subs > self.max_mismatches || n_subs > len {
                    return Err(CodecError::Corrupt("mismatch count out of range"));
                }
                let dst = out.len();
                if revcomp {
                    if n_subs != 0 {
                        return Err(CodecError::Corrupt("revcomp repeat with substitutions"));
                    }
                    let src_end = dst
                        .checked_sub(delta)
                        .ok_or(CodecError::Corrupt("revcomp distance"))?;
                    if len > src_end {
                        return Err(CodecError::Corrupt("revcomp length"));
                    }
                    for l in 0..len {
                        let b = out[src_end - 1 - l].complement();
                        out.push(b);
                    }
                } else {
                    let src = dst
                        .checked_sub(delta + 1)
                        .ok_or(CodecError::Corrupt("forward distance"))?;
                    if src + len > dst {
                        return Err(CodecError::Corrupt("approximate repeat overlaps"));
                    }
                    let start = out.len();
                    for l in 0..len {
                        let b = out[src + l];
                        out.push(b);
                    }
                    let mut prev = 0u32;
                    for _ in 0..n_subs {
                        let gap = gamma_decode(&mut ctrl)? - 1;
                        let off = prev as u64 + gap;
                        if off >= len as u64 {
                            return Err(CodecError::Corrupt("substitution offset"));
                        }
                        let code = ctrl.read_bits(2)? as u8;
                        out[start + off as usize] = Base::from_code(code);
                        prev = off as u32 + 1;
                    }
                }
                meter.work(len as u64 / 4 + n_subs as u64 + 2);
            } else {
                let len = gamma_decode(&mut ctrl)? as usize;
                if len == 0 || out.len() + len > blob.original_len {
                    return Err(CodecError::Corrupt("literal run overruns output"));
                }
                for _ in 0..len {
                    let code = model.decode(&mut lit_dec)?;
                    out.push(Base::from_code(code as u8));
                }
                meter.work(len as u64 * 2);
            }
            if out.len() > blob.original_len {
                return Err(CodecError::Corrupt("repeat overruns output"));
            }
        }
        meter.heap_snapshot(out.len() as u64 + model.heap_bytes() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnax::Dnax;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &GenCompress, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = GenCompress::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn captures_mutated_repeats_better_than_dnax() {
        // A genome whose repeat structure is all *mutated* copies: the
        // approximate matcher should clearly beat exact-only DNAX.
        let mut model = GenomeModel::random_only(0.5);
        model.mutated = dnacomp_seq::gen::RepeatClass {
            rate: 0.02,
            min_len: 100,
            max_len: 800,
            mutation_rate: 0.02,
        };
        model.back_window = 1 << 16;
        let seq = model.generate(60_000, 21);
        let gc = roundtrip(&GenCompress::default(), &seq);
        let dx = Dnax::default().compress(&seq).unwrap();
        assert!(
            gc.total_bytes() < dx.total_bytes(),
            "GenCompress {} vs DNAX {}",
            gc.total_bytes(),
            dx.total_bytes()
        );
    }

    #[test]
    fn compression_work_exceeds_dnax() {
        let seq = GenomeModel::default().generate(30_000, 5);
        let (_, gc) = GenCompress::default().compress_with_stats(&seq).unwrap();
        let (_, dx) = Dnax::default().compress_with_stats(&seq).unwrap();
        assert!(
            gc.work_units > dx.work_units,
            "GenCompress {} vs DNAX {}",
            gc.work_units,
            dx.work_units
        );
    }

    #[test]
    fn ram_exceeds_dnax() {
        let seq = GenomeModel::default().generate(30_000, 5);
        let (_, gc) = GenCompress::default().compress_with_stats(&seq).unwrap();
        let (_, dx) = Dnax::default().compress_with_stats(&seq).unwrap();
        assert!(gc.peak_heap_bytes > dx.peak_heap_bytes);
    }

    #[test]
    fn handles_planted_point_mutations() {
        // Source block + a copy with sparse substitutions: one repeat
        // record with subs should cover the copy.
        let block = GenomeModel::random_only(0.5).generate(3_000, 8);
        let mut text = block.unpack();
        let mut copy = block.unpack();
        for p in (97..2900).step_by(357) {
            copy[p] = copy[p].complement();
        }
        text.extend_from_slice(&copy);
        let seq = PackedSeq::from(text.as_slice());
        let blob = roundtrip(&GenCompress::default(), &seq);
        assert!(blob.bits_per_base() < 1.3, "{}", blob.bits_per_base());
    }

    #[test]
    fn exploits_revcomp_exactly() {
        let fwd = GenomeModel::random_only(0.5).generate(4_000, 9);
        let mut text = fwd.to_ascii();
        text.push_str(&fwd.reverse_complement().to_ascii());
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&GenCompress::default(), &seq);
        assert!(blob.bits_per_base() < 1.3, "{}", blob.bits_per_base());
    }

    #[test]
    fn mismatch_budget_ablation() {
        let mut model = GenomeModel::random_only(0.5);
        model.mutated = dnacomp_seq::gen::RepeatClass {
            rate: 0.02,
            min_len: 100,
            max_len: 600,
            mutation_rate: 0.03,
        };
        model.back_window = 1 << 16;
        let seq = model.generate(40_000, 31);
        let no_subs = roundtrip(&GenCompress::with_mismatch_budget(0), &seq);
        let default = roundtrip(&GenCompress::default(), &seq);
        assert!(default.total_bytes() <= no_subs.total_bytes());
    }

    #[test]
    fn corruption_never_yields_wrong_data() {
        // A flipped bit may land in inert padding (then decode succeeds
        // and must equal the original); any semantic damage must error.
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = GenCompress::default();
        let blob = c.compress(&seq).unwrap();
        for at in 0..blob.payload.len().min(64) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x04;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
        let mut trunc = blob.clone();
        trunc.payload.truncate(3);
        assert!(c.decompress(&trunc).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2500}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&GenCompress::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 100usize..4000) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&GenCompress::default(), &seq);
        }
    }
}
