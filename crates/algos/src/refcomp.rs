//! Vertical-mode reference-based compression (extension).
//!
//! The paper's future work asks for exactly this: "how vertical sequences
//! can be compress\[ed\] using horizontal algorithms by measuring their
//! tradeoffs" (§VI), and its related work describes the mechanism in
//! Wandelt & Leser's adaptive genome compression (§III, ref there as
//! \[1\]): a target genome is encoded against a *reference* genome using
//! three entry kinds —
//!
//! * `BC(i)` — *block-change*: subsequent entries are relative to
//!   reference block `i`;
//! * `RM(i, j)` — *relative match*: the input matches the current
//!   reference block at offset `i` for `j` characters;
//! * `R(s)` — *raw*: the string `s` is stored directly (2 bits/base).
//!
//! The paper reports compression ratios of ~1:400 on the 1000-genomes
//! data and that "by increasing block size more efficient results are
//! achieved" — both reproduced by the tests here (same-species targets
//! are 99.9 % identical, §II-B, so almost everything becomes long
//! relative matches).

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};
use std::collections::HashMap;

/// Seed length for anchoring matches in the reference.
const SEED: usize = 16;

/// Reference-based (vertical-mode) compressor.
#[derive(Clone, Debug)]
pub struct ReferenceCompressor {
    /// Reference block size in bases. Matches never cross a block
    /// boundary, as in the original scheme; larger blocks allow longer
    /// matches at the price of wider offsets.
    pub block: usize,
    /// Minimum relative-match length worth an `RM` entry.
    pub min_match: usize,
    /// Chain probes per anchor attempt.
    pub max_chain: usize,
}

impl Default for ReferenceCompressor {
    fn default() -> Self {
        ReferenceCompressor {
            block: 1 << 16,
            min_match: 24,
            max_chain: 32,
        }
    }
}

/// A pre-built index over a reference sequence, reusable across many
/// targets (the paper's scenario: one reference genome, many samples).
pub struct ReferenceIndex {
    bases: Vec<Base>,
    /// 16-mer → up to `KEEP` start positions.
    seeds: HashMap<u64, Vec<u32>>,
    block: usize,
}

impl ReferenceIndex {
    const KEEP: usize = 8;

    /// Index `reference` with the given block size.
    pub fn build(reference: &PackedSeq, block: usize) -> ReferenceIndex {
        assert!(block >= SEED, "block smaller than the seed length");
        let bases = reference.unpack();
        let mut seeds: HashMap<u64, Vec<u32>> = HashMap::new();
        if bases.len() >= SEED {
            let mask = (1u64 << (2 * SEED)) - 1;
            let mut kmer = 0u64;
            for (i, b) in bases.iter().enumerate() {
                kmer = ((kmer << 2) | b.code() as u64) & mask;
                if i + 1 >= SEED {
                    let start = (i + 1 - SEED) as u32;
                    let v = seeds.entry(kmer).or_default();
                    if v.len() < Self::KEEP {
                        v.push(start);
                    }
                }
            }
        }
        ReferenceIndex {
            bases,
            seeds,
            block,
        }
    }

    /// Reference length in bases.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` for an empty reference.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// Approximate heap bytes (for resource accounting).
    pub fn heap_bytes(&self) -> usize {
        self.bases.capacity()
            + self
                .seeds.values().map(|v| 16 + v.capacity() * 4)
                .sum::<usize>()
    }

    /// Longest reference match for `target[i..]`, truncated at the
    /// containing reference block boundary: `(ref_pos, len)`.
    fn find(&self, target: &[Base], i: usize, max_chain: usize) -> Option<(usize, usize)> {
        if i + SEED > target.len() {
            return None;
        }
        let mut kmer = 0u64;
        for b in &target[i..i + SEED] {
            kmer = (kmer << 2) | b.code() as u64;
        }
        let cands = self.seeds.get(&kmer)?;
        let mut best: Option<(usize, usize)> = None;
        for &c in cands.iter().take(max_chain) {
            let c = c as usize;
            let block_end = (c / self.block + 1) * self.block;
            let limit = (target.len() - i)
                .min(self.bases.len() - c)
                .min(block_end - c);
            let mut l = 0usize;
            while l < limit && self.bases[c + l] == target[i + l] {
                l += 1;
            }
            if best.is_none_or(|(_, bl)| l > bl) {
                best = Some((c, l));
            }
        }
        best
    }
}

impl ReferenceCompressor {
    /// Compress `target` against `reference`. The result only decodes
    /// with the same reference (its checksum is embedded).
    pub fn compress_with_stats(
        &self,
        index: &ReferenceIndex,
        target: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        assert_eq!(index.block, self.block, "index built with another block size");
        let mut meter = Meter::new();
        let bases = target.unpack();
        let mut w = BitWriter::new();
        let mut cur_block = usize::MAX;
        let mut i = 0usize;
        let mut raw_run: Vec<Base> = Vec::new();
        let flush = |w: &mut BitWriter, run: &mut Vec<Base>| -> Result<(), CodecError> {
            if !run.is_empty() {
                // Entry tag 0b00: R(s).
                w.push_bits(0b00, 2);
                gamma_encode(w, run.len() as u64)?;
                for b in run.drain(..) {
                    w.push_bits(b.code() as u64, 2);
                }
            }
            Ok(())
        };
        while i < bases.len() {
            meter.work(2);
            match index.find(&bases, i, self.max_chain) {
                Some((pos, len)) if len >= self.min_match => {
                    flush(&mut w, &mut raw_run)?;
                    let block = pos / self.block;
                    if block != cur_block {
                        // Entry tag 0b01: BC(i).
                        w.push_bits(0b01, 2);
                        gamma_encode(&mut w, block as u64 + 1)?;
                        cur_block = block;
                    }
                    // Entry tag 0b10: RM(offset, len).
                    w.push_bits(0b10, 2);
                    gamma_encode(&mut w, (pos % self.block) as u64 + 1)?;
                    gamma_encode(&mut w, (len - self.min_match + 1) as u64)?;
                    meter.work(len as u64 / 8 + 2);
                    i += len;
                }
                _ => {
                    raw_run.push(bases[i]);
                    i += 1;
                }
            }
        }
        flush(&mut w, &mut raw_run)?;
        // Bind the payload to the reference by prefixing its checksum.
        let mut payload = Vec::new();
        let ref_sum = {
            let mut h = dnacomp_codec::checksum::Fnv1a::new();
            for b in &index.bases {
                h.update_byte(b.code());
            }
            h.digest()
        };
        dnacomp_codec::varint::write_u64_le(&mut payload, ref_sum);
        payload.extend_from_slice(&w.into_bytes());
        meter.heap_snapshot(index.heap_bytes() as u64 + bases.len() as u64);
        let blob = CompressedBlob::new(Algorithm::Reference, target, payload);
        Ok((blob, meter.finish()))
    }

    /// Convenience: compress and return just the blob.
    pub fn compress(
        &self,
        index: &ReferenceIndex,
        target: &PackedSeq,
    ) -> Result<CompressedBlob, CodecError> {
        self.compress_with_stats(index, target).map(|(b, _)| b)
    }

    /// Decompress against the same reference.
    pub fn decompress(
        &self,
        index: &ReferenceIndex,
        blob: &CompressedBlob,
    ) -> Result<PackedSeq, CodecError> {
        blob.expect_algorithm(Algorithm::Reference)?;
        let mut pos = 0usize;
        let stored_sum = dnacomp_codec::varint::read_u64_le(&blob.payload, &mut pos)?;
        let ref_sum = {
            let mut h = dnacomp_codec::checksum::Fnv1a::new();
            for b in &index.bases {
                h.update_byte(b.code());
            }
            h.digest()
        };
        if stored_sum != ref_sum {
            return Err(CodecError::ChecksumMismatch {
                expected: stored_sum,
                actual: ref_sum,
            });
        }
        let mut r = BitReader::new(&blob.payload[pos..]);
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        let mut cur_block: Option<usize> = None;
        while out.len() < blob.original_len {
            match r.read_bits(2)? {
                0b00 => {
                    let run = gamma_decode(&mut r)? as usize;
                    if out.len() + run > blob.original_len {
                        return Err(CodecError::Corrupt("raw run overruns output"));
                    }
                    for _ in 0..run {
                        out.push(Base::from_code(r.read_bits(2)? as u8));
                    }
                }
                0b01 => {
                    let block = (gamma_decode(&mut r)? - 1) as usize;
                    if block * self.block >= index.bases.len() {
                        return Err(CodecError::Corrupt("block change out of range"));
                    }
                    cur_block = Some(block);
                }
                0b10 => {
                    let off = (gamma_decode(&mut r)? - 1) as usize;
                    let len = gamma_decode(&mut r)? as usize + self.min_match - 1;
                    let block =
                        cur_block.ok_or(CodecError::Corrupt("RM before any BC"))?;
                    let start = block * self.block + off;
                    if start + len > index.bases.len()
                        || off + len > self.block
                        || out.len() + len > blob.original_len
                    {
                        return Err(CodecError::Corrupt("relative match out of range"));
                    }
                    out.extend_from_slice(&index.bases[start..start + len]);
                }
                _ => return Err(CodecError::Corrupt("unknown entry tag")),
            }
        }
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn mutated_copy(reference: &PackedSeq, every: usize, seed: u64) -> PackedSeq {
        let mut bases = reference.unpack();
        let mut x = seed | 1;
        let mut i = every;
        while i < bases.len() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            bases[i] = Base::from_code(bases[i].code().wrapping_add(1 + (x >> 60) as u8 % 3));
            i += every;
        }
        PackedSeq::from(bases.as_slice())
    }

    #[test]
    fn roundtrip_identical_target() {
        let reference = GenomeModel::default().generate(50_000, 1);
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&reference, rc.block);
        let blob = rc.compress(&index, &reference).unwrap();
        assert_eq!(rc.decompress(&index, &blob).unwrap(), reference);
        // Same-sequence compression should be spectacular (paper: 1:400
        // on 1000-genomes; here the target *is* the reference).
        let ratio = reference.len() as f64 / blob.total_bytes() as f64;
        assert!(ratio > 100.0, "ratio 1:{ratio:.0}");
    }

    #[test]
    fn roundtrip_point_mutated_target() {
        // 1 mutation per 1000 bases = the paper's 99.9 % identity claim.
        let reference = GenomeModel::default().generate(80_000, 2);
        let target = mutated_copy(&reference, 1_000, 7);
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&reference, rc.block);
        let blob = rc.compress(&index, &target).unwrap();
        assert_eq!(rc.decompress(&index, &blob).unwrap(), target);
        let ratio = target.len() as f64 / blob.total_bytes() as f64;
        assert!(ratio > 40.0, "ratio 1:{ratio:.0}");
    }

    #[test]
    fn unrelated_target_still_roundtrips() {
        let reference = GenomeModel::random_only(0.5).generate(20_000, 3);
        let target = GenomeModel::random_only(0.5).generate(10_000, 99);
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&reference, rc.block);
        let blob = rc.compress(&index, &target).unwrap();
        assert_eq!(rc.decompress(&index, &blob).unwrap(), target);
        // Nothing matches: all raw, ≈2 bits/base + overhead.
        assert!(blob.bits_per_base() < 2.4);
    }

    #[test]
    fn bigger_blocks_compress_better() {
        // The paper's §III observation: "by increasing block size more
        // efficient results are achieved".
        let reference = GenomeModel::default().generate(120_000, 5);
        let target = mutated_copy(&reference, 2_000, 11);
        let mut sizes = Vec::new();
        for block in [1usize << 10, 1 << 13, 1 << 17] {
            let rc = ReferenceCompressor {
                block,
                ..ReferenceCompressor::default()
            };
            let index = ReferenceIndex::build(&reference, block);
            let blob = rc.compress(&index, &target).unwrap();
            assert_eq!(rc.decompress(&index, &blob).unwrap(), target);
            sizes.push(blob.total_bytes());
        }
        assert!(
            sizes[0] > sizes[1] && sizes[1] > sizes[2],
            "sizes {sizes:?} not decreasing with block size"
        );
    }

    #[test]
    fn wrong_reference_rejected() {
        let reference = GenomeModel::default().generate(20_000, 6);
        let other = GenomeModel::default().generate(20_000, 66);
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&reference, rc.block);
        let blob = rc.compress(&index, &reference).unwrap();
        let wrong = ReferenceIndex::build(&other, rc.block);
        assert!(matches!(
            rc.decompress(&wrong, &blob),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn empty_reference_and_target() {
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&PackedSeq::new(), rc.block);
        assert!(index.is_empty());
        let target = PackedSeq::from_ascii(b"ACGTACGT").unwrap();
        let blob = rc.compress(&index, &target).unwrap();
        assert_eq!(rc.decompress(&index, &blob).unwrap(), target);
        let blob = rc.compress(&index, &PackedSeq::new()).unwrap();
        assert_eq!(rc.decompress(&index, &blob).unwrap(), PackedSeq::new());
    }

    #[test]
    fn corruption_detected() {
        let reference = GenomeModel::default().generate(30_000, 8);
        let rc = ReferenceCompressor::default();
        let index = ReferenceIndex::build(&reference, rc.block);
        let target = mutated_copy(&reference, 500, 3);
        let blob = rc.compress(&index, &target).unwrap();
        let mut bad = blob.clone();
        let at = bad.payload.len() - 1;
        bad.payload[at] ^= 0xFF;
        if let Ok(back) = rc.decompress(&index, &bad) {
            assert_eq!(back, target);
        }
        let mut trunc = blob.clone();
        trunc.payload.truncate(blob.payload.len() / 2);
        assert!(rc.decompress(&index, &trunc).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary_pairs(r in "[ACGT]{0,800}", t in "[ACGT]{0,800}") {
            let reference = PackedSeq::from_ascii(r.as_bytes()).unwrap();
            let target = PackedSeq::from_ascii(t.as_bytes()).unwrap();
            let rc = ReferenceCompressor { block: 256, min_match: 16, max_chain: 8 };
            let index = ReferenceIndex::build(&reference, rc.block);
            let blob = rc.compress(&index, &target).unwrap();
            prop_assert_eq!(rc.decompress(&index, &blob).unwrap(), target);
        }
    }
}
