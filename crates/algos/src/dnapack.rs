//! DNAPack-style block selector (extension algorithm; paper ref \[18\]).
//!
//! DNAPack "uses hamming distance for repeating substrings while for
//! non-repeats it uses one of three methods (order-2 arithmetic, context
//! tree weighting, and naïve 2 bits per symbol)" (§III-A / Table 1). The
//! defining idea is *per-region method selection*. This lite port keeps
//! that idea at block granularity: the input is split into fixed blocks
//! and each block is encoded with whichever of three methods is smallest:
//!
//! * `Raw2Bit` — naïve 2 bits per base;
//! * `Order0` — adaptive order-0 arithmetic (fresh model per block);
//! * `Order2` — adaptive order-2 arithmetic (fresh model per block).
//!
//! Fresh per-block models keep each block's choice independent and
//! decodable without cross-block state. The full DNAPack dynamic program
//! over repeat boundaries is out of scope (documented in DESIGN.md);
//! blocks are the simplification.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::models::ContextModel;
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// Per-block encoding method.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Method {
    Raw2Bit = 0,
    Order0 = 1,
    Order2 = 2,
}

impl Method {
    fn from_tag(tag: u8) -> Result<Method, CodecError> {
        match tag {
            0 => Ok(Method::Raw2Bit),
            1 => Ok(Method::Order0),
            2 => Ok(Method::Order2),
            t => Err(CodecError::UnknownFormat(t)),
        }
    }
}

/// The DNAPack-lite compressor.
#[derive(Clone, Debug)]
pub struct DnaPackLite {
    /// Block size in bases.
    pub block: usize,
}

impl Default for DnaPackLite {
    fn default() -> Self {
        DnaPackLite { block: 2048 }
    }
}

fn encode_raw(bases: &[Base]) -> Vec<u8> {
    let packed: PackedSeq = bases.iter().copied().collect();
    packed.as_words().to_vec()
}

fn decode_raw(bytes: &[u8], len: usize) -> Result<Vec<Base>, CodecError> {
    let seq = PackedSeq::from_words(bytes.to_vec(), len)
        .map_err(|_| CodecError::Corrupt("raw block too short"))?;
    Ok(seq.unpack())
}

fn encode_arith(bases: &[Base], order: usize) -> Vec<u8> {
    let mut model = ContextModel::new(order);
    let mut enc = ArithEncoder::new();
    for b in bases {
        model.encode(&mut enc, b.code() as usize);
    }
    enc.finish()
}

fn decode_arith(bytes: &[u8], len: usize, order: usize) -> Result<Vec<Base>, CodecError> {
    let mut model = ContextModel::new(order);
    let mut dec = ArithDecoder::new(bytes);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(Base::from_code(model.decode(&mut dec)? as u8));
    }
    Ok(out)
}

impl Compressor for DnaPackLite {
    fn algorithm(&self) -> Algorithm {
        Algorithm::DnaPackLite
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let mut payload = Vec::new();
        for chunk in bases.chunks(self.block.max(1)) {
            let raw = encode_raw(chunk);
            let o0 = encode_arith(chunk, 0);
            let o2 = encode_arith(chunk, 2);
            // Three trial encodings per block is exactly DNAPack's cost
            // structure: good ratio, ~3x the encode work.
            meter.work(chunk.len() as u64 * 5);
            let (method, bytes) = [
                (Method::Raw2Bit, raw),
                (Method::Order0, o0),
                (Method::Order2, o2),
            ]
            .into_iter()
            .min_by_key(|(m, b)| (b.len(), *m as u8))
            .expect("three candidates");
            payload.push(method as u8);
            write_uvarint(&mut payload, bytes.len() as u64);
            payload.extend_from_slice(&bytes);
        }
        meter.heap_snapshot(
            bases.len() as u64
                + payload.len() as u64
                + ContextModel::new(2).heap_bytes() as u64 * 2
                + self.block as u64 * 3,
        );
        let blob = CompressedBlob::new(Algorithm::DnaPackLite, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::DnaPackLite)?;
        let mut meter = Meter::new();
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        let mut pos = 0usize;
        while out.len() < blob.original_len {
            let tag = *blob
                .payload
                .get(pos)
                .ok_or(CodecError::UnexpectedEof)?;
            pos += 1;
            let method = Method::from_tag(tag)?;
            let nbytes = read_uvarint(&blob.payload, &mut pos)? as usize;
            let end = pos
                .checked_add(nbytes)
                .filter(|&e| e <= blob.payload.len())
                .ok_or(CodecError::Corrupt("block length"))?;
            let body = &blob.payload[pos..end];
            pos = end;
            let remaining = blob.original_len - out.len();
            let len = remaining.min(self.block.max(1));
            let decoded = match method {
                Method::Raw2Bit => decode_raw(body, len)?,
                Method::Order0 => decode_arith(body, len, 0)?,
                Method::Order2 => decode_arith(body, len, 2)?,
            };
            meter.work(len as u64 * 2);
            out.extend_from_slice(&decoded);
        }
        meter.heap_snapshot(out.len() as u64 + self.block as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &DnaPackLite, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = DnaPackLite::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "CCCCCCC"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn never_much_worse_than_two_bits() {
        // The Raw2Bit arm guarantees ≈2 bits/base worst case + overhead.
        let seq = GenomeModel::random_only(0.5).generate(30_000, 3);
        let blob = roundtrip(&DnaPackLite::default(), &seq);
        assert!(blob.bits_per_base() < 2.1, "{}", blob.bits_per_base());
    }

    #[test]
    fn skewed_blocks_pick_arith() {
        // GC-poor sequence: order-0 beats 2-bit.
        let seq = GenomeModel::random_only(0.05).generate(20_000, 5);
        let blob = roundtrip(&DnaPackLite::default(), &seq);
        assert!(blob.bits_per_base() < 1.6, "{}", blob.bits_per_base());
    }

    #[test]
    fn periodic_blocks_pick_order2() {
        let seq = PackedSeq::from_ascii("ACG".repeat(8000).as_bytes()).unwrap();
        let blob = roundtrip(&DnaPackLite::default(), &seq);
        assert!(blob.bits_per_base() < 0.5, "{}", blob.bits_per_base());
    }

    #[test]
    fn block_size_one_is_degenerate_but_correct() {
        let c = DnaPackLite { block: 1 };
        let seq = GenomeModel::default().generate(200, 7);
        roundtrip(&c, &seq);
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = DnaPackLite::default();
        let blob = c.compress(&seq).unwrap();
        let mut bad = blob.clone();
        bad.payload[0] = 9; // invalid method tag
        assert!(c.decompress(&bad).is_err());
        let mut bad = blob.clone();
        let at = bad.payload.len() / 2;
        bad.payload[at] ^= 0xFF;
        assert!(c.decompress(&bad).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,3000}", block in 1usize..512) {
            let c = DnaPackLite { block };
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&c, &seq);
        }
    }
}
