//! # dnacomp-algos — the evaluated DNA compressors
//!
//! From-scratch Rust ports of the four algorithms the paper benchmarks
//! (§I: "The algorithms selected for the experiments include: CTW, DNAX,
//! Gencompress, and Gzip") plus two extension algorithms from its survey
//! (Table 1): BioCompress-2 and a DNAPack-style block selector.
//!
//! | Type | Strategy (Table 1) |
//! |------|--------------------|
//! | [`GzipRs`] | LZ77 + canonical Huffman over the ASCII file (general-purpose) |
//! | [`Ctw`] | context-tree weighting over bit-decomposed bases + arithmetic coding |
//! | [`GenCompress`] | approximate repeats via edit operations, optimal greedy prefix |
//! | [`Dnax`] | exact + reverse-complement repeats, arithmetic coding fallback |
//! | [`BioCompress2`] | exact/reverse-complement repeats, Fibonacci codes, order-2 arithmetic |
//! | [`DnaPackLite`] | per-block best of {2-bit, order-2 arithmetic, repeat copy} |
//!
//! Every compressor implements [`Compressor`]: a checksummed container
//! roundtrip plus deterministic **resource accounting** ([`ResourceStats`])
//! — the work/RAM numbers the cloud simulator turns into the paper's
//! time-and-memory observations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biocompress;
pub mod blob;
pub mod bwt;
pub mod cfact;
pub mod ctw;
pub mod ctwlz;
pub mod dnac;
pub mod dnacompress;
pub mod dnapack;
pub mod dnax;
pub mod frame;
pub mod gencompress;
pub mod gsqz;
pub mod gzip;
pub mod parallel;
pub mod pool;
pub mod rawpack;
pub mod stats;
pub mod refcomp;
pub mod sequitur;
pub mod xm;

pub use biocompress::BioCompress2;
pub use blob::{Algorithm, CompressedBlob};
pub use bwt::Bwt;
pub use cfact::Cfact;
pub use frame::FramedBlob;
pub use parallel::ParallelCompressor;
pub use pool::{PoolStats, TaskPool};
pub use ctw::Ctw;
pub use ctwlz::CtwLz;
pub use dnac::Dnac;
pub use dnacompress::DnaCompress;
pub use dnapack::DnaPackLite;
pub use dnax::Dnax;
pub use gencompress::GenCompress;
pub use gsqz::GSqz;
pub use gzip::GzipRs;
pub use rawpack::RawPack;
pub use stats::ResourceStats;
pub use refcomp::{ReferenceCompressor, ReferenceIndex};
pub use sequitur::DnaSequitur;
pub use xm::XmLite;

use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// A DNA sequence compressor with deterministic resource accounting.
///
/// # Statelessness contract
///
/// Implementations are **stateless across jobs**: all methods take
/// `&self`, the trait requires `Send + Sync`, and every model/table a
/// codec builds lives on the call stack of the method that needs it.
/// One boxed compressor can therefore be reused for any number of
/// sequences — including concurrently from a worker pool — and must
/// produce byte-identical output to a freshly constructed instance
/// (`lib::tests::compressors_are_reusable_across_threads` enforces
/// this for the whole registry).
pub trait Compressor: Send + Sync {
    /// The algorithm this compressor implements.
    fn algorithm(&self) -> Algorithm;

    /// Human-readable name (the paper's spelling).
    fn name(&self) -> &'static str {
        self.algorithm().name()
    }

    /// Compress, returning the container blob plus resource statistics.
    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError>;

    /// Decompress a blob produced by this algorithm, with statistics.
    ///
    /// Implementations must verify the container checksum and reject
    /// blobs from other algorithms with [`CodecError::UnknownFormat`].
    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError>;

    /// Compress, discarding statistics.
    fn compress(&self, seq: &PackedSeq) -> Result<CompressedBlob, CodecError> {
        self.compress_with_stats(seq).map(|(b, _)| b)
    }

    /// Decompress, discarding statistics.
    fn decompress(&self, blob: &CompressedBlob) -> Result<PackedSeq, CodecError> {
        self.decompress_with_stats(blob).map(|(s, _)| s)
    }

    /// Wall-clock breakdown of one compression run as
    /// `(model_ms, entropy_ms)`, or `None` for algorithms whose pipeline
    /// has no model/entropy split. Implementations typically time a full
    /// run, then a second run with the entropy stage replaced by a
    /// discard sink; the difference attributes time to the entropy coder.
    fn stage_times(&self, _seq: &PackedSeq) -> Option<(f64, f64)> {
        None
    }

    /// Name of the entropy backend this instance codes with — `"arith"`
    /// for the classic carry-less arithmetic coder (the default for the
    /// legacy algorithms), `"rans"` for the interleaved rANS speed tier.
    fn entropy_backend(&self) -> &'static str {
        "arith"
    }
}

/// Construct the default-configured compressor for `algorithm`.
///
/// # Panics
/// For [`Algorithm::Reference`], which needs a reference sequence — use
/// [`refcomp::ReferenceCompressor`] directly.
pub fn compressor_for(algorithm: Algorithm) -> Box<dyn Compressor> {
    match algorithm {
        Algorithm::Gzip => Box::new(GzipRs::default()),
        Algorithm::Ctw => Box::new(Ctw::default()),
        Algorithm::GenCompress => Box::new(GenCompress::default()),
        Algorithm::Dnax => Box::new(Dnax::default()),
        Algorithm::BioCompress2 => Box::new(BioCompress2::default()),
        Algorithm::DnaPackLite => Box::new(DnaPackLite::default()),
        Algorithm::Cfact => Box::new(Cfact::default()),
        Algorithm::XmLite => Box::new(XmLite::default()),
        Algorithm::Reference => {
            panic!("reference-based compression needs a reference; use ReferenceCompressor")
        }
        Algorithm::Dnac => Box::new(Dnac::default()),
        Algorithm::DnaCompress => Box::new(DnaCompress::default()),
        Algorithm::DnaSequitur => Box::new(DnaSequitur::default()),
        Algorithm::CtwLz => Box::new(CtwLz::default()),
        Algorithm::Raw => Box::new(RawPack),
        Algorithm::Bwt => Box::new(Bwt::default()),
    }
}

/// The four algorithms the paper evaluates, in its order.
pub fn paper_algorithms() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(Ctw::default()),
        Box::new(Dnax::default()),
        Box::new(GenCompress::default()),
        Box::new(GzipRs::default()),
    ]
}

/// All implemented algorithms (paper four + extensions).
pub fn all_algorithms() -> Vec<Box<dyn Compressor>> {
    let mut v = paper_algorithms();
    v.push(Box::new(BioCompress2::default()));
    v.push(Box::new(DnaPackLite::default()));
    v.push(Box::new(Cfact::default()));
    v.push(Box::new(XmLite::default()));
    v.push(Box::new(Dnac::default()));
    v.push(Box::new(DnaCompress::default()));
    v.push(Box::new(DnaSequitur::default()));
    v.push(Box::new(CtwLz::default()));
    v.push(Box::new(RawPack));
    v.push(Box::new(Bwt::default()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_algorithms() {
        for alg in Algorithm::HORIZONTAL {
            let c = compressor_for(alg);
            assert_eq!(c.algorithm(), alg);
        }
    }

    #[test]
    fn compressors_are_reusable_across_threads() {
        use dnacomp_seq::gen::GenomeModel;
        use std::sync::Arc;
        // One shared instance per algorithm, driven from several
        // threads on different sequences: output must match a fresh
        // instance compressing the same input (no hidden state).
        for alg in Algorithm::HORIZONTAL {
            let shared: Arc<dyn Compressor> = Arc::from(compressor_for(alg));
            let threads: Vec<_> = (0..3u64)
                .map(|t| {
                    let c = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        let seq = GenomeModel::default().generate(4_000 + t as usize * 512, t);
                        let blob = c.compress(&seq).unwrap();
                        assert_eq!(c.decompress(&blob).unwrap(), seq);
                        (seq, blob)
                    })
                })
                .collect();
            for t in threads {
                let (seq, blob) = t.join().unwrap();
                let fresh = compressor_for(alg).compress(&seq).unwrap();
                assert_eq!(blob, fresh, "{alg} output depends on instance history");
            }
        }
    }

    #[test]
    fn paper_set_is_the_four() {
        let names: Vec<&str> = paper_algorithms().iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["CTW", "DNAX", "GenCompress", "Gzip"]);
    }
}
