//! The compressed container format shared by every algorithm.
//!
//! Layout (bytes):
//!
//! ```text
//! 0..2   magic  b"DX"
//! 2      format version (1)
//! 3      algorithm tag
//! 4..    uvarint: original length in bases
//! ..     u64 LE: FNV-1a checksum of the original packed words
//! ..     payload (algorithm-specific bit stream)
//! ```
//!
//! The checksum lets the decompressor prove integrity end-to-end — the
//! paper's scenario ships blobs through a cloud blob store, and silent
//! corruption of genomic data is unacceptable downstream.

use dnacomp_codec::checksum::fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// Magic prefix of every container.
pub const MAGIC: [u8; 2] = *b"DX";
/// Original container format version: arithmetic-coded payloads.
pub const VERSION: u8 = 1;
/// Speed-tier container version: rANS-coded payloads (PR 10). Decoders
/// branch on the version byte, so every v1 blob ever written still
/// decodes bit-exactly through the legacy arithmetic path.
pub const VERSION_SPEED: u8 = 2;

/// Upper bound on any allocation a decoder makes *up front* from the
/// container header, in bases (4 Mi ≈ one bacterial chromosome).
///
/// `original_len` travels in the header, so a corrupted or hostile blob
/// can claim any length up to `u64::MAX`; decoders that pre-allocate it
/// verbatim hand the attacker an OOM. Buffers start at
/// [`CompressedBlob::decode_capacity`] instead and grow with the bytes
/// the payload actually decodes — a lying header then costs at most one
/// bounded allocation before the payload runs out and the decode fails
/// with a typed error.
pub const MAX_PREALLOC_BASES: usize = 1 << 22;

/// The implemented compression algorithms.
#[derive(
    Clone,
    Copy,
    Debug,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    serde::Serialize,
    serde::Deserialize,
)]
#[repr(u8)]
pub enum Algorithm {
    /// General-purpose LZ77 + Huffman (the paper's Gzip).
    Gzip = 0,
    /// Context-tree weighting.
    Ctw = 1,
    /// Approximate-repeat substitution with edit operations.
    GenCompress = 2,
    /// Exact + reverse-complement repeats with arithmetic fallback.
    Dnax = 3,
    /// BioCompress-2 (extension; paper Table 1).
    BioCompress2 = 4,
    /// DNAPack-style per-block selector (extension; paper Table 1).
    DnaPackLite = 5,
    /// Cfact-style two-pass suffix-structure compressor (extension;
    /// paper Table 1).
    Cfact = 6,
    /// XM-lite expert-mixture statistical compressor (extension; paper
    /// §III-A ref \[19\]).
    XmLite = 7,
    /// Vertical-mode reference-based compression (extension; paper §VI
    /// future work). Not a [`crate::Compressor`]: decoding needs the
    /// reference, via [`crate::refcomp::ReferenceCompressor`].
    Reference = 8,
    /// DNAC four-phase suffix-structure compressor with optimal
    /// non-overlapping repeat selection (extension; paper §III-A).
    Dnac = 9,
    /// DNACompress with PatternHunter spaced seeds (extension; paper
    /// §III-A / Table 1).
    DnaCompress = 10,
    /// Grammar-based DNASequitur via recursive pairing (extension; paper
    /// §III-A).
    DnaSequitur = 11,
    /// CTW+LZ hybrid: LZ repeats + CTW-coded literals (extension; paper
    /// Table 1).
    CtwLz = 12,
    /// Uncompressed 2-bit packing — no model, no search, ~2 bits/base.
    /// The graceful-degradation ladder's last resort: when every real
    /// compressor has failed or been circuit-broken, the exchange still
    /// ships a checksummed container.
    Raw = 13,
    /// BWT + move-to-front + zero-run RLE + rANS block compressor
    /// (extension; the bzip2 pipeline specialised to the 4-letter
    /// alphabet).
    Bwt = 14,
}

impl Algorithm {
    /// All algorithms, tag order.
    pub const ALL: [Algorithm; 15] = [
        Algorithm::Gzip,
        Algorithm::Ctw,
        Algorithm::GenCompress,
        Algorithm::Dnax,
        Algorithm::BioCompress2,
        Algorithm::DnaPackLite,
        Algorithm::Cfact,
        Algorithm::XmLite,
        Algorithm::Reference,
        Algorithm::Dnac,
        Algorithm::DnaCompress,
        Algorithm::DnaSequitur,
        Algorithm::CtwLz,
        Algorithm::Raw,
        Algorithm::Bwt,
    ];

    /// The horizontal (self-contained) algorithms — everything that
    /// implements [`crate::Compressor`].
    pub const HORIZONTAL: [Algorithm; 14] = [
        Algorithm::Gzip,
        Algorithm::Ctw,
        Algorithm::GenCompress,
        Algorithm::Dnax,
        Algorithm::BioCompress2,
        Algorithm::DnaPackLite,
        Algorithm::Cfact,
        Algorithm::XmLite,
        Algorithm::Dnac,
        Algorithm::DnaCompress,
        Algorithm::DnaSequitur,
        Algorithm::CtwLz,
        Algorithm::Raw,
        Algorithm::Bwt,
    ];

    /// The paper's four evaluated algorithms.
    pub const PAPER: [Algorithm; 4] = [
        Algorithm::Ctw,
        Algorithm::Dnax,
        Algorithm::GenCompress,
        Algorithm::Gzip,
    ];

    /// The paper's spelling of the algorithm name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Gzip => "Gzip",
            Algorithm::Ctw => "CTW",
            Algorithm::GenCompress => "GenCompress",
            Algorithm::Dnax => "DNAX",
            Algorithm::BioCompress2 => "BioCompress2",
            Algorithm::DnaPackLite => "DNAPack-lite",
            Algorithm::Cfact => "Cfact",
            Algorithm::XmLite => "XM-lite",
            Algorithm::Reference => "Reference",
            Algorithm::Dnac => "DNAC",
            Algorithm::DnaCompress => "DNACompress",
            Algorithm::DnaSequitur => "DNASequitur",
            Algorithm::CtwLz => "CTW+LZ",
            Algorithm::Raw => "Raw",
            Algorithm::Bwt => "BWT",
        }
    }

    /// Container tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parse a container tag byte.
    pub fn from_tag(tag: u8) -> Result<Algorithm, CodecError> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.tag() == tag)
            .ok_or(CodecError::UnknownFormat(tag))
    }

    /// Parse the paper's spelling (case-insensitive).
    pub fn from_name(name: &str) -> Option<Algorithm> {
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(name))
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A compressed sequence: container metadata plus algorithm payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedBlob {
    /// Container format version ([`VERSION`] or [`VERSION_SPEED`]).
    /// Decoders branch on this to pick the legacy arithmetic path (v1)
    /// or the rANS speed-tier path (v2).
    pub version: u8,
    /// Which algorithm produced the payload.
    pub algorithm: Algorithm,
    /// Original sequence length in bases.
    pub original_len: usize,
    /// FNV-1a of the original packed words (tail bits zeroed).
    pub checksum: u64,
    /// Algorithm-specific payload.
    pub payload: Vec<u8>,
}

impl CompressedBlob {
    /// Build a legacy (v1, arithmetic-coded) blob for `seq` with the
    /// given payload.
    pub fn new(algorithm: Algorithm, seq: &PackedSeq, payload: Vec<u8>) -> Self {
        CompressedBlob {
            version: VERSION,
            algorithm,
            original_len: seq.len(),
            checksum: fnv1a(seq.as_words()),
            payload,
        }
    }

    /// Build a speed-tier (v2, rANS-coded) blob for `seq` with the given
    /// payload.
    pub fn new_v2(algorithm: Algorithm, seq: &PackedSeq, payload: Vec<u8>) -> Self {
        CompressedBlob {
            version: VERSION_SPEED,
            ..CompressedBlob::new(algorithm, seq, payload)
        }
    }

    /// Serialised container size in bytes — the "compressed file size"
    /// reported in Figure 4.
    pub fn total_bytes(&self) -> usize {
        self.to_bytes().len()
    }

    /// Header size without the payload.
    pub fn header_bytes(&self) -> usize {
        self.total_bytes() - self.payload.len()
    }

    /// Compression ratio in bits per base (including container overhead).
    pub fn bits_per_base(&self) -> f64 {
        if self.original_len == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 * 8.0 / self.original_len as f64
    }

    /// Serialise to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.push(self.version);
        out.push(self.algorithm.tag());
        write_uvarint(&mut out, self.original_len as u64);
        write_u64_le(&mut out, self.checksum);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from the wire format.
    pub fn from_bytes(bytes: &[u8]) -> Result<CompressedBlob, CodecError> {
        if bytes.len() < 4 || bytes[0..2] != MAGIC {
            return Err(CodecError::Corrupt("bad container magic"));
        }
        let version = bytes[2];
        if version != VERSION && version != VERSION_SPEED {
            return Err(CodecError::UnknownFormat(version));
        }
        let algorithm = Algorithm::from_tag(bytes[3])?;
        let mut pos = 4;
        let original_len = read_uvarint(bytes, &mut pos)? as usize;
        let checksum = read_u64_le(bytes, &mut pos)?;
        Ok(CompressedBlob {
            version,
            algorithm,
            original_len,
            checksum,
            payload: bytes[pos..].to_vec(),
        })
    }

    /// Verify that `seq` matches this blob's checksum and length.
    pub fn verify(&self, seq: &PackedSeq) -> Result<(), CodecError> {
        if seq.len() != self.original_len {
            return Err(CodecError::Corrupt("decoded length mismatch"));
        }
        let actual = fnv1a(seq.as_words());
        if actual != self.checksum {
            return Err(CodecError::ChecksumMismatch {
                expected: self.checksum,
                actual,
            });
        }
        Ok(())
    }

    /// Initial capacity for decode output buffers: the declared length,
    /// clamped to [`MAX_PREALLOC_BASES`] so an attacker-reachable header
    /// cannot force an unbounded pre-allocation (see the const's docs).
    pub fn decode_capacity(&self) -> usize {
        self.original_len.min(MAX_PREALLOC_BASES)
    }

    /// Check the blob belongs to `algorithm` and carries a plausible
    /// header (decoders call this first).
    ///
    /// Rejecting `original_len > MAX_PREALLOC_BASES` here bounds not
    /// just decoder *memory* but decoder *work*: decode loops run
    /// O(`original_len`) iterations before the final checksum can expose
    /// a lying header, so a header claiming 2⁴⁰ bases must be refused
    /// before the loop starts, not caught after it ends. The cap is a
    /// documented container limit — one blob holds at most
    /// [`MAX_PREALLOC_BASES`] bases, far above anything this pipeline
    /// compresses as a single blob.
    pub fn expect_algorithm(&self, algorithm: Algorithm) -> Result<(), CodecError> {
        if self.algorithm != algorithm {
            return Err(CodecError::UnknownFormat(self.algorithm.tag()));
        }
        if self.original_len > MAX_PREALLOC_BASES {
            return Err(CodecError::Corrupt("declared length exceeds container limit"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_seq() -> PackedSeq {
        PackedSeq::from_ascii(b"ACGTACGTGGTTAACC").unwrap()
    }

    #[test]
    fn names_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_name(a.name()), Some(a));
            assert_eq!(Algorithm::from_tag(a.tag()).unwrap(), a);
        }
        assert_eq!(Algorithm::from_name("dnax"), Some(Algorithm::Dnax));
        assert_eq!(Algorithm::from_name("nope"), None);
        assert!(Algorithm::from_tag(99).is_err());
    }

    #[test]
    fn container_roundtrip() {
        let seq = sample_seq();
        let blob = CompressedBlob::new(Algorithm::Dnax, &seq, vec![1, 2, 3]);
        let bytes = blob.to_bytes();
        let back = CompressedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(back, blob);
        assert_eq!(back.total_bytes(), bytes.len());
        assert!(back.header_bytes() >= 13);
    }

    #[test]
    fn verify_accepts_original_rejects_other() {
        let seq = sample_seq();
        let blob = CompressedBlob::new(Algorithm::Ctw, &seq, vec![]);
        assert!(blob.verify(&seq).is_ok());
        let other = PackedSeq::from_ascii(b"ACGTACGTGGTTAACG").unwrap();
        assert!(matches!(
            blob.verify(&other),
            Err(CodecError::ChecksumMismatch { .. })
        ));
        let short = PackedSeq::from_ascii(b"ACGT").unwrap();
        assert!(matches!(blob.verify(&short), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(CompressedBlob::from_bytes(b"").is_err());
        assert!(CompressedBlob::from_bytes(b"XY\x01\x00").is_err());
        assert!(CompressedBlob::from_bytes(b"DX\x03\x00").is_err()); // bad version
        assert!(CompressedBlob::from_bytes(b"DX\x01\x63").is_err()); // bad algo
        // Truncated after header start:
        assert!(CompressedBlob::from_bytes(b"DX\x01\x03\x10").is_err());
    }

    #[test]
    fn v2_container_roundtrips_and_v1_stays_default() {
        let seq = sample_seq();
        let v1 = CompressedBlob::new(Algorithm::Ctw, &seq, vec![7]);
        assert_eq!(v1.version, VERSION);
        let v2 = CompressedBlob::new_v2(Algorithm::Ctw, &seq, vec![7]);
        assert_eq!(v2.version, VERSION_SPEED);
        assert_eq!(v2.checksum, v1.checksum);
        let bytes = v2.to_bytes();
        assert_eq!(bytes[2], VERSION_SPEED);
        assert_eq!(CompressedBlob::from_bytes(&bytes).unwrap(), v2);
    }

    #[test]
    fn bits_per_base() {
        let seq = sample_seq(); // 16 bases
        let blob = CompressedBlob::new(Algorithm::Gzip, &seq, vec![0; 4]);
        let total = blob.total_bytes() as f64;
        assert!((blob.bits_per_base() - total * 8.0 / 16.0).abs() < 1e-12);
        let empty = PackedSeq::new();
        let blob = CompressedBlob::new(Algorithm::Gzip, &empty, vec![]);
        assert_eq!(blob.bits_per_base(), 0.0);
    }

    #[test]
    fn expect_algorithm_guards() {
        let blob = CompressedBlob::new(Algorithm::Dnax, &sample_seq(), vec![]);
        assert!(blob.expect_algorithm(Algorithm::Dnax).is_ok());
        assert!(blob.expect_algorithm(Algorithm::Ctw).is_err());
    }
}
