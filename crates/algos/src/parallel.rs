//! Block-parallel compression over the shared [`TaskPool`].
//!
//! [`ParallelCompressor`] adapts any [`Compressor`] to the framed block
//! container: it splits the sequence into fixed-size blocks (cheap —
//! [`PackedSeq::slice`] is a word copy), compresses/decompresses the
//! blocks as one pool batch, and assembles the results in order.
//!
//! **Determinism contract:** the frame bytes are a pure function of
//! `(algorithm, block_size, sequence)` — identical for any pool size,
//! including zero threads — and identical to what the serial reference
//! encoder [`crate::frame::compress_serial`] produces. Likewise the
//! parallel decoder accepts serially encoded frames and vice versa;
//! `tests/blocks.rs` proves both directions bit-exact for every
//! algorithm.

use crate::blob::Algorithm;
use crate::frame::{self, FramedBlob};
use crate::pool::TaskPool;
use crate::stats::ResourceStats;
use crate::{compressor_for, Compressor};
use dnacomp_codec::checksum::fnv1a;
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;
use std::sync::Arc;

/// Compresses and decompresses frames block-concurrently.
#[derive(Clone)]
pub struct ParallelCompressor {
    algorithm: Algorithm,
    inner: Arc<dyn Compressor>,
    block_size: usize,
    pool: Arc<TaskPool>,
}

impl ParallelCompressor {
    /// An adapter running `algorithm` over `block_size`-base blocks on
    /// `pool`.
    ///
    /// # Panics
    /// If `block_size` is zero or `algorithm` is not self-contained
    /// (i.e. not in [`Algorithm::HORIZONTAL`]).
    pub fn new(algorithm: Algorithm, block_size: usize, pool: Arc<TaskPool>) -> Self {
        assert!(block_size > 0, "block size must be positive");
        assert!(
            Algorithm::HORIZONTAL.contains(&algorithm),
            "{algorithm} is not a self-contained compressor"
        );
        ParallelCompressor {
            algorithm,
            inner: Arc::from(compressor_for(algorithm)),
            block_size,
            pool,
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Bases per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Compress `seq` into a frame, one pool task per block.
    pub fn compress(&self, seq: &PackedSeq) -> Result<FramedBlob, CodecError> {
        self.compress_with_stats(seq).map(|(frame, _)| frame)
    }

    /// Compress with merged per-block resource statistics (work summed,
    /// peak heap maxed — the blocks may genuinely be resident at once).
    pub fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(FramedBlob, ResourceStats), CodecError> {
        let n_blocks = FramedBlob::block_count(self.block_size, seq.len());
        let jobs: Vec<_> = (0..n_blocks)
            .map(|index| {
                let start = index * self.block_size;
                let end = (start + self.block_size).min(seq.len());
                let block = seq.slice(start, end);
                let codec = Arc::clone(&self.inner);
                move || codec.compress_with_stats(&block)
            })
            .collect();
        let mut stats = ResourceStats::new();
        let mut blocks = Vec::with_capacity(n_blocks);
        for result in self.pool.run_batch(jobs) {
            let (block, block_stats) = result?;
            stats.merge(block_stats);
            blocks.push(block);
        }
        Ok((
            FramedBlob {
                block_size: self.block_size,
                total_len: seq.len(),
                checksum: fnv1a(seq.as_words()),
                blocks,
            },
            stats,
        ))
    }

    /// Decompress a frame, one pool task per block. Accepts frames from
    /// any encoder and any block algorithm mix; per-block and
    /// whole-frame checksums are both verified.
    pub fn decompress(&self, frame: &FramedBlob) -> Result<PackedSeq, CodecError> {
        let jobs: Vec<_> = frame
            .blocks
            .iter()
            .enumerate()
            .map(|(index, block)| {
                let block = block.clone();
                let expected = frame.block_len(index);
                let codec: Arc<dyn Compressor> = if block.algorithm == self.algorithm {
                    Arc::clone(&self.inner)
                } else {
                    Arc::from(compressor_for(block.algorithm))
                };
                move || {
                    let decoded = codec.decompress(&block)?;
                    if decoded.len() != expected {
                        return Err(CodecError::Corrupt("frame block decoded to wrong length"));
                    }
                    Ok(decoded)
                }
            })
            .collect();
        let mut out = PackedSeq::with_capacity(frame.total_len);
        for decoded in self.pool.run_batch(jobs) {
            out.extend_from_seq(&decoded?);
        }
        frame::verify_whole(frame, &out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{compress_serial, decompress_serial};
    use dnacomp_seq::gen::GenomeModel;

    #[test]
    fn parallel_bytes_equal_serial_bytes_for_any_pool_size() {
        let seq = GenomeModel::default().generate(10_000, 11);
        let serial = compress_serial(&*compressor_for(Algorithm::Dnax), &seq, 768).unwrap();
        for threads in [0, 1, 3] {
            let pool = Arc::new(TaskPool::new(threads));
            let pc = ParallelCompressor::new(Algorithm::Dnax, 768, pool);
            let frame = pc.compress(&seq).unwrap();
            assert_eq!(frame.to_bytes(), serial.to_bytes(), "{threads} threads");
            assert_eq!(pc.decompress(&frame).unwrap(), seq);
            assert_eq!(decompress_serial(&frame).unwrap(), seq);
        }
    }

    #[test]
    fn decompress_rejects_whole_frame_corruption() {
        let seq = GenomeModel::default().generate(3_000, 3);
        let pool = Arc::new(TaskPool::new(2));
        let pc = ParallelCompressor::new(Algorithm::Raw, 1_000, pool);
        let mut frame = pc.compress(&seq).unwrap();
        frame.checksum ^= 1;
        assert!(matches!(
            pc.decompress(&frame),
            Err(CodecError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "not a self-contained compressor")]
    fn reference_algorithm_is_refused() {
        let _ = ParallelCompressor::new(Algorithm::Reference, 64, Arc::new(TaskPool::new(0)));
    }
}
