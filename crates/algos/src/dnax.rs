//! DNAX port (paper ref \[17\]).
//!
//! §III-A: *"DNAX unlike Gencompress works on the exact repeats. … It
//! follows the strategy of encoding the exact repeats only … When no
//! match is found, arithmetic coding is utilized."* DNAX also exploits
//! reverse-complement repeats (Table 1: "Exact Repeats and Reverse
//! Complement").
//!
//! Implementation: a left-to-right sweep with a hash-chain
//! [`RepeatFinder`]. Accepted repeats (≥ `min_repeat`) become
//! `(kind, length, distance)` records in a control stream (Elias-gamma
//! coded); everything else is a literal run coded by an order-2 adaptive
//! arithmetic model. Decompression replays copies directly — that is why
//! DNAX has "foremost least decompression time" (§IV-B) and why the
//! paper's framework picks it for large files.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::models::ContextModel;
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder, RepeatKind, RepeatMatch};
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The DNAX compressor.
///
/// ```
/// use dnacomp_algos::{Compressor, Dnax};
/// use dnacomp_seq::gen::GenomeModel;
/// let seq = GenomeModel::default().generate(20_000, 7);
/// let dnax = Dnax::default();
/// let blob = dnax.compress(&seq).unwrap();
/// assert!(blob.bits_per_base() < 2.0);            // beats 2-bit packing
/// assert_eq!(dnax.decompress(&blob).unwrap(), seq);
/// ```
#[derive(Clone, Debug)]
pub struct Dnax {
    /// Repeat-search configuration (seed length, probe budget, window).
    pub search: RepeatConfig,
    /// Minimum repeat length worth a pointer. The paper notes "the
    /// threshold is what changes the RAM consumption and time of
    /// compression" — this is that threshold.
    pub min_repeat: usize,
    /// Order of the literal-fallback context model.
    pub literal_order: usize,
}

impl Default for Dnax {
    fn default() -> Self {
        Dnax {
            search: RepeatConfig {
                seed_len: 16,
                max_chain: 32,
                window: 0,
                search_revcomp: true,
            },
            min_repeat: 24,
            literal_order: 2,
        }
    }
}

impl Dnax {
    /// DNAX with a custom repeat threshold (ablation knob).
    pub fn with_min_repeat(min_repeat: usize) -> Self {
        let mut d = Dnax::default();
        d.min_repeat = min_repeat.max(d.search.seed_len);
        d
    }
}

/// One parsed segment of the input.
enum Segment {
    Repeat(RepeatMatch),
    Literals { start: usize, len: usize },
}

impl Compressor for Dnax {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Dnax
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let mut finder = RepeatFinder::new(&bases, self.search);

        // Parse into segments.
        let mut segments: Vec<Segment> = Vec::new();
        let mut i = 0usize;
        let mut lit_start = 0usize;
        while i < bases.len() {
            finder.advance(i);
            meter.work(self.search.max_chain as u64 / 4 + 1);
            let m = finder.find(i).filter(|m| m.len >= self.min_repeat);
            match m {
                Some(m) => {
                    if i > lit_start {
                        segments.push(Segment::Literals {
                            start: lit_start,
                            len: i - lit_start,
                        });
                    }
                    segments.push(Segment::Repeat(m));
                    meter.work(m.len as u64 / 8);
                    i += m.len;
                    lit_start = i;
                }
                None => i += 1,
            }
        }
        if bases.len() > lit_start {
            segments.push(Segment::Literals {
                start: lit_start,
                len: bases.len() - lit_start,
            });
        }
        meter.heap_snapshot(
            finder.heap_bytes() as u64
                + bases.len() as u64
                + segments.len() as u64 * std::mem::size_of::<Segment>() as u64,
        );

        // Encode control stream + literal stream.
        let mut ctrl = BitWriter::new();
        let mut model = ContextModel::new(self.literal_order);
        let mut lit_enc = ArithEncoder::new();
        let mut dst = 0usize; // running copy position; the sweep defines it
        for seg in &segments {
            match seg {
                Segment::Repeat(m) => {
                    ctrl.push_bit(true);
                    ctrl.push_bit(m.kind == RepeatKind::ReverseComplement);
                    gamma_encode(&mut ctrl, (m.len - self.min_repeat + 1) as u64)?;
                    // The decoder knows its own position, so a backwards
                    // distance identifies the source.
                    let delta = match m.kind {
                        RepeatKind::Forward => (dst - 1 - m.src) as u64,
                        RepeatKind::ReverseComplement => (dst - m.src) as u64,
                    };
                    gamma_encode(&mut ctrl, delta + 1)?;
                    dst += m.len;
                    meter.work(2);
                }
                Segment::Literals { start, len } => {
                    ctrl.push_bit(false);
                    gamma_encode(&mut ctrl, *len as u64)?;
                    for b in &bases[*start..*start + *len] {
                        model.encode(&mut lit_enc, b.code() as usize);
                    }
                    dst += *len;
                    meter.work(*len as u64 * 2);
                }
            }
        }
        debug_assert_eq!(dst, bases.len());
        meter.heap_snapshot(
            finder.heap_bytes() as u64 + bases.len() as u64 + model.heap_bytes() as u64,
        );

        let ctrl_bytes = ctrl.into_bytes();
        let lit_bytes = lit_enc.finish();
        let mut payload = Vec::with_capacity(ctrl_bytes.len() + lit_bytes.len() + 8);
        write_uvarint(&mut payload, ctrl_bytes.len() as u64);
        payload.extend_from_slice(&ctrl_bytes);
        payload.extend_from_slice(&lit_bytes);
        let blob = CompressedBlob::new(Algorithm::Dnax, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Dnax)?;
        let mut meter = Meter::new();
        let mut pos = 0usize;
        let ctrl_len = read_uvarint(&blob.payload, &mut pos)? as usize;
        let ctrl_end = pos
            .checked_add(ctrl_len)
            .filter(|&e| e <= blob.payload.len())
            .ok_or(CodecError::Corrupt("control stream length"))?;
        let mut ctrl = BitReader::new(&blob.payload[pos..ctrl_end]);
        let mut lit_dec = ArithDecoder::new(&blob.payload[ctrl_end..]);
        let mut model = ContextModel::new(self.literal_order);

        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            let is_repeat = ctrl.read_bit()?;
            if is_repeat {
                let revcomp = ctrl.read_bit()?;
                let len = gamma_decode(&mut ctrl)? as usize + self.min_repeat - 1;
                let delta = gamma_decode(&mut ctrl)? - 1;
                let dst = out.len();
                let m = decode_match(revcomp, len, delta, dst)?;
                let copied = m
                    .resolve(&out, dst)
                    .ok_or(CodecError::Corrupt("unresolvable repeat reference"))?;
                out.extend_from_slice(&copied);
                meter.work(len as u64 / 4 + 2);
            } else {
                let len = gamma_decode(&mut ctrl)? as usize;
                if len == 0 || out.len() + len > blob.original_len {
                    return Err(CodecError::Corrupt("literal run overruns output"));
                }
                for _ in 0..len {
                    let code = model.decode(&mut lit_dec)?;
                    out.push(Base::from_code(code as u8));
                }
                meter.work(len as u64 * 2);
            }
            if out.len() > blob.original_len {
                return Err(CodecError::Corrupt("repeat overruns output"));
            }
        }
        meter.heap_snapshot(out.len() as u64 + model.heap_bytes() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

/// Rebuild a [`RepeatMatch`] from its decoded fields.
fn decode_match(
    revcomp: bool,
    len: usize,
    delta: u64,
    dst: usize,
) -> Result<RepeatMatch, CodecError> {
    let delta = delta as usize;
    if revcomp {
        let src_end = dst
            .checked_sub(delta)
            .ok_or(CodecError::Corrupt("revcomp distance out of range"))?;
        Ok(RepeatMatch {
            src: src_end,
            len,
            kind: RepeatKind::ReverseComplement,
        })
    } else {
        if delta + 1 > dst {
            return Err(CodecError::Corrupt("forward distance out of range"));
        }
        Ok(RepeatMatch {
            src: dst - delta - 1,
            len,
            kind: RepeatKind::Forward,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &Dnax, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = Dnax::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn exploits_exact_repeats() {
        // A long planted repeat must compress far below 2 bits/base.
        let unique = GenomeModel::random_only(0.5).generate(5_000, 42).to_ascii();
        let mut text = unique.clone();
        for _ in 0..6 {
            text.push_str(&unique);
        }
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&Dnax::default(), &seq);
        assert!(blob.bits_per_base() < 0.5, "{}", blob.bits_per_base());
    }

    #[test]
    fn exploits_revcomp_repeats() {
        let fwd = GenomeModel::random_only(0.5).generate(4_000, 9);
        let mut text = fwd.to_ascii();
        text.push_str(&fwd.reverse_complement().to_ascii());
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&Dnax::default(), &seq);
        // Second half is a single revcomp copy: well under half the cost.
        assert!(blob.bits_per_base() < 1.3, "{}", blob.bits_per_base());
        // And disabling revcomp search must do measurably worse.
        let mut no_rc = Dnax::default();
        no_rc.search.search_revcomp = false;
        let blob2 = roundtrip(&no_rc, &seq);
        assert!(blob2.total_bytes() > blob.total_bytes());
    }

    #[test]
    fn stays_near_two_bits_on_random_dna() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 3);
        let blob = roundtrip(&Dnax::default(), &seq);
        let bpb = blob.bits_per_base();
        assert!(bpb < 2.2, "bits/base = {bpb}");
    }

    #[test]
    fn beats_two_bits_on_default_genome() {
        let seq = GenomeModel::default().generate(40_000, 7);
        let blob = roundtrip(&Dnax::default(), &seq);
        assert!(blob.bits_per_base() < 2.0, "{}", blob.bits_per_base());
    }

    #[test]
    fn decompress_much_cheaper_than_compress() {
        let seq = GenomeModel::default().generate(30_000, 5);
        let c = Dnax::default();
        let (blob, cs) = c.compress_with_stats(&seq).unwrap();
        let (_, ds) = c.decompress_with_stats(&blob).unwrap();
        assert!(
            ds.work_units * 2 < cs.work_units,
            "decode {} vs encode {}",
            ds.work_units,
            cs.work_units
        );
    }

    #[test]
    fn threshold_ablation_changes_output() {
        let seq = GenomeModel::highly_repetitive().generate(20_000, 11);
        let tight = roundtrip(&Dnax::with_min_repeat(16), &seq);
        let loose = roundtrip(&Dnax::with_min_repeat(64), &seq);
        // A looser threshold must not compress better.
        assert!(tight.total_bytes() <= loose.total_bytes());
    }

    #[test]
    fn corruption_never_yields_wrong_data() {
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = Dnax::default();
        let blob = c.compress(&seq).unwrap();
        let mut wrong = blob.clone();
        wrong.algorithm = Algorithm::Ctw;
        assert!(c.decompress(&wrong).is_err());
        // A flipped bit may land in inert padding (decode then succeeds
        // and must equal the original); semantic damage must error.
        for at in 0..blob.payload.len().min(64) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x08;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        let seq = GenomeModel::default().generate(2_000, 17);
        let c = Dnax::default();
        let mut blob = c.compress(&seq).unwrap();
        blob.payload.truncate(blob.payload.len() / 2);
        assert!(c.decompress(&blob).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,3000}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&Dnax::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(
            seed in any::<u64>(),
            len in 100usize..5000,
        ) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&Dnax::default(), &seq);
        }
    }
}
