//! Deterministic resource accounting.
//!
//! The paper's dependent variables are *time* (compress, decompress,
//! upload, download) and *RAM used*. Wall-clock time on the host machine
//! would not reproduce the paper's context grid (their contexts are
//! different VMs), so each compressor counts abstract **work units** —
//! elementary operations: symbols coded, chain probes, DP cells, tree-node
//! visits — and reports its **peak heap footprint**. The cloud simulator
//! (`dnacomp-cloud`) converts work to milliseconds under a machine
//! context; Criterion benches measure real wall time separately.

/// Resource statistics from one compress or decompress run.
#[derive(
    Clone,
    Copy,
    Debug,
    Default,
    PartialEq,
    Eq,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct ResourceStats {
    /// Abstract work units (≈ elementary operations) consumed.
    pub work_units: u64,
    /// Peak heap bytes held by the algorithm's data structures
    /// (match-finder chains, model tables, token buffers, …).
    pub peak_heap_bytes: u64,
}

impl ResourceStats {
    /// Zero stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another run's stats (sequential composition).
    pub fn merge(&mut self, other: ResourceStats) {
        self.work_units += other.work_units;
        self.peak_heap_bytes = self.peak_heap_bytes.max(other.peak_heap_bytes);
    }
}

/// Work/heap counter threaded through an algorithm's hot loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct Meter {
    work: u64,
    current_heap: u64,
    peak_heap: u64,
}

impl Meter {
    /// Fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` work units.
    #[inline]
    pub fn work(&mut self, n: u64) {
        self.work += n;
    }

    /// Record that `bytes` of heap are now live (absolute snapshot of one
    /// component; callers sum their components before calling).
    #[inline]
    pub fn heap_snapshot(&mut self, bytes: u64) {
        self.current_heap = bytes;
        self.peak_heap = self.peak_heap.max(bytes);
    }

    /// Finalise into [`ResourceStats`].
    pub fn finish(self) -> ResourceStats {
        ResourceStats {
            work_units: self.work,
            peak_heap_bytes: self.peak_heap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_accumulates_work_and_tracks_peak() {
        let mut m = Meter::new();
        m.work(10);
        m.work(5);
        m.heap_snapshot(1000);
        m.heap_snapshot(4000);
        m.heap_snapshot(200);
        let s = m.finish();
        assert_eq!(s.work_units, 15);
        assert_eq!(s.peak_heap_bytes, 4000);
    }

    #[test]
    fn merge_sums_work_maxes_heap() {
        let mut a = ResourceStats {
            work_units: 5,
            peak_heap_bytes: 100,
        };
        a.merge(ResourceStats {
            work_units: 7,
            peak_heap_bytes: 60,
        });
        assert_eq!(a.work_units, 12);
        assert_eq!(a.peak_heap_bytes, 100);
    }
}
