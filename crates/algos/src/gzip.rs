//! Gzip port: DEFLATE-style LZ77 + canonical Huffman.
//!
//! The paper includes Gzip (ref \[24\]) as the general-purpose baseline —
//! it is what NCBI uses for its repository — and finds it has "the worst
//! compression ratio and time" *for DNA*: operating on the ASCII file it
//! cannot get below ~2 bits/base without long repeats, and the abstract
//! notes it never wins the selection.
//!
//! This port keeps DEFLATE's structure: a 32 KiB-window hash-chain LZ77
//! pass, then two canonical Huffman codes (literal/length and distance)
//! with DEFLATE's length/distance bucketing and extra bits. The container
//! differs from RFC 1951 framing (we use the workspace container), but
//! the algorithmic behaviour — ratio, speed, memory — matches gzip's.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::huffman::{HuffmanCode, MAX_CODE_LEN};
use dnacomp_codec::lz::{self, LzConfig, Token, MAX_MATCH};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;

/// Literal/length alphabet size: 256 literals + EOB + 29 length codes.
const NUM_LITLEN: usize = 286;
/// End-of-block symbol.
const EOB: usize = 256;
/// Distance alphabet size.
const NUM_DIST: usize = 30;

/// DEFLATE length-code table: `(base, extra_bits)` for codes 257..=285.
const LEN_TABLE: [(u32, u32); 29] = [
    (3, 0), (4, 0), (5, 0), (6, 0), (7, 0), (8, 0), (9, 0), (10, 0),
    (11, 1), (13, 1), (15, 1), (17, 1), (19, 2), (23, 2), (27, 2), (31, 2),
    (35, 3), (43, 3), (51, 3), (59, 3), (67, 4), (83, 4), (99, 4), (115, 4),
    (131, 5), (163, 5), (195, 5), (227, 5), (258, 0),
];

/// DEFLATE distance-code table: `(base, extra_bits)` for codes 0..=29.
const DIST_TABLE: [(u32, u32); 30] = [
    (1, 0), (2, 0), (3, 0), (4, 0), (5, 1), (7, 1), (9, 2), (13, 2),
    (17, 3), (25, 3), (33, 4), (49, 4), (65, 5), (97, 5), (129, 6), (193, 6),
    (257, 7), (385, 7), (513, 8), (769, 8), (1025, 9), (1537, 9),
    (2049, 10), (3073, 10), (4097, 11), (6145, 11), (8193, 12), (12289, 12),
    (16385, 13), (24577, 13),
];

fn length_code(len: u32) -> (usize, u32) {
    debug_assert!((3..=MAX_MATCH as u32).contains(&len));
    let mut code = LEN_TABLE.len() - 1;
    for (i, &(base, _)) in LEN_TABLE.iter().enumerate() {
        if base > len {
            code = i - 1;
            break;
        }
        if i == LEN_TABLE.len() - 1 {
            code = i;
        }
    }
    let (base, _) = LEN_TABLE[code];
    (257 + code, len - base)
}

fn dist_code(dist: u32) -> (usize, u32) {
    debug_assert!(dist >= 1);
    let mut code = DIST_TABLE.len() - 1;
    for (i, &(base, _)) in DIST_TABLE.iter().enumerate() {
        if base > dist {
            code = i - 1;
            break;
        }
        if i == DIST_TABLE.len() - 1 {
            code = i;
        }
    }
    let (base, _) = DIST_TABLE[code];
    (code, dist - base)
}

/// The Gzip-style compressor.
#[derive(Clone, Debug)]
#[derive(Default)]
pub struct GzipRs {
    /// LZ77 effort configuration.
    pub lz: LzConfig,
}


impl GzipRs {
    /// Fast preset (zlib level-1-like).
    pub fn fast() -> Self {
        GzipRs { lz: LzConfig::fast() }
    }

    /// Best-compression preset (zlib level-9-like).
    pub fn best() -> Self {
        GzipRs { lz: LzConfig::best() }
    }
}

impl Compressor for GzipRs {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Gzip
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        // Gzip sees the raw ASCII file, one byte per base — exactly what
        // makes it a weak DNA compressor.
        let ascii = seq.to_ascii().into_bytes();
        let tokens = lz::tokenize(&ascii, &self.lz);
        // Deterministic work model: hashing + chain probes per position,
        // plus one unit per token emitted.
        meter.work(ascii.len() as u64 * (2 + self.lz.max_chain as u64 / 16));
        meter.work(tokens.len() as u64);
        // Peak heap: input copy + hash head/prev + token buffer.
        meter.heap_snapshot(
            ascii.len() as u64
                + (1 << 15) * 4
                + self.lz.window as u64 * 4
                + tokens.len() as u64 * std::mem::size_of::<Token>() as u64,
        );

        // Histogram the two alphabets.
        let mut litlen_freq = vec![0u64; NUM_LITLEN];
        let mut dist_freq = vec![0u64; NUM_DIST];
        litlen_freq[EOB] = 1;
        for t in &tokens {
            match *t {
                Token::Literal(b) => litlen_freq[b as usize] += 1,
                Token::Match { dist, len } => {
                    litlen_freq[length_code(len).0] += 1;
                    dist_freq[dist_code(dist).0] += 1;
                }
            }
        }
        let litlen = HuffmanCode::from_freqs(&litlen_freq)?;
        let dist = HuffmanCode::from_freqs(&dist_freq)?;

        let mut w = BitWriter::with_capacity_bits(tokens.len() * 10);
        // Header: 4-bit code lengths (MAX_CODE_LEN = 15 fits).
        for &l in litlen.lens() {
            debug_assert!(l <= MAX_CODE_LEN);
            w.push_bits(l as u64, 4);
        }
        for &l in dist.lens() {
            w.push_bits(l as u64, 4);
        }
        for t in &tokens {
            match *t {
                Token::Literal(b) => litlen.encode(&mut w, b as usize)?,
                Token::Match { dist: d, len } => {
                    let (lc, lx) = length_code(len);
                    litlen.encode(&mut w, lc)?;
                    w.push_bits(lx as u64, LEN_TABLE[lc - 257].1);
                    let (dc, dx) = dist_code(d);
                    dist.encode(&mut w, dc)?;
                    w.push_bits(dx as u64, DIST_TABLE[dc].1);
                }
            }
        }
        litlen.encode(&mut w, EOB)?;
        meter.work(w.bit_len() as u64 / 8);
        let blob = CompressedBlob::new(Algorithm::Gzip, seq, w.into_bytes());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Gzip)?;
        let mut meter = Meter::new();
        let mut r = BitReader::new(&blob.payload);
        let mut litlen_lens = vec![0u32; NUM_LITLEN];
        for l in litlen_lens.iter_mut() {
            *l = r.read_bits(4)? as u32;
        }
        let mut dist_lens = vec![0u32; NUM_DIST];
        for l in dist_lens.iter_mut() {
            *l = r.read_bits(4)? as u32;
        }
        let litlen = HuffmanCode::from_lens(litlen_lens)?.decoder();
        let dist_code_table = HuffmanCode::from_lens(dist_lens)?;
        let dist = dist_code_table.decoder();

        let mut tokens: Vec<Token> = Vec::with_capacity(blob.decode_capacity() / 4 + 8);
        loop {
            let sym = litlen.decode(&mut r)?;
            if sym == EOB {
                break;
            }
            if sym < 256 {
                tokens.push(Token::Literal(sym as u8));
            } else {
                let lc = sym - 257;
                if lc >= LEN_TABLE.len() {
                    return Err(CodecError::Corrupt("bad length code"));
                }
                let (lbase, lextra) = LEN_TABLE[lc];
                let len = lbase + r.read_bits(lextra)? as u32;
                let dc = dist.decode(&mut r)?;
                let (dbase, dextra) = DIST_TABLE[dc];
                let d = dbase + r.read_bits(dextra)? as u32;
                tokens.push(Token::Match { dist: d, len });
            }
            if tokens.len() > blob.original_len + 8 {
                return Err(CodecError::Corrupt("token stream longer than original"));
            }
        }
        let ascii = lz::detokenize(&tokens)?;
        meter.work(ascii.len() as u64 + tokens.len() as u64);
        meter.heap_snapshot(
            ascii.len() as u64 + tokens.len() as u64 * std::mem::size_of::<Token>() as u64,
        );
        let seq = PackedSeq::from_ascii(&ascii)
            .map_err(|_| CodecError::Corrupt("non-nucleotide byte after inflate"))?;
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &GzipRs, seq: &PackedSeq) -> CompressedBlob {
        let (blob, stats) = c.compress_with_stats(seq).unwrap();
        let (back, dstats) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        assert!(stats.work_units > 0 || seq.is_empty());
        assert!(dstats.work_units <= stats.work_units || seq.len() < 64);
        blob
    }

    #[test]
    fn empty_sequence() {
        let c = GzipRs::default();
        roundtrip(&c, &PackedSeq::new());
    }

    #[test]
    fn tiny_sequences() {
        let c = GzipRs::default();
        for s in ["A", "AC", "ACG", "ACGTACGT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn length_code_table_covers_range() {
        for len in 3..=258u32 {
            let (code, extra) = length_code(len);
            assert!((257..286).contains(&code), "len {len}");
            let (base, bits) = LEN_TABLE[code - 257];
            assert!(extra < (1 << bits) || bits == 0 && extra == 0, "len {len}");
            assert_eq!(base + extra, len);
        }
    }

    #[test]
    fn dist_code_table_covers_range() {
        for d in [1u32, 2, 4, 5, 24, 1024, 4096, 32767, 32768] {
            let (code, extra) = dist_code(d);
            assert!(code < 30);
            let (base, bits) = DIST_TABLE[code];
            assert!(extra < (1 << bits) || bits == 0 && extra == 0);
            assert_eq!(base + extra, d);
        }
    }

    #[test]
    fn dna_ratio_is_poor_but_under_ascii() {
        // On realistic DNA, gzip lands around 2 bits/base: better than the
        // 8-bit ASCII file but worse than the DNA-aware algorithms.
        let seq = GenomeModel::default().generate(50_000, 11);
        let blob = roundtrip(&GzipRs::default(), &seq);
        let bpb = blob.bits_per_base();
        assert!(bpb < 3.0, "bits/base = {bpb}");
        assert!(bpb > 1.0, "suspiciously good for gzip: {bpb}");
    }

    #[test]
    fn highly_repetitive_input_compresses_hard() {
        let seq = PackedSeq::from_ascii("ACGT".repeat(4000).as_bytes()).unwrap();
        let blob = roundtrip(&GzipRs::default(), &seq);
        assert!(blob.bits_per_base() < 0.2, "{}", blob.bits_per_base());
    }

    #[test]
    fn presets_all_roundtrip() {
        let seq = GenomeModel::highly_repetitive().generate(20_000, 3);
        for c in [GzipRs::fast(), GzipRs::default(), GzipRs::best()] {
            roundtrip(&c, &seq);
        }
    }

    #[test]
    fn best_no_worse_than_fast() {
        let seq = GenomeModel::default().generate(30_000, 5);
        let fast = GzipRs::fast().compress(&seq).unwrap();
        let best = GzipRs::best().compress(&seq).unwrap();
        assert!(best.total_bytes() <= fast.total_bytes());
    }

    #[test]
    fn rejects_foreign_blob() {
        let seq = PackedSeq::from_ascii(b"ACGTACGT").unwrap();
        let mut blob = GzipRs::default().compress(&seq).unwrap();
        blob.algorithm = Algorithm::Dnax;
        assert!(GzipRs::default().decompress(&blob).is_err());
    }

    #[test]
    fn detects_payload_corruption() {
        let seq = GenomeModel::default().generate(2_000, 9);
        let mut blob = GzipRs::default().compress(&seq).unwrap();
        // Flip a payload bit; must error (checksum or structural), never
        // return wrong data.
        let mid = blob.payload.len() / 2;
        blob.payload[mid] ^= 0x10;
        assert!(GzipRs::default().decompress(&blob).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2000}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&GzipRs::default(), &seq);
        }
    }
}
