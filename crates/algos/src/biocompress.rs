//! BioCompress-2 port (extension algorithm; paper ref \[11\] / Table 1).
//!
//! Table 1: BioCompress "detects exact and reverse complement repeats",
//! encodes them with **Fibonacci coding** of length and position, and
//! BioCompress-2 encodes the non-repeat regions with **order-2 arithmetic
//! coding**. The paper surveys it but could not obtain a binary; we
//! implement it as an extension so the framework can be evaluated over a
//! wider algorithm portfolio.
//!
//! Structurally it is DNAX's ancestor: the same exact/reverse-complement
//! repeat model, but with the older universal-code pointer encoding
//! (Fibonacci instead of Elias-gamma) and absolute source positions —
//! measurably worse pointers, hence a slightly worse ratio than DNAX on
//! the same inputs.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{fib_decode, fib_encode};
use dnacomp_codec::models::ContextModel;
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder, RepeatKind};
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The BioCompress-2 compressor.
#[derive(Clone, Debug)]
pub struct BioCompress2 {
    /// Repeat search configuration.
    pub search: RepeatConfig,
    /// Minimum repeat length worth a pointer.
    pub min_repeat: usize,
}

impl Default for BioCompress2 {
    fn default() -> Self {
        BioCompress2 {
            search: RepeatConfig {
                seed_len: 16,
                max_chain: 24,
                window: 0,
                search_revcomp: true,
            },
            min_repeat: 32,
        }
    }
}

impl Compressor for BioCompress2 {
    fn algorithm(&self) -> Algorithm {
        Algorithm::BioCompress2
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let mut finder = RepeatFinder::new(&bases, self.search);

        let mut ctrl = BitWriter::new();
        let mut model = ContextModel::new(2);
        let mut lit_enc = ArithEncoder::new();

        let mut i = 0usize;
        let mut lit_run = 0usize; // literals accumulated but not yet framed
        let flush_literals =
            |ctrl: &mut BitWriter, run: &mut usize| -> Result<(), CodecError> {
                if *run > 0 {
                    ctrl.push_bit(false);
                    fib_encode(ctrl, *run as u64)?;
                    *run = 0;
                }
                Ok(())
            };
        let mut lit_positions: Vec<usize> = Vec::new();
        while i < bases.len() {
            finder.advance(i);
            meter.work(self.search.max_chain as u64 / 4 + 1);
            match finder.find(i).filter(|m| m.len >= self.min_repeat) {
                Some(m) => {
                    flush_literals(&mut ctrl, &mut lit_run)?;
                    ctrl.push_bit(true);
                    ctrl.push_bit(m.kind == RepeatKind::ReverseComplement);
                    // BioCompress codes length and *absolute position* in
                    // Fibonacci (1-based).
                    fib_encode(&mut ctrl, (m.len - self.min_repeat + 1) as u64)?;
                    fib_encode(&mut ctrl, m.src as u64 + 1)?;
                    meter.work(m.len as u64 / 8 + 2);
                    i += m.len;
                }
                None => {
                    lit_run += 1;
                    lit_positions.push(i);
                    i += 1;
                }
            }
        }
        flush_literals(&mut ctrl, &mut lit_run)?;
        for &p in &lit_positions {
            model.encode(&mut lit_enc, bases[p].code() as usize);
            meter.work(2);
        }
        meter.heap_snapshot(
            finder.heap_bytes() as u64
                + bases.len() as u64
                + model.heap_bytes() as u64
                + lit_positions.len() as u64 * 8,
        );

        let ctrl_bytes = ctrl.into_bytes();
        let lit_bytes = lit_enc.finish();
        let mut payload = Vec::with_capacity(ctrl_bytes.len() + lit_bytes.len() + 8);
        write_uvarint(&mut payload, ctrl_bytes.len() as u64);
        payload.extend_from_slice(&ctrl_bytes);
        payload.extend_from_slice(&lit_bytes);
        let blob = CompressedBlob::new(Algorithm::BioCompress2, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::BioCompress2)?;
        let mut meter = Meter::new();
        let mut pos = 0usize;
        let ctrl_len = read_uvarint(&blob.payload, &mut pos)? as usize;
        let ctrl_end = pos
            .checked_add(ctrl_len)
            .filter(|&e| e <= blob.payload.len())
            .ok_or(CodecError::Corrupt("control stream length"))?;
        let mut ctrl = BitReader::new(&blob.payload[pos..ctrl_end]);
        let mut lit_dec = ArithDecoder::new(&blob.payload[ctrl_end..]);
        let mut model = ContextModel::new(2);

        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            let is_repeat = ctrl.read_bit()?;
            if is_repeat {
                let revcomp = ctrl.read_bit()?;
                let len = fib_decode(&mut ctrl)? as usize + self.min_repeat - 1;
                let src = (fib_decode(&mut ctrl)? - 1) as usize;
                let dst = out.len();
                if revcomp {
                    // src is the k-mer start; source end = src + seed… no:
                    // the finder reports src_end for revcomp matches, and
                    // we encoded that value directly.
                    if src > dst || len > src {
                        return Err(CodecError::Corrupt("revcomp reference"));
                    }
                    for l in 0..len {
                        let b = out[src - 1 - l].complement();
                        out.push(b);
                    }
                } else {
                    if src >= dst {
                        return Err(CodecError::Corrupt("forward reference"));
                    }
                    for l in 0..len {
                        let b = out[src + l];
                        out.push(b);
                    }
                }
                meter.work(len as u64 / 4 + 2);
            } else {
                let run = fib_decode(&mut ctrl)? as usize;
                if run == 0 || out.len() + run > blob.original_len {
                    return Err(CodecError::Corrupt("literal run overruns output"));
                }
                for _ in 0..run {
                    let code = model.decode(&mut lit_dec)?;
                    out.push(Base::from_code(code as u8));
                }
                meter.work(run as u64 * 2);
            }
            if out.len() > blob.original_len {
                return Err(CodecError::Corrupt("repeat overruns output"));
            }
        }
        meter.heap_snapshot(out.len() as u64 + model.heap_bytes() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnax::Dnax;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &BioCompress2, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = BioCompress2::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "GGGGGGGG"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn compresses_repetitive_dna() {
        let seq = GenomeModel::highly_repetitive().generate(40_000, 7);
        let blob = roundtrip(&BioCompress2::default(), &seq);
        assert!(blob.bits_per_base() < 2.0, "{}", blob.bits_per_base());
    }

    #[test]
    fn dnax_pointers_beat_biocompress_on_long_files() {
        // Same repeat model, older pointer encoding: DNAX should win (or
        // tie) on a repeat-rich input.
        let seq = GenomeModel::highly_repetitive().generate(60_000, 3);
        let bc = roundtrip(&BioCompress2::default(), &seq);
        let dx = Dnax::default().compress(&seq).unwrap();
        assert!(dx.total_bytes() <= bc.total_bytes() * 11 / 10);
    }

    #[test]
    fn roundtrips_planted_revcomp() {
        let fwd = GenomeModel::random_only(0.5).generate(3_000, 9);
        let mut text = fwd.to_ascii();
        text.push_str(&fwd.reverse_complement().to_ascii());
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&BioCompress2::default(), &seq);
        assert!(blob.bits_per_base() < 1.5, "{}", blob.bits_per_base());
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(2_000, 13);
        let c = BioCompress2::default();
        let blob = c.compress(&seq).unwrap();
        for at in [0, blob.payload.len() / 2] {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x20;
            assert!(c.decompress(&bad).is_err());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2000}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&BioCompress2::default(), &seq);
        }
    }
}
