//! DNACompress port (extension algorithm; paper §III-A / Table 1).
//!
//! "DNA Compress … finds all approximate repeats by using Software
//! Pattern Hunter. To encode both approximate and exact repeats it uses
//! LZ"; it is a "two pass algo" that also handles "complement
//! palindrome" repeats, and the paper credits it with being "faster than
//! other algorithms" at a solid ratio (13.7 % over 2-bit baseline).
//!
//! * **pass 1** — sweep a PatternHunter **spaced-seed** index
//!   ([`dnacomp_codec::spaced`]); each candidate is extended with
//!   mismatch tolerance into an approximate repeat; reverse-complement
//!   (complemented palindrome) repeats come from the exact
//!   [`RepeatFinder`];
//! * **pass 2** — LZ-style emission: `(distance, length, substitutions)`
//!   triples for repeats, 2-bit literals otherwise.
//!
//! Versus GenCompress, the spaced seed anchors matches *across* point
//! mutations, so fewer probes are needed per anchor — the source of
//! DNACompress's speed advantage.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder, RepeatKind};
use dnacomp_codec::spaced::{SpacedIndex, SpacedSeed};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The DNACompress compressor.
#[derive(Clone, Debug)]
pub struct DnaCompress {
    /// Spaced seed used for approximate anchoring.
    pub seed: SpacedSeed,
    /// Candidates tried per anchor.
    pub max_chain: usize,
    /// Minimum repeat length worth a pointer.
    pub min_repeat: usize,
    /// Mismatch budget per repeat.
    pub max_mismatches: usize,
}

impl Default for DnaCompress {
    fn default() -> Self {
        DnaCompress {
            seed: SpacedSeed::pattern_hunter(),
            max_chain: 8,
            min_repeat: 24,
            max_mismatches: 20,
        }
    }
}

struct Repeat {
    src: usize,
    len: usize,
    revcomp: bool,
    subs: Vec<(u32, Base)>,
}

impl DnaCompress {
    /// Hamming extension identical in spirit to GenCompress's, but the
    /// spaced anchor lets it start *on top of* a mutation.
    fn extend(
        &self,
        bases: &[Base],
        src: usize,
        dst: usize,
        meter: &mut Meter,
    ) -> (usize, Vec<(u32, Base)>) {
        let n = bases.len();
        let max_len = (n - dst).min(dst - src);
        let mut subs = Vec::new();
        let mut l = 0usize;
        let mut best = (0usize, 0usize); // (len, subs committed)
        while l < max_len {
            meter.work(1);
            if bases[src + l] == bases[dst + l] {
                l += 1;
                best = (l, subs.len());
                continue;
            }
            if subs.len() >= self.max_mismatches {
                break;
            }
            // Tolerate if at least 3 of the next 4 positions match.
            let good = (1..=4)
                .filter(|&k| l + k < max_len && bases[src + l + k] == bases[dst + l + k])
                .count();
            if good < 3 {
                break;
            }
            subs.push((l as u32, bases[dst + l]));
            l += 1;
        }
        subs.truncate(best.1);
        (best.0, subs)
    }
}

impl Compressor for DnaCompress {
    fn algorithm(&self) -> Algorithm {
        Algorithm::DnaCompress
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let mut spaced = SpacedIndex::new(&bases, &self.seed);
        let mut exact = RepeatFinder::new(
            &bases,
            RepeatConfig {
                seed_len: 16,
                max_chain: 8,
                window: 0,
                search_revcomp: true,
            },
        );

        let mut w = BitWriter::new();
        let mut lit_run: Vec<Base> = Vec::new();
        let flush = |w: &mut BitWriter, run: &mut Vec<Base>| -> Result<(), CodecError> {
            if !run.is_empty() {
                w.push_bit(false);
                gamma_encode(w, run.len() as u64)?;
                for b in run.drain(..) {
                    w.push_bits(b.code() as u64, 2);
                }
            }
            Ok(())
        };
        let mut i = 0usize;
        while i < bases.len() {
            spaced.advance(i);
            exact.advance(i);
            meter.work(self.max_chain as u64 / 2 + 2);
            // Best approximate forward repeat from spaced anchors.
            let mut best: Option<Repeat> = None;
            for cand in spaced.candidates(i, self.max_chain) {
                meter.work(2);
                let (len, subs) = self.extend(&bases, cand, i, &mut meter);
                if len >= self.min_repeat
                    && best.as_ref().is_none_or(|b| len > b.len)
                {
                    best = Some(Repeat {
                        src: cand,
                        len,
                        revcomp: false,
                        subs,
                    });
                }
            }
            // Complemented palindrome (reverse-complement) repeats.
            if let Some(m) = exact.find_revcomp(i) {
                if m.len >= self.min_repeat
                    && best.as_ref().is_none_or(|b| m.len > b.len)
                {
                    debug_assert_eq!(m.kind, RepeatKind::ReverseComplement);
                    best = Some(Repeat {
                        src: m.src,
                        len: m.len,
                        revcomp: true,
                        subs: Vec::new(),
                    });
                }
            }
            match best {
                Some(rep) => {
                    flush(&mut w, &mut lit_run)?;
                    w.push_bit(true);
                    w.push_bit(rep.revcomp);
                    gamma_encode(&mut w, (rep.len - self.min_repeat + 1) as u64)?;
                    let delta = if rep.revcomp {
                        (i - rep.src) as u64
                    } else {
                        (i - 1 - rep.src) as u64
                    };
                    gamma_encode(&mut w, delta + 1)?;
                    gamma_encode(&mut w, rep.subs.len() as u64 + 1)?;
                    let mut prev = 0u32;
                    for &(off, base) in &rep.subs {
                        gamma_encode(&mut w, (off - prev + 1) as u64)?;
                        w.push_bits(base.code() as u64, 2);
                        prev = off + 1;
                    }
                    meter.work(rep.len as u64 / 8 + rep.subs.len() as u64 + 2);
                    i += rep.len;
                }
                None => {
                    lit_run.push(bases[i]);
                    i += 1;
                }
            }
        }
        flush(&mut w, &mut lit_run)?;
        meter.heap_snapshot(
            spaced.heap_bytes() as u64 + exact.heap_bytes() as u64 + bases.len() as u64,
        );
        let blob = CompressedBlob::new(Algorithm::DnaCompress, seq, w.into_bytes());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::DnaCompress)?;
        let mut meter = Meter::new();
        let mut r = BitReader::new(&blob.payload);
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            if r.read_bit()? {
                let revcomp = r.read_bit()?;
                let len = gamma_decode(&mut r)? as usize + self.min_repeat - 1;
                let delta = (gamma_decode(&mut r)? - 1) as usize;
                let n_subs = (gamma_decode(&mut r)? - 1) as usize;
                if n_subs > self.max_mismatches || n_subs > len {
                    return Err(CodecError::Corrupt("mismatch count out of range"));
                }
                let dst = out.len();
                if dst + len > blob.original_len {
                    return Err(CodecError::Corrupt("repeat overruns output"));
                }
                if revcomp {
                    if n_subs != 0 {
                        return Err(CodecError::Corrupt("revcomp repeat with subs"));
                    }
                    let src_end = dst
                        .checked_sub(delta)
                        .ok_or(CodecError::Corrupt("revcomp distance"))?;
                    if len > src_end {
                        return Err(CodecError::Corrupt("revcomp length"));
                    }
                    for l in 0..len {
                        let b = out[src_end - 1 - l].complement();
                        out.push(b);
                    }
                } else {
                    let src = dst
                        .checked_sub(delta + 1)
                        .ok_or(CodecError::Corrupt("forward distance"))?;
                    if src + len > dst {
                        return Err(CodecError::Corrupt("approximate repeat overlaps"));
                    }
                    let start = out.len();
                    for l in 0..len {
                        let b = out[src + l];
                        out.push(b);
                    }
                    let mut prev = 0u32;
                    for _ in 0..n_subs {
                        let gap = gamma_decode(&mut r)? - 1;
                        let off = prev as u64 + gap;
                        if off >= len as u64 {
                            return Err(CodecError::Corrupt("substitution offset"));
                        }
                        out[start + off as usize] =
                            Base::from_code(r.read_bits(2)? as u8);
                        prev = off as u32 + 1;
                    }
                }
                meter.work(len as u64 / 4 + n_subs as u64 + 2);
            } else {
                let run = gamma_decode(&mut r)? as usize;
                if run == 0 || out.len() + run > blob.original_len {
                    return Err(CodecError::Corrupt("literal run overruns output"));
                }
                for _ in 0..run {
                    out.push(Base::from_code(r.read_bits(2)? as u8));
                }
                meter.work(run as u64);
            }
        }
        meter.heap_snapshot(out.len() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gencompress::GenCompress;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &DnaCompress, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = DnaCompress::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn handles_mutated_repeats() {
        let mut model = GenomeModel::random_only(0.5);
        model.mutated = dnacomp_seq::gen::RepeatClass {
            rate: 0.015,
            min_len: 120,
            max_len: 700,
            mutation_rate: 0.02,
        };
        model.back_window = 1 << 16;
        let seq = model.generate(50_000, 21);
        let blob = roundtrip(&DnaCompress::default(), &seq);
        assert!(blob.bits_per_base() < 1.9, "{}", blob.bits_per_base());
    }

    #[test]
    fn faster_than_gencompress_at_similar_job() {
        // The spaced-seed anchor needs far fewer probes: DNACompress's
        // metered work should undercut GenCompress's (the paper calls
        // DNACompress "faster than other algorithms").
        let seq = GenomeModel::default().generate(40_000, 5);
        let (_, dc) = DnaCompress::default().compress_with_stats(&seq).unwrap();
        let (_, gc) = GenCompress::default().compress_with_stats(&seq).unwrap();
        assert!(
            dc.work_units < gc.work_units,
            "DNACompress {} vs GenCompress {}",
            dc.work_units,
            gc.work_units
        );
    }

    #[test]
    fn exploits_complement_palindromes() {
        let fwd = GenomeModel::random_only(0.5).generate(4_000, 9);
        let mut text = fwd.to_ascii();
        text.push_str(&fwd.reverse_complement().to_ascii());
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&DnaCompress::default(), &seq);
        assert!(blob.bits_per_base() < 1.5, "{}", blob.bits_per_base());
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = DnaCompress::default();
        let blob = c.compress(&seq).unwrap();
        let mut trunc = blob.clone();
        trunc.payload.truncate(2);
        assert!(c.decompress(&trunc).is_err());
        for at in 0..blob.payload.len().min(24) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x33;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2000}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&DnaCompress::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 64usize..2500) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&DnaCompress::default(), &seq);
        }
    }
}
