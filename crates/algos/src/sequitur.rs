//! DNASequitur: grammar-based compression (extension; paper §III-A).
//!
//! The paper's taxonomy has a third horizontal category beyond
//! substitution and statistics: "Grammar-based algorithms construct
//! context free grammar to represent input data. That CFG is then encoded
//! to binary after converting into streams. One algorithm in this
//! category is DNASequitur" (Cherniavsky & Ladner).
//!
//! This port constructs the grammar with the offline **recursive
//! pairing** strategy (Re-Pair): repeatedly replace digrams that repeat
//! enough to pay for their rules with fresh nonterminals until none do.
//! Cherniavsky & Ladner's study covers exactly this family of
//! digram-replacement grammars for DNA. The grammar (rules + final
//! sentence) is then entropy-coded with an adaptive model over the symbol
//! alphabet.
//!
//! Rule selection is **batched**: each pass counts all digrams once,
//! promotes every digram above the profitability threshold (most
//! frequent first), rewrites the sentence left-to-right in a single
//! sweep, and drops tentative rules the greedy sweep never used. The
//! sentence shrinks geometrically, so a sequence needs O(log n) passes
//! instead of one full recount per rule — the classic textbook loop is
//! quadratic and measured ~0.03 MB/s on genomic text, while the batched
//! build produces the same grammar family two orders of magnitude
//! faster.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::models::AdaptiveModel;
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};
use std::collections::HashMap;

/// Terminal symbols 0..4 are the bases; nonterminals start here.
const FIRST_RULE: u32 = 4;

/// The DNASequitur compressor.
#[derive(Clone, Debug)]
pub struct DnaSequitur {
    /// A digram must occur at least this often to become a rule
    /// (2 barely pays its overhead; 3 is the sweet spot).
    pub min_count: u32,
    /// Cap on the number of rules (bounds model size and decode memory).
    pub max_rules: usize,
}

impl Default for DnaSequitur {
    fn default() -> Self {
        DnaSequitur {
            min_count: 3,
            max_rules: 1 << 16,
        }
    }
}

/// Build the grammar: returns (rules, final sentence). Rule `r` (index
/// into the vec) defines nonterminal `FIRST_RULE + r` as the digram
/// `(left, right)`.
fn build_grammar(
    bases: &[Base],
    min_count: u32,
    max_rules: usize,
    meter: &mut Meter,
) -> (Vec<(u32, u32)>, Vec<u32>) {
    let mut sentence: Vec<u32> = bases.iter().map(|b| b.code() as u32).collect();
    let mut rules: Vec<(u32, u32)> = Vec::new();
    loop {
        if rules.len() >= max_rules || sentence.len() < 2 {
            break;
        }
        // Count digrams (non-overlapping counting is handled at replace
        // time; over-counting AA in AAA is harmless for *selection*).
        let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
        for w in sentence.windows(2) {
            *counts.entry((w[0], w[1])).or_insert(0) += 1;
        }
        meter.work(sentence.len() as u64);
        // Promote every digram worth a rule this pass, most frequent
        // first (ties broken by digram id so the grammar is
        // deterministic regardless of hash order).
        let mut worthy: Vec<((u32, u32), u32)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= min_count)
            .collect();
        if worthy.is_empty() {
            break;
        }
        worthy.sort_unstable_by_key(|&(d, c)| std::cmp::Reverse((c, d)));
        worthy.truncate(max_rules - rules.len());
        let base = rules.len();
        let tentative: HashMap<(u32, u32), u32> = worthy
            .iter()
            .enumerate()
            .map(|(i, &(d, _))| (d, FIRST_RULE + (base + i) as u32))
            .collect();
        // One greedy left-to-right sweep replaces non-overlapping
        // occurrences of every promoted digram at once.
        let mut out = Vec::with_capacity(sentence.len());
        let mut used: HashMap<u32, u32> = HashMap::new();
        let mut i = 0usize;
        while i < sentence.len() {
            if i + 1 < sentence.len() {
                if let Some(&sym) = tentative.get(&(sentence[i], sentence[i + 1])) {
                    out.push(sym);
                    *used.entry(sym).or_insert(0) += 1;
                    i += 2;
                    continue;
                }
            }
            out.push(sentence[i]);
            i += 1;
        }
        meter.work(sentence.len() as u64);
        // Compact: keep only tentative rules the sweep used often enough
        // to pay for themselves (greedy overlap can shrink a counted
        // digram below profitability); the rest are expanded back in
        // place. Rule bodies reference pre-pass symbols
        // (< FIRST_RULE + base), so only the sentence needs remapping —
        // and every earlier-rules-only invariant holds.
        let mut remap: HashMap<u32, u32> = HashMap::new();
        for (i, &(digram, _)) in worthy.iter().enumerate() {
            let t = FIRST_RULE + (base + i) as u32;
            if used.get(&t).copied().unwrap_or(0) >= min_count {
                remap.insert(t, FIRST_RULE + rules.len() as u32);
                rules.push(digram);
            }
        }
        if remap.is_empty() {
            // Nothing profitable survived the sweep; the sentence is
            // effectively unchanged, so stop.
            break;
        }
        let mut next = Vec::with_capacity(out.len());
        for &s in &out {
            if s >= FIRST_RULE + base as u32 {
                match remap.get(&s) {
                    Some(&f) => next.push(f),
                    None => {
                        // Under-used tentative rule: undo the replacement.
                        let (l, r) = worthy[(s - FIRST_RULE) as usize - base].0;
                        next.push(l);
                        next.push(r);
                    }
                }
            } else {
                next.push(s);
            }
        }
        sentence = next;
    }
    (rules, sentence)
}

/// Expand a symbol into bases, iteratively (grammars can be deep).
fn expand(
    sym: u32,
    rules: &[(u32, u32)],
    out: &mut Vec<Base>,
    limit: usize,
) -> Result<(), CodecError> {
    let mut stack = vec![sym];
    while let Some(s) = stack.pop() {
        if out.len() > limit {
            return Err(CodecError::Corrupt("grammar expands past declared length"));
        }
        if s < FIRST_RULE {
            out.push(Base::from_code(s as u8));
        } else {
            let idx = (s - FIRST_RULE) as usize;
            let &(l, r) = rules
                .get(idx)
                .ok_or(CodecError::Corrupt("undefined grammar rule"))?;
            // A rule may only reference earlier rules (Re-Pair builds them
            // in order), which also guarantees expansion terminates.
            if l >= s || r >= s {
                return Err(CodecError::Corrupt("grammar rule forward reference"));
            }
            stack.push(r);
            stack.push(l);
        }
    }
    Ok(())
}

impl Compressor for DnaSequitur {
    fn algorithm(&self) -> Algorithm {
        Algorithm::DnaSequitur
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let (rules, sentence) = build_grammar(&bases, self.min_count, self.max_rules, &mut meter);
        let n_symbols = FIRST_RULE as usize + rules.len();
        meter.heap_snapshot(
            bases.len() as u64 * 4
                + rules.len() as u64 * 8
                + sentence.len() as u64 * 4
                + n_symbols as u64 * 4,
        );

        // Header: rule count + sentence length, then arithmetic-coded
        // rule bodies and sentence over the symbol alphabet.
        let mut payload = Vec::new();
        write_uvarint(&mut payload, rules.len() as u64);
        write_uvarint(&mut payload, sentence.len() as u64);
        let mut model = AdaptiveModel::new(n_symbols.max(4));
        let mut enc = ArithEncoder::new();
        for &(l, r) in &rules {
            model.encode(&mut enc, l as usize);
            model.encode(&mut enc, r as usize);
        }
        for &s in &sentence {
            model.encode(&mut enc, s as usize);
        }
        meter.work((rules.len() * 2 + sentence.len()) as u64 * 2);
        payload.extend_from_slice(&enc.finish());
        let blob = CompressedBlob::new(Algorithm::DnaSequitur, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::DnaSequitur)?;
        let mut meter = Meter::new();
        let mut pos = 0usize;
        let n_rules = read_uvarint(&blob.payload, &mut pos)? as usize;
        let sent_len = read_uvarint(&blob.payload, &mut pos)? as usize;
        if n_rules > self.max_rules || sent_len > blob.original_len.max(1) {
            return Err(CodecError::Corrupt("grammar header out of range"));
        }
        let n_symbols = FIRST_RULE as usize + n_rules;
        let mut model = AdaptiveModel::new(n_symbols.max(4));
        let mut dec = ArithDecoder::new(&blob.payload[pos..]);
        let mut rules: Vec<(u32, u32)> = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let l = model.decode(&mut dec)? as u32;
            let r = model.decode(&mut dec)? as u32;
            rules.push((l, r));
        }
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        for _ in 0..sent_len {
            let s = model.decode(&mut dec)? as u32;
            expand(s, &rules, &mut out, blob.original_len)?;
        }
        meter.work((n_rules * 2 + sent_len) as u64 * 2 + out.len() as u64);
        meter.heap_snapshot(out.len() as u64 + rules.len() as u64 * 8);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &DnaSequitur, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = DnaSequitur::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "AAAAAAAAA"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn grammar_compresses_periodic_text_hard() {
        // "ACGT" × 4096: the grammar needs only ~log2(4096) rules.
        let seq = PackedSeq::from_ascii("ACGT".repeat(4096).as_bytes()).unwrap();
        let blob = roundtrip(&DnaSequitur::default(), &seq);
        assert!(blob.total_bytes() < 120, "{} bytes", blob.total_bytes());
    }

    #[test]
    fn build_grammar_hierarchy_is_logarithmic() {
        let bases = PackedSeq::from_ascii("AC".repeat(1 << 12).as_bytes())
            .unwrap()
            .unpack();
        let mut meter = Meter::new();
        let (rules, sentence) = build_grammar(&bases, 2, 1 << 16, &mut meter);
        // Repeated doubling: ~12 rules, sentence collapses to ~1 symbol.
        assert!(rules.len() <= 16, "{} rules", rules.len());
        assert!(sentence.len() <= 4, "sentence {}", sentence.len());
    }

    #[test]
    fn rules_only_reference_earlier_symbols() {
        let seq = GenomeModel::highly_repetitive().generate(20_000, 3);
        let mut meter = Meter::new();
        let (rules, _) = build_grammar(&seq.unpack(), 3, 1 << 16, &mut meter);
        for (i, &(l, r)) in rules.iter().enumerate() {
            let sym = FIRST_RULE + i as u32;
            assert!(l < sym && r < sym, "rule {i} references forward");
        }
    }

    #[test]
    fn reasonable_on_dna() {
        let seq = GenomeModel::default().generate(30_000, 7);
        let blob = roundtrip(&DnaSequitur::default(), &seq);
        assert!(blob.bits_per_base() < 2.3, "{}", blob.bits_per_base());
    }

    #[test]
    fn homopolymer_runs() {
        let seq = PackedSeq::from_ascii("A".repeat(10_000).as_bytes()).unwrap();
        let blob = roundtrip(&DnaSequitur::default(), &seq);
        assert!(blob.total_bytes() < 100, "{} bytes", blob.total_bytes());
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::highly_repetitive().generate(5_000, 13);
        let c = DnaSequitur::default();
        let blob = c.compress(&seq).unwrap();
        let mut trunc = blob.clone();
        trunc.payload.truncate(1);
        assert!(c.decompress(&trunc).is_err());
        for at in 0..blob.payload.len().min(24) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x44;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,1500}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&DnaSequitur::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 64usize..2000) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&DnaSequitur::default(), &seq);
        }
    }
}
