//! DNAC port (extension algorithm; paper §III-A).
//!
//! "In 2004, a revised algorithm based on DNAX was published by the name
//! of DNAC. It is \[a\] four phases based algorithm. It constructs suffix
//! tree in first phase to find exact repeats, in second phase, using
//! dynamic programming, exact repeats are approximated to partial
//! repeats. In third phase the optimal non-overlapping repeats are
//! extracted. In fourth phase it uses Fibonacci \[en\]coding to encode
//! repeats."
//!
//! The port keeps all four phases, with the suffix-*array* standing in
//! for the suffix tree (phase 1) and exact prefixes of the discovered
//! repeats as the "partial repeats" menu (phase 2 — every prefix of an
//! exact repeat is itself usable, which is what the parse optimiser
//! needs):
//!
//! 1. suffix array + LCP → per-position longest earlier match;
//! 2. each match contributes *all* its prefixes ≥ `min_repeat` as
//!    candidate partial repeats;
//! 3. **optimal non-overlapping selection**: a left-to-right dynamic
//!    program chooses the parse minimising total modelled bits — unlike
//!    the greedy sweeps of DNAX/Cfact, a shorter match is taken when it
//!    lines the next match up better;
//! 4. repeats are Fibonacci-coded (length and distance), literals are
//!    2 bits/base.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{fib_decode, fib_encode};
use dnacomp_codec::suffix::SuffixArray;
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The DNAC compressor.
#[derive(Clone, Debug)]
pub struct Dnac {
    /// Minimum repeat length worth a pointer.
    pub min_repeat: usize,
}

impl Default for Dnac {
    fn default() -> Self {
        Dnac { min_repeat: 20 }
    }
}

/// Modelled bit cost of a Fibonacci codeword for `n ≥ 1` (≈ the index of
/// the largest Fibonacci number ≤ n, plus the terminator).
fn fib_bits(n: u64) -> u64 {
    // log_phi(n·sqrt5) ≈ 1.44·log2(n) + 1.67; +1 terminator.
    let lg = 64 - n.max(1).leading_zeros() as u64;
    (lg * 144).div_ceil(100) + 3
}

impl Compressor for Dnac {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Dnac
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let n = bases.len();

        // Phase 1: suffix structure → longest earlier match per position.
        let sa = SuffixArray::build(&bases);
        let table = sa.prev_occurrence_table();
        let logn = (64 - (n.max(2) as u64).leading_zeros()) as u64;
        meter.work(2 * n as u64 * logn);
        meter.heap_snapshot(
            sa.heap_bytes() as u64 + table.capacity() as u64 * 8 + n as u64 * 13,
        );

        // Phases 2+3: optimal parse. dp[i] = (min bits to encode the
        // prefix of length i, step taken): step 0 = literal, else the
        // repeat length used ending at i.
        const LIT_BITS: u64 = 3; // 2 bits + amortised run framing
        let mut dp: Vec<u64> = vec![u64::MAX; n + 1];
        let mut step: Vec<u32> = vec![0; n + 1];
        dp[0] = 0;
        for i in 0..n {
            if dp[i] == u64::MAX {
                continue;
            }
            // Literal.
            let lit = dp[i] + LIT_BITS;
            if lit < dp[i + 1] {
                dp[i + 1] = lit;
                step[i + 1] = 0;
            }
            // Partial repeats: every usable prefix of the longest match.
            let (src, max_len) = table[i];
            let max_len = (max_len as usize).min(n - i);
            if max_len >= self.min_repeat {
                let dist = (i - src as usize) as u64;
                // Evaluating every prefix is O(n·len); sample prefix
                // lengths geometrically plus the exact ends — the DP
                // stays near-optimal at O(n log n) cost.
                let mut cands: Vec<usize> = vec![max_len, self.min_repeat];
                let mut l = self.min_repeat * 2;
                while l < max_len {
                    cands.push(l);
                    l *= 2;
                }
                for &l in &cands {
                    let l = l.min(max_len);
                    let cost = dp[i] + 2 + fib_bits((l - self.min_repeat + 1) as u64)
                        + fib_bits(dist);
                    meter.work(1);
                    if cost < dp[i + l] {
                        dp[i + l] = cost;
                        step[i + l] = l as u32;
                    }
                }
            }
            meter.work(1);
        }

        // Reconstruct the parse, then emit (phase 4).
        #[derive(Clone, Copy)]
        enum Tok {
            Lit,
            Rep(u32),
        }
        let mut toks: Vec<Tok> = Vec::new();
        let mut i = n;
        while i > 0 {
            if step[i] == 0 {
                toks.push(Tok::Lit);
                i -= 1;
            } else {
                toks.push(Tok::Rep(step[i]));
                i -= step[i] as usize;
            }
        }
        toks.reverse();

        let mut w = BitWriter::new();
        let mut pos = 0usize;
        let mut lit_run: Vec<Base> = Vec::new();
        let flush = |w: &mut BitWriter, run: &mut Vec<Base>| -> Result<(), CodecError> {
            if !run.is_empty() {
                w.push_bit(false);
                fib_encode(w, run.len() as u64)?;
                for b in run.drain(..) {
                    w.push_bits(b.code() as u64, 2);
                }
            }
            Ok(())
        };
        for t in toks {
            match t {
                Tok::Lit => {
                    lit_run.push(bases[pos]);
                    pos += 1;
                }
                Tok::Rep(l) => {
                    flush(&mut w, &mut lit_run)?;
                    let (src, _) = table[pos];
                    w.push_bit(true);
                    fib_encode(&mut w, (l as usize - self.min_repeat + 1) as u64)?;
                    fib_encode(&mut w, (pos - src as usize) as u64)?;
                    pos += l as usize;
                }
            }
        }
        flush(&mut w, &mut lit_run)?;
        debug_assert_eq!(pos, n);
        let blob = CompressedBlob::new(Algorithm::Dnac, seq, w.into_bytes());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Dnac)?;
        let mut meter = Meter::new();
        let mut r = BitReader::new(&blob.payload);
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            if r.read_bit()? {
                let len = fib_decode(&mut r)? as usize + self.min_repeat - 1;
                let dist = fib_decode(&mut r)? as usize;
                let dst = out.len();
                if dist == 0 || dist > dst {
                    return Err(CodecError::Corrupt("dnac distance out of range"));
                }
                if dst + len > blob.original_len {
                    return Err(CodecError::Corrupt("dnac repeat overruns output"));
                }
                for l in 0..len {
                    let b = out[dst - dist + l];
                    out.push(b);
                }
                meter.work(len as u64 / 4 + 2);
            } else {
                let run = fib_decode(&mut r)? as usize;
                if run == 0 || out.len() + run > blob.original_len {
                    return Err(CodecError::Corrupt("dnac literal run overruns output"));
                }
                for _ in 0..run {
                    out.push(Base::from_code(r.read_bits(2)? as u8));
                }
                meter.work(run as u64);
            }
        }
        meter.heap_snapshot(out.len() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfact::Cfact;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &Dnac, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = Dnac::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "CCCCCCCCCC"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn fib_bits_is_an_upper_bound() {
        // The cost model must never underestimate the real codeword, or
        // the DP would systematically prefer encodings that turn out
        // longer than modelled.
        use dnacomp_codec::bitio::BitWriter;
        for n in [1u64, 2, 3, 7, 12, 100, 1_000, 65_535, 1 << 30] {
            let mut w = BitWriter::new();
            fib_encode(&mut w, n).unwrap();
            assert!(
                fib_bits(n) >= w.bit_len() as u64,
                "n={n}: model {} < actual {}",
                fib_bits(n),
                w.bit_len()
            );
        }
    }

    #[test]
    fn near_two_bits_on_random() {
        let seq = GenomeModel::random_only(0.5).generate(15_000, 3);
        let blob = roundtrip(&Dnac::default(), &seq);
        assert!(blob.bits_per_base() < 2.2, "{}", blob.bits_per_base());
    }

    #[test]
    fn exploits_repeats() {
        let seq = GenomeModel::highly_repetitive().generate(40_000, 7);
        let blob = roundtrip(&Dnac::default(), &seq);
        assert!(blob.bits_per_base() < 1.6, "{}", blob.bits_per_base());
    }

    #[test]
    fn optimal_parse_not_worse_than_greedy_cfact() {
        // Same candidate table, same 2-bit literals; DNAC's DP parse plus
        // Fibonacci pointers should beat or roughly match greedy Cfact
        // with gamma pointers on repeat-rich inputs.
        for seed in [1u64, 5, 9] {
            let seq = GenomeModel::highly_repetitive().generate(30_000, seed);
            let dnac = Dnac::default().compress(&seq).unwrap();
            let cfact = Cfact { min_repeat: 20 }.compress(&seq).unwrap();
            assert!(
                dnac.total_bytes() <= cfact.total_bytes() * 21 / 20,
                "seed {seed}: DNAC {} vs Cfact {}",
                dnac.total_bytes(),
                cfact.total_bytes()
            );
        }
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = Dnac::default();
        let blob = c.compress(&seq).unwrap();
        let mut trunc = blob.clone();
        trunc.payload.truncate(blob.payload.len() / 3);
        assert!(c.decompress(&trunc).is_err());
        for at in 0..blob.payload.len().min(24) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x22;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,1500}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&Dnac::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 64usize..2500) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&Dnac::default(), &seq);
        }
    }
}
