//! Bounded thread pool shared between block tasks and service jobs.
//!
//! [`TaskPool`] is the one pool everything intra-file-parallel runs on:
//! [`crate::ParallelCompressor`] submits per-block compress/decompress
//! tasks here, and `dnacomp-server` hands the *same* pool to every
//! worker, so block tasks from one giant file interleave FIFO with
//! block tasks from every other job instead of head-of-line-blocking a
//! lane.
//!
//! ## Execution model: help-first batches
//!
//! Work arrives as a *batch* ([`TaskPool::run_batch`]): the caller
//! enqueues one claim ticket per task and then **helps** — it claims and
//! runs tasks from its own batch until none are left, and only then
//! blocks waiting for stragglers running on pool threads. Two
//! consequences:
//!
//! * **no deadlock by saturation** — a batch always makes progress on
//!   the submitting thread even if every pool thread is busy (or the
//!   pool has zero threads, the degenerate serial mode);
//! * **bounded** — the pool never spawns per-batch threads; concurrency
//!   is capped at `threads + submitters`.
//!
//! Batch results are returned in submission order, so callers observe
//! deterministic output regardless of which thread ran which task.
//! Panics inside a task are contained per batch: the pool thread
//! survives, the caller re-raises a summarising panic after the batch
//! drains (the service's per-job panic containment then turns it into a
//! typed job error).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Thunk = Box<dyn FnOnce() + Send + 'static>;

/// Recover a poisoned lock: pool state is a queue of claim tickets and
/// is valid at every step, so the panic of one task never invalidates it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

struct QueueState {
    tasks: VecDeque<Thunk>,
    shutdown: bool,
}

struct SharedQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

/// Running totals of where batch tasks actually executed; exported via
/// `Metrics` so pool sharing is observable from `serve --json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct PoolStats {
    /// Tasks executed by dedicated pool threads.
    pub tasks_run_by_pool: u64,
    /// Tasks executed inline by the submitting thread (helping).
    pub tasks_run_inline: u64,
    /// Batches submitted.
    pub batches: u64,
}

struct Counters {
    pool: AtomicU64,
    inline: AtomicU64,
    batches: AtomicU64,
}

/// One task batch in flight. Slots are claimed by index (`next`), so a
/// task runs exactly once no matter how many claim tickets race.
struct Batch<T, F> {
    slots: Vec<Mutex<Option<F>>>,
    results: Vec<Mutex<Option<T>>>,
    next: AtomicUsize,
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    panicked: AtomicBool,
}

impl<T, F: FnOnce() -> T> Batch<T, F> {
    /// Claim and run one task; `false` when every slot is claimed.
    fn run_one(&self) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            return false;
        }
        if let Some(job) = lock_recover(&self.slots[i]).take() {
            match catch_unwind(AssertUnwindSafe(job)) {
                Ok(value) => *lock_recover(&self.results[i]) = Some(value),
                Err(_) => self.panicked.store(true, Ordering::Release),
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = lock_recover(&self.done_lock);
                self.done.notify_all();
            }
        }
        true
    }
}

/// A bounded, shared worker pool executing homogeneous task batches.
pub struct TaskPool {
    shared: Arc<SharedQueue>,
    counters: Arc<Counters>,
    threads: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// A pool with `threads` dedicated worker threads. Zero is allowed:
    /// every batch then runs entirely on its submitting thread, which is
    /// the serial reference mode the round-trip tests compare against.
    pub fn new(threads: usize) -> TaskPool {
        let shared = Arc::new(SharedQueue {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let counters = Arc::new(Counters {
            pool: AtomicU64::new(0),
            inline: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("blockpool-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn pool thread")
            })
            .collect();
        TaskPool {
            shared,
            counters,
            threads: handles,
        }
    }

    /// Number of dedicated pool threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Snapshot of the sharing counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_run_by_pool: self.counters.pool.load(Ordering::Relaxed),
            tasks_run_inline: self.counters.inline.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
        }
    }

    fn worker_loop(shared: &SharedQueue) {
        loop {
            let task = {
                let mut state = lock_recover(&shared.state);
                loop {
                    if let Some(task) = state.tasks.pop_front() {
                        break Some(task);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = shared
                        .available
                        .wait(state)
                        .unwrap_or_else(|poison| poison.into_inner());
                }
            };
            match task {
                Some(task) => task(),
                None => return,
            }
        }
    }

    /// Run `jobs` to completion, returning results in submission order.
    ///
    /// The calling thread helps drain its own batch (see module docs),
    /// so this completes even on a zero-thread pool and cannot deadlock
    /// under saturation.
    ///
    /// # Panics
    /// If any task panicked; raised on the calling thread after the
    /// whole batch has drained (pool threads always survive).
    pub fn run_batch<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        let n = jobs.len();
        let batch = Arc::new(Batch {
            slots: jobs.into_iter().map(|j| Mutex::new(Some(j))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });

        // One claim ticket per task; pool threads race the caller for them.
        if self.threads() > 0 {
            let mut state = lock_recover(&self.shared.state);
            for _ in 0..n {
                let batch = Arc::clone(&batch);
                let counters = Arc::clone(&self.counters);
                state.tasks.push_back(Box::new(move || {
                    if batch.run_one() {
                        counters.pool.fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            drop(state);
            self.shared.available.notify_all();
        }

        // Help-first: drain our own batch, then wait for stragglers.
        while batch.run_one() {
            self.counters.inline.fetch_add(1, Ordering::Relaxed);
        }
        let mut guard = lock_recover(&batch.done_lock);
        while batch.remaining.load(Ordering::Acquire) != 0 {
            guard = batch
                .done
                .wait(guard)
                .unwrap_or_else(|poison| poison.into_inner());
        }
        drop(guard);

        if batch.panicked.load(Ordering::Acquire) {
            panic!("a block task panicked; batch aborted");
        }
        batch
            .results
            .iter()
            .map(|slot| lock_recover(slot).take().expect("batch task completed"))
            .collect()
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_thread_pool_runs_inline() {
        let pool = TaskPool::new(0);
        let out = pool.run_batch((0..16).map(|i| move || i * 2).collect());
        assert_eq!(out, (0..16).map(|i| i * 2).collect::<Vec<_>>());
        let stats = pool.stats();
        assert_eq!(stats.tasks_run_inline, 16);
        assert_eq!(stats.tasks_run_by_pool, 0);
        assert_eq!(stats.batches, 1);
    }

    #[test]
    fn results_are_in_submission_order() {
        let pool = TaskPool::new(3);
        for round in 0..8u64 {
            let out = pool.run_batch(
                (0..40u64)
                    .map(|i| {
                        move || {
                            // Uneven work so claim order scrambles.
                            let mut acc = round;
                            for k in 0..(i % 7) * 500 {
                                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                            }
                            (i, acc)
                        }
                    })
                    .collect(),
            );
            let ids: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
            assert_eq!(ids, (0..40).collect::<Vec<_>>());
        }
        let stats = pool.stats();
        assert_eq!(stats.tasks_run_by_pool + stats.tasks_run_inline, 8 * 40);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let pool = TaskPool::new(2);
        let out: Vec<u32> = pool.run_batch(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
        assert_eq!(pool.stats().batches, 0);
    }

    #[test]
    fn concurrent_batches_from_many_submitters_complete() {
        let pool = Arc::new(TaskPool::new(2));
        let submitters: Vec<_> = (0..4u64)
            .map(|s| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let out =
                        pool.run_batch((0..25u64).map(|i| move || s * 1000 + i).collect());
                    assert_eq!(out, (0..25).map(|i| s * 1000 + i).collect::<Vec<_>>());
                })
            })
            .collect();
        for t in submitters {
            t.join().unwrap();
        }
    }

    #[test]
    fn task_panic_is_contained_and_reraised_after_drain() {
        let pool = TaskPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(
                (0..10u32)
                    .map(|i| {
                        move || {
                            if i == 3 {
                                panic!("boom");
                            }
                            i
                        }
                    })
                    .collect(),
            )
        }));
        assert!(result.is_err());
        // Pool threads survived the panic and keep serving batches.
        let out = pool.run_batch((0..4u32).map(|i| move || i + 1).collect());
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
