//! BWT + move-to-front + zero-run RLE + rANS block compressor.
//!
//! The bzip2 pipeline specialised to the 4-letter alphabet (extension;
//! the paper's survey covers suffix-structure compressors — this is the
//! transform-based sibling). Each ~128 KiB section is independently:
//!
//! 1. **Burrows–Wheeler transformed** via the prefix-doubling
//!    [`SuffixArray`] (its comparison treats running off the end as
//!    smaller than every base — the implicit-sentinel order BWT needs),
//!    emitting the last column `L` (sentinel row omitted) plus the
//!    primary index `p` ∈ `[1, m]` marking where the sentinel row sat.
//! 2. **Move-to-front** coded over the 4-base alphabet, turning local
//!    symbol reuse into small indices.
//! 3. **Zero-run RLE** coded bzip2-style: runs of MTF zeros in bijective
//!    base-2 (`RUNA`/`RUNB` digits), nonzero index `v` → symbol `v + 1`,
//!    a 5-symbol stream.
//! 4. **Entropy coded** with a static [`FreqTable`] + rANS pair per
//!    section.
//!
//! Wire format (per section, concatenated in the payload after a uvarint
//! section count): `uvarint m` (section length in bases), `uvarint p`
//! (primary index), `uvarint rle_len` (RLE symbol count), then the
//! frequency-table header and rANS stream. Every count is bounds-checked
//! against the container limits *before* any proportional allocation.

use crate::blob::{Algorithm, CompressedBlob, MAX_PREALLOC_BASES};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::rans::{FreqTable, RansDecoder, RansEncoder};
use dnacomp_codec::suffix::SuffixArray;
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// RLE symbol: one bijective-base-2 run digit worth 1·2^k zeros.
const RUNA: usize = 0;
/// RLE symbol: one bijective-base-2 run digit worth 2·2^k zeros.
const RUNB: usize = 1;
/// RLE alphabet size: `RUNA`, `RUNB`, and MTF indices 1..=3 shifted up.
const RLE_SYMS: usize = 5;

/// The BWT+MTF+RLE+rANS block compressor.
#[derive(Clone, Copy, Debug)]
pub struct Bwt {
    /// Section size in bases; each section is transformed independently,
    /// bounding the suffix-array working set.
    pub section_len: usize,
}

impl Default for Bwt {
    fn default() -> Self {
        Bwt {
            section_len: 128 << 10,
        }
    }
}

/// Forward BWT of `text` (non-empty): the last column with the sentinel
/// row omitted, plus the 1-based primary index of that row.
fn bwt_forward(text: &[Base]) -> (Vec<Base>, usize) {
    let m = text.len();
    debug_assert!(m > 0);
    let sa = SuffixArray::build(text);
    // Conceptually the matrix sorts the m+1 rotations of `text·$`. Row 0
    // is the `$`-led rotation, whose last column is the final base. Row
    // j+1 corresponds to the rank-j suffix; its last column is the base
    // before that suffix — or `$` when the suffix starts at 0, which is
    // the row we omit and record as the primary index.
    let mut l = Vec::with_capacity(m);
    l.push(text[m - 1]);
    let mut primary = 0usize;
    for (j, &s) in sa.positions().iter().enumerate() {
        if s == 0 {
            primary = j + 1;
        } else {
            l.push(text[s as usize - 1]);
        }
    }
    debug_assert!(primary >= 1 && primary <= m);
    (l, primary)
}

/// Inverse BWT: reconstruct the section from the last column and primary
/// index. `l.len() == m`, `1 <= primary <= m` (checked by the caller).
fn bwt_inverse(l: &[Base], primary: usize) -> Result<Vec<Base>, CodecError> {
    let m = l.len();
    // Full last column over the 5-symbol alphabet {$=0, A..T=1..4}, with
    // the sentinel reinserted at the primary index.
    let code_at = |row: usize| -> usize {
        use std::cmp::Ordering;
        match row.cmp(&primary) {
            Ordering::Less => l[row].code() as usize + 1,
            Ordering::Equal => 0,
            Ordering::Greater => l[row - 1].code() as usize + 1,
        }
    };
    // LF mapping: lf[row] = C[c] + occ(c, row) for c = L'[row].
    let mut counts = [0u32; 5];
    let mut lf = vec![0u32; m + 1];
    for (row, slot) in lf.iter_mut().enumerate() {
        let c = code_at(row);
        *slot = counts[c];
        counts[c] += 1;
    }
    let mut c_base = [0u32; 5];
    let mut acc = 0u32;
    for (c, slot) in c_base.iter_mut().enumerate() {
        *slot = acc;
        acc += counts[c];
    }
    for (row, slot) in lf.iter_mut().enumerate() {
        *slot += c_base[code_at(row)];
    }
    // Row 0 is the `$`-led rotation: walking LF from it emits the text
    // backwards. Hitting the sentinel before all m bases are out means
    // the (l, primary) pair was inconsistent.
    let mut out = vec![Base::A; m];
    let mut row = 0usize;
    for slot in out.iter_mut().rev() {
        let c = code_at(row);
        if c == 0 {
            return Err(CodecError::Corrupt("BWT walk hit sentinel early"));
        }
        *slot = Base::from_code((c - 1) as u8);
        row = lf[row] as usize;
    }
    if code_at(row) != 0 {
        return Err(CodecError::Corrupt("BWT walk did not end at sentinel"));
    }
    Ok(out)
}

/// MTF + zero-run RLE: bases → 5-symbol stream.
fn mtf_rle_encode(l: &[Base]) -> Vec<u8> {
    let mut table = [0u8, 1, 2, 3];
    let mut out = Vec::with_capacity(l.len() / 2 + 8);
    let mut zero_run = 0u64;
    let flush = |run: &mut u64, out: &mut Vec<u8>| {
        // Bijective base-2: digits d ∈ {1, 2}, run = Σ d_k·2^k.
        let mut z = *run;
        while z > 0 {
            if z & 1 == 1 {
                out.push(RUNA as u8);
                z = (z - 1) / 2;
            } else {
                out.push(RUNB as u8);
                z = (z - 2) / 2;
            }
        }
        *run = 0;
    };
    for &b in l {
        let code = b.code();
        let idx = table.iter().position(|&t| t == code).unwrap();
        table.copy_within(..idx, 1);
        table[0] = code;
        if idx == 0 {
            zero_run += 1;
        } else {
            flush(&mut zero_run, &mut out);
            out.push(idx as u8 + 1);
        }
    }
    flush(&mut zero_run, &mut out);
    out
}

/// Inverse of [`mtf_rle_encode`]; `m` is the exact base count the stream
/// must reproduce (over-long runs are refused before allocation grows).
fn mtf_rle_decode(syms: &[u8], m: usize) -> Result<Vec<Base>, CodecError> {
    let mut table = [0u8, 1, 2, 3];
    let mut out = Vec::with_capacity(m);
    let mut run = 0u64;
    let mut weight = 1u64;
    let flush = |run: &mut u64,
                     weight: &mut u64,
                     out: &mut Vec<Base>,
                     table: &[u8; 4]|
     -> Result<(), CodecError> {
        if *run > (m - out.len()) as u64 {
            return Err(CodecError::Corrupt("BWT zero run exceeds section length"));
        }
        for _ in 0..*run {
            out.push(Base::from_code(table[0]));
        }
        *run = 0;
        *weight = 1;
        Ok(())
    };
    for &s in syms {
        match s as usize {
            RUNA => {
                run += weight;
                weight <<= 1;
            }
            RUNB => {
                run += 2 * weight;
                weight <<= 1;
            }
            v if v < RLE_SYMS => {
                flush(&mut run, &mut weight, &mut out, &table)?;
                if out.len() >= m {
                    return Err(CodecError::Corrupt("BWT RLE stream too long"));
                }
                let idx = v - 1;
                let code = table[idx];
                table.copy_within(..idx, 1);
                table[0] = code;
                out.push(Base::from_code(code));
            }
            _ => return Err(CodecError::Corrupt("BWT RLE symbol out of range")),
        }
    }
    flush(&mut run, &mut weight, &mut out, &table)?;
    if out.len() != m {
        return Err(CodecError::Corrupt("BWT RLE stream short of section length"));
    }
    Ok(out)
}

impl Bwt {
    fn encode_section(&self, text: &[Base], out: &mut Vec<u8>, meter: &mut Meter) {
        let m = text.len();
        let (l, primary) = bwt_forward(text);
        let rle = mtf_rle_encode(&l);
        // SA build dominates: ~log²-factor over m, flat-rated here.
        meter.work(m as u64 * 20 + rle.len() as u64);
        meter.heap_snapshot((m * 12 + rle.len()) as u64);
        write_uvarint(out, m as u64);
        write_uvarint(out, primary as u64);
        write_uvarint(out, rle.len() as u64);
        let mut counts = vec![0u32; RLE_SYMS];
        for &s in &rle {
            counts[s as usize] += 1;
        }
        let table = FreqTable::build(&counts);
        table.write(out);
        let mut enc = RansEncoder::new();
        for &s in &rle {
            table.encode(&mut enc, s as usize);
        }
        out.extend_from_slice(&enc.finish());
    }

    fn decode_section(
        bytes: &[u8],
        pos: &mut usize,
        remaining_bases: usize,
        meter: &mut Meter,
    ) -> Result<Vec<Base>, CodecError> {
        let m = read_uvarint(bytes, pos)? as usize;
        if m == 0 || m > remaining_bases {
            return Err(CodecError::Corrupt("BWT section length out of bounds"));
        }
        let primary = read_uvarint(bytes, pos)? as usize;
        if primary == 0 || primary > m {
            return Err(CodecError::Corrupt("BWT primary index out of range"));
        }
        let rle_len = read_uvarint(bytes, pos)? as usize;
        // Every RLE symbol covers at least one base via RUNA (worth ≥1
        // zero) or a literal, except that run digits can be "wasted" on
        // high powers — but a valid encoder emits at most one digit per
        // doubling, so rle_len can never exceed m + log2(m) + 1. Cap
        // generously before the rANS stage allocates.
        if rle_len > m + 64 {
            return Err(CodecError::Corrupt("BWT RLE length exceeds section bound"));
        }
        let table = FreqTable::read(bytes, pos, RLE_SYMS)?;
        let mut dec = RansDecoder::new(&bytes[*pos..])?;
        let mut rle = Vec::with_capacity(rle_len);
        for _ in 0..rle_len {
            rle.push(table.decode(&mut dec) as u8);
        }
        if !dec.is_drained() {
            return Err(CodecError::Corrupt("BWT rANS stream not fully drained"));
        }
        *pos = bytes.len();
        let l = mtf_rle_decode(&rle, m)?;
        let text = bwt_inverse(&l, primary)?;
        meter.work(m as u64 * 8 + rle_len as u64);
        meter.heap_snapshot((m * 12 + rle_len) as u64);
        Ok(text)
    }
}

impl Compressor for Bwt {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Bwt
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let text = seq.unpack();
        let section = self.section_len.max(1);
        let mut payload = Vec::new();
        write_uvarint(&mut payload, text.len().div_ceil(section) as u64);
        let mut sections = Vec::new();
        for chunk in text.chunks(section) {
            let mut body = Vec::new();
            self.encode_section(chunk, &mut body, &mut meter);
            sections.push(body);
        }
        for body in sections {
            write_uvarint(&mut payload, body.len() as u64);
            payload.extend_from_slice(&body);
        }
        let blob = CompressedBlob::new_v2(Algorithm::Bwt, seq, payload);
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Bwt)?;
        let mut meter = Meter::new();
        let bytes = &blob.payload[..];
        let mut pos = 0usize;
        let n_sections = read_uvarint(bytes, &mut pos)? as usize;
        // Affordability: each section costs ≥ 4 payload bytes (three
        // uvarints + table), and the section count itself is bounded by
        // the container base limit / 1.
        if n_sections > bytes.len() || n_sections > MAX_PREALLOC_BASES {
            return Err(CodecError::Corrupt("BWT section count exceeds payload"));
        }
        let mut text: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        for _ in 0..n_sections {
            let body_len = read_uvarint(bytes, &mut pos)? as usize;
            let end = pos
                .checked_add(body_len)
                .filter(|&e| e <= bytes.len())
                .ok_or(CodecError::Corrupt("BWT section body exceeds payload"))?;
            let remaining = blob.original_len.saturating_sub(text.len());
            let mut body_pos = 0usize;
            let section =
                Bwt::decode_section(&bytes[pos..end], &mut body_pos, remaining, &mut meter)?;
            text.extend_from_slice(&section);
            pos = end;
        }
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("BWT payload has trailing bytes"));
        }
        if text.len() != blob.original_len {
            return Err(CodecError::Corrupt("BWT sections do not sum to length"));
        }
        let seq = PackedSeq::from(text.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }

    fn stage_times(&self, seq: &PackedSeq) -> Option<(f64, f64)> {
        use std::time::Instant;
        let t0 = Instant::now();
        self.compress(seq).ok()?;
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Model stage alone: BWT + MTF + RLE per section, no rANS.
        let t0 = Instant::now();
        let text = seq.unpack();
        for chunk in text.chunks(self.section_len.max(1)) {
            if chunk.is_empty() {
                continue;
            }
            let (l, _primary) = bwt_forward(chunk);
            std::hint::black_box(mtf_rle_encode(&l));
        }
        let model_ms = t0.elapsed().as_secs_f64() * 1e3;
        Some((model_ms, (full_ms - model_ms).max(0.0)))
    }

    fn entropy_backend(&self) -> &'static str {
        "rans"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn bases(s: &str) -> Vec<Base> {
        PackedSeq::from_ascii(s.as_bytes()).unwrap().unpack()
    }

    #[test]
    fn forward_inverse_bwt_roundtrips() {
        for s in ["A", "ACGT", "GATTACA", "AAAAAAAA", "ACGTACGTACGT"] {
            let text = bases(s);
            let (l, p) = bwt_forward(&text);
            assert_eq!(l.len(), text.len());
            assert!(p >= 1 && p <= text.len());
            assert_eq!(bwt_inverse(&l, p).unwrap(), text, "input {s}");
        }
    }

    #[test]
    fn mtf_rle_roundtrips_and_compacts_runs() {
        let l = bases(&"A".repeat(500));
        let syms = mtf_rle_encode(&l);
        // 500 zeros → ~log2(500) run digits.
        assert!(syms.len() <= 10, "run digits = {}", syms.len());
        assert_eq!(mtf_rle_decode(&syms, 500).unwrap(), l);
        let mixed = bases("ACGTTTTGGACACAC");
        let syms = mtf_rle_encode(&mixed);
        assert_eq!(mtf_rle_decode(&syms, mixed.len()).unwrap(), mixed);
    }

    #[test]
    fn roundtrip_with_stats() {
        let seq = GenomeModel::default().generate(30_000, 71);
        let c = Bwt::default();
        let (blob, stats) = c.compress_with_stats(&seq).unwrap();
        assert_eq!(blob.algorithm, Algorithm::Bwt);
        assert_eq!(blob.version, crate::blob::VERSION_SPEED);
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(back, seq);
        assert!(stats.work_units > 0);
    }

    #[test]
    fn multi_section_roundtrip() {
        let seq = GenomeModel::default().generate(10_000, 72);
        let c = Bwt { section_len: 1024 };
        let blob = c.compress(&seq).unwrap();
        assert_eq!(c.decompress(&blob).unwrap(), seq);
    }

    #[test]
    fn empty_roundtrip() {
        let seq = PackedSeq::new();
        let c = Bwt::default();
        let blob = c.compress(&seq).unwrap();
        assert_eq!(c.decompress(&blob).unwrap(), seq);
    }

    #[test]
    fn beats_two_bits_on_repetitive_input() {
        let seq = PackedSeq::from_ascii("ACGTTGCA".repeat(4_000).as_bytes()).unwrap();
        let blob = Bwt::default().compress(&seq).unwrap();
        assert!(
            blob.bits_per_base() < 1.0,
            "bpb = {}",
            blob.bits_per_base()
        );
    }

    #[test]
    fn rejects_primary_index_forgeries() {
        let seq = GenomeModel::default().generate(4_000, 73);
        let c = Bwt { section_len: 4_096 };
        let blob = c.compress(&seq).unwrap();
        // Section layout: [uvarint n_sections][uvarint body_len][body…];
        // body starts with uvarint m then uvarint p. Forge p.
        let mut forged = blob.clone();
        let mut pos = 0usize;
        read_uvarint(&forged.payload, &mut pos).unwrap(); // n_sections
        read_uvarint(&forged.payload, &mut pos).unwrap(); // body_len
        read_uvarint(&forged.payload, &mut pos).unwrap(); // m
        let p_at = pos;
        forged.payload[p_at] = 0; // p = 0: out of range
        assert!(c.decompress(&forged).is_err());
        let mut forged = blob.clone();
        forged.payload[p_at] = 0xFF; // varint continuation → huge p
        assert!(c.decompress(&forged).is_err());
    }

    #[test]
    fn rejects_truncation_and_flips() {
        let seq = GenomeModel::default().generate(6_000, 74);
        let c = Bwt::default();
        let blob = c.compress(&seq).unwrap();
        for cut in [1, blob.payload.len() / 2, blob.payload.len() - 1] {
            let mut trunc = blob.clone();
            trunc.payload.truncate(cut);
            assert!(c.decompress(&trunc).is_err(), "cut at {cut}");
        }
        for i in (0..blob.payload.len()).step_by(97) {
            let mut flipped = blob.clone();
            flipped.payload[i] ^= 0x10;
            assert!(flipped.payload == blob.payload || c.decompress(&flipped).is_err());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2000}", section in 64usize..512) {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            let c = Bwt { section_len: section };
            let blob = c.compress(&seq).unwrap();
            prop_assert_eq!(c.decompress(&blob).unwrap(), seq);
        }

        #[test]
        fn bwt_inverse_matches_forward(s in "[ACGT]{1,400}") {
            let text = bases(&s);
            let (l, p) = bwt_forward(&text);
            prop_assert_eq!(bwt_inverse(&l, p).unwrap(), text);
        }
    }
}
