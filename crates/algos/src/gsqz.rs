//! G-SQZ port (extension; paper §III-B).
//!
//! "Another approach G-SQZ (Tembe et al.) uses Huffman-coding to compress
//! data without altering the sequence" — the published scheme builds one
//! Huffman code over joint **(base, quality)** symbols, exploiting the
//! strong correlation between calls and their Phred scores, and keeps the
//! records individually addressable (no reordering, as the paper notes).
//!
//! Container layout per read set: record count, then per record the id
//! (length-prefixed ASCII), read length, and the Huffman-coded
//! (base, quality) pair stream. The joint code table travels as 8-bit
//! code lengths for the 4×94 symbol alphabet.

use crate::stats::{Meter, ResourceStats};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::huffman::HuffmanCode;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::fastq::{FastqRecord, MAX_QUALITY};
use dnacomp_seq::{Base, PackedSeq};

/// Joint alphabet size: 4 bases × 94 quality levels.
const N_SYMBOLS: usize = 4 * (MAX_QUALITY as usize + 1);

/// The G-SQZ read-set compressor.
#[derive(Clone, Copy, Debug, Default)]
pub struct GSqz;

fn joint_symbol(base: Base, qual: u8) -> usize {
    base.code() as usize * (MAX_QUALITY as usize + 1) + qual.min(MAX_QUALITY) as usize
}

fn split_symbol(sym: usize) -> (Base, u8) {
    let base = Base::from_code((sym / (MAX_QUALITY as usize + 1)) as u8);
    let qual = (sym % (MAX_QUALITY as usize + 1)) as u8;
    (base, qual)
}

fn checksum_records(records: &[FastqRecord]) -> u64 {
    let mut h = Fnv1a::new();
    for r in records {
        h.update(r.id.as_bytes());
        h.update(r.seq.as_words());
        h.update(&r.quals);
    }
    h.digest()
}

impl GSqz {
    /// Compress a FASTQ read set.
    pub fn compress_with_stats(
        &self,
        records: &[FastqRecord],
    ) -> Result<(Vec<u8>, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        // Joint histogram.
        let mut freqs = vec![0u64; N_SYMBOLS];
        for r in records {
            for (b, &q) in r.seq.iter().zip(&r.quals) {
                freqs[joint_symbol(b, q)] += 1;
            }
        }
        let code = HuffmanCode::from_freqs(&freqs)?;
        let total_bases: usize = records.iter().map(FastqRecord::len).sum();
        meter.work(total_bases as u64 * 3 + N_SYMBOLS as u64);
        meter.heap_snapshot(
            total_bases as u64 * 2 + N_SYMBOLS as u64 * 16 + records.len() as u64 * 32,
        );

        let mut out = Vec::new();
        out.extend_from_slice(b"GQ");
        write_uvarint(&mut out, records.len() as u64);
        write_u64_le(&mut out, checksum_records(records));
        // Code lengths: 8 bits each (max length 15 fits easily).
        for &l in code.lens() {
            out.push(l as u8);
        }
        let mut w = BitWriter::new();
        for r in records {
            for (b, &q) in r.seq.iter().zip(&r.quals) {
                code.encode(&mut w, joint_symbol(b, q))?;
            }
        }
        // Per-record metadata, then the bit stream.
        for r in records {
            write_uvarint(&mut out, r.id.len() as u64);
            out.extend_from_slice(r.id.as_bytes());
            write_uvarint(&mut out, r.len() as u64);
        }
        out.extend_from_slice(&w.into_bytes());
        Ok((out, meter.finish()))
    }

    /// Compress, dropping statistics.
    pub fn compress(&self, records: &[FastqRecord]) -> Result<Vec<u8>, CodecError> {
        self.compress_with_stats(records).map(|(b, _)| b)
    }

    /// Decompress a G-SQZ container back into records.
    pub fn decompress(&self, bytes: &[u8]) -> Result<Vec<FastqRecord>, CodecError> {
        if bytes.len() < 2 || &bytes[0..2] != b"GQ" {
            return Err(CodecError::Corrupt("bad gsqz magic"));
        }
        let mut pos = 2usize;
        let n_records = read_uvarint(bytes, &mut pos)? as usize;
        if n_records > bytes.len() {
            return Err(CodecError::Corrupt("gsqz record count"));
        }
        let expected_sum = read_u64_le(bytes, &mut pos)?;
        let lens_end = pos
            .checked_add(N_SYMBOLS)
            .filter(|&e| e <= bytes.len())
            .ok_or(CodecError::UnexpectedEof)?;
        let lens: Vec<u32> = bytes[pos..lens_end].iter().map(|&b| b as u32).collect();
        pos = lens_end;
        let code = HuffmanCode::from_lens(lens)?;
        let decoder = code.decoder();
        // Metadata.
        let mut metas: Vec<(String, usize)> = Vec::with_capacity(n_records);
        for _ in 0..n_records {
            let id_len = read_uvarint(bytes, &mut pos)? as usize;
            let id_end = pos
                .checked_add(id_len)
                .filter(|&e| e <= bytes.len())
                .ok_or(CodecError::UnexpectedEof)?;
            let id = std::str::from_utf8(&bytes[pos..id_end])
                .map_err(|_| CodecError::Corrupt("gsqz id not utf-8"))?
                .to_owned();
            pos = id_end;
            let len = read_uvarint(bytes, &mut pos)? as usize;
            metas.push((id, len));
        }
        let mut r = BitReader::new(&bytes[pos..]);
        let mut records = Vec::with_capacity(n_records);
        for (id, len) in metas {
            // `len` is attacker-reachable header data: cap the upfront
            // allocation and let the buffers grow with decoded symbols.
            let cap = len.min(crate::blob::MAX_PREALLOC_BASES);
            let mut seq = PackedSeq::with_capacity(cap);
            let mut quals = Vec::with_capacity(cap);
            for _ in 0..len {
                let sym = decoder.decode(&mut r)?;
                let (b, q) = split_symbol(sym);
                seq.push(b);
                quals.push(q);
            }
            records.push(FastqRecord { id, seq, quals });
        }
        if checksum_records(&records) != expected_sum {
            return Err(CodecError::ChecksumMismatch {
                expected: expected_sum,
                actual: checksum_records(&records),
            });
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::fastq::synth_reads;
    use dnacomp_seq::gen::GenomeModel;

    fn sample_reads() -> Vec<FastqRecord> {
        let genome = GenomeModel::default().generate(20_000, 5);
        synth_reads(&genome, 200, 100, 9)
    }

    #[test]
    fn roundtrip_read_set() {
        let reads = sample_reads();
        let g = GSqz;
        let bytes = g.compress(&reads).unwrap();
        let back = g.decompress(&bytes).unwrap();
        assert_eq!(back, reads);
    }

    #[test]
    fn beats_raw_fastq_text() {
        // The paper's point: joint Huffman coding compacts seq+quality.
        let reads = sample_reads();
        let raw = dnacomp_seq::fastq::write_fastq(&reads).len();
        let bytes = GSqz.compress(&reads).unwrap();
        assert!(
            bytes.len() * 2 < raw,
            "gsqz {} vs raw fastq {raw}",
            bytes.len()
        );
    }

    #[test]
    fn joint_code_beats_independent_bound() {
        // The joint (base, quality) alphabet exploits correlation that
        // separate streams cannot: measured bits/pair must undercut
        // H(base) + H(quality) would-be 2 + ~6 bits noticeably.
        let reads = sample_reads();
        let total_pairs: usize = reads.iter().map(FastqRecord::len).sum();
        let bytes = GSqz.compress(&reads).unwrap();
        let bits_per_pair = bytes.len() as f64 * 8.0 / total_pairs as f64;
        assert!(bits_per_pair < 8.0, "bits/pair = {bits_per_pair}");
    }

    #[test]
    fn empty_and_single() {
        let g = GSqz;
        let bytes = g.compress(&[]).unwrap();
        assert_eq!(g.decompress(&bytes).unwrap(), vec![]);
        let one = vec![FastqRecord {
            id: "solo".into(),
            seq: PackedSeq::from_ascii(b"ACGT").unwrap(),
            quals: vec![30, 31, 32, 33],
        }];
        let bytes = g.compress(&one).unwrap();
        assert_eq!(g.decompress(&bytes).unwrap(), one);
    }

    #[test]
    fn corruption_detected() {
        let reads = sample_reads();
        let bytes = GSqz.compress(&reads).unwrap();
        let mut bad = bytes.clone();
        let at = bad.len() - 3;
        bad[at] ^= 0xFF;
        if let Ok(back) = GSqz.decompress(&bad) { assert_eq!(back, reads) }
        assert!(GSqz.decompress(&bytes[..bytes.len() / 2]).is_err());
        assert!(GSqz.decompress(b"XX").is_err());
        assert!(GSqz.decompress(b"").is_err());
    }

    #[test]
    fn symbol_mapping_roundtrips() {
        for b in dnacomp_seq::Base::ALL {
            for q in [0u8, 1, 40, MAX_QUALITY] {
                let (b2, q2) = split_symbol(joint_symbol(b, q));
                assert_eq!((b, q), (b2, q2));
            }
        }
    }
}
