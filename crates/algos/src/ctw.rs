//! CTW compressor (Willems, Shtarkov & Tjalkens — paper ref \[25\]).
//!
//! Each base is decomposed into two bits (high bit first) and coded by a
//! shared depth-`D` CTW tree driving the arithmetic coder. The paper's
//! observations all emerge from this construction:
//!
//! * good compression ratio on DNA (the weighted mixture adapts to any
//!   Markov order up to D/2 bases);
//! * high RAM (the lazily-built context tree grows with the input —
//!   "CTW consumes more memory", §V-E);
//! * decompression as slow as compression ("when it comes to
//!   decompressing the sequence, on average CTW performs the worst",
//!   §V-E) — the decoder must rebuild the identical tree walk per bit,
//!   whereas the repeat-based decoders just replay copies.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{ArithDecoder, ArithEncoder};
use dnacomp_codec::ctw::{BitHistory, CtwTree};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The CTW compressor.
#[derive(Clone, Debug)]
pub struct Ctw {
    /// Context depth in **bits** (2 bits per base). The paper-era CTW
    /// binaries default to depths around 12–16 bits.
    pub depth: usize,
    /// Node-pool cap bounding memory.
    pub max_nodes: usize,
}

impl Default for Ctw {
    fn default() -> Self {
        Ctw {
            depth: 16,
            max_nodes: 4 << 20,
        }
    }
}

impl Ctw {
    /// CTW with a custom context depth (in bits).
    pub fn with_depth(depth: usize) -> Self {
        Ctw {
            depth,
            ..Ctw::default()
        }
    }

    /// Per-bit work estimate: one tree walk of `depth` nodes.
    fn work_per_bit(&self) -> u64 {
        self.depth as u64 + 2
    }
}

impl Compressor for Ctw {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Ctw
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let mut tree = CtwTree::with_capacity(self.depth, self.max_nodes);
        let mut hist = BitHistory::new();
        let mut enc = ArithEncoder::new();
        for base in seq.iter() {
            let code = base.code();
            for shift in [1u8, 0] {
                let bit = (code >> shift) & 1 == 1;
                let (num, den) = tree.predict(hist.value());
                enc.encode_bit(bit, num, den);
                tree.commit(bit);
                hist.push(bit);
            }
        }
        meter.work(seq.len() as u64 * 2 * self.work_per_bit());
        meter.heap_snapshot(tree.heap_bytes() as u64 + seq.heap_bytes() as u64);
        let blob = CompressedBlob::new(Algorithm::Ctw, seq, enc.finish());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Ctw)?;
        let mut meter = Meter::new();
        let mut tree = CtwTree::with_capacity(self.depth, self.max_nodes);
        let mut hist = BitHistory::new();
        let mut dec = ArithDecoder::new(&blob.payload);
        let mut seq = PackedSeq::with_capacity(blob.decode_capacity());
        for _ in 0..blob.original_len {
            let mut code = 0u8;
            for _ in 0..2 {
                let (num, den) = tree.predict(hist.value());
                let bit = dec.decode_bit(num, den);
                tree.commit(bit);
                hist.push(bit);
                code = (code << 1) | bit as u8;
            }
            seq.push(Base::from_code(code));
        }
        // Decode performs the identical tree walk — same work as encode.
        meter.work(blob.original_len as u64 * 2 * self.work_per_bit());
        meter.heap_snapshot(tree.heap_bytes() as u64 + seq.heap_bytes() as u64);
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &Ctw, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = Ctw::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn beats_two_bits_per_base_on_dna() {
        let seq = GenomeModel::default().generate(30_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        assert!(
            blob.bits_per_base() < 2.0,
            "bits/base = {}",
            blob.bits_per_base()
        );
    }

    #[test]
    fn strong_on_repetitive_dna() {
        let seq = GenomeModel::highly_repetitive().generate(30_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        assert!(
            blob.bits_per_base() < 1.8,
            "bits/base = {}",
            blob.bits_per_base()
        );
    }

    #[test]
    fn near_two_bits_on_random_dna() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        let bpb = blob.bits_per_base();
        assert!(bpb < 2.15, "bits/base = {bpb}");
        assert!(bpb > 1.9, "bits/base = {bpb}");
    }

    #[test]
    fn decompress_work_equals_compress_work() {
        let seq = GenomeModel::default().generate(5_000, 3);
        let c = Ctw::default();
        let (blob, cs) = c.compress_with_stats(&seq).unwrap();
        let (_, ds) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(cs.work_units, ds.work_units);
    }

    #[test]
    fn ram_grows_with_input() {
        let c = Ctw::default();
        let small = GenomeModel::random_only(0.5).generate(2_000, 1);
        let large = GenomeModel::random_only(0.5).generate(40_000, 1);
        let (_, s1) = c.compress_with_stats(&small).unwrap();
        let (_, s2) = c.compress_with_stats(&large).unwrap();
        assert!(s2.peak_heap_bytes > s1.peak_heap_bytes);
    }

    #[test]
    fn deeper_context_compresses_periodic_better() {
        let seq = PackedSeq::from_ascii("ACGTTACG".repeat(2000).as_bytes()).unwrap();
        let shallow = roundtrip(&Ctw::with_depth(2), &seq);
        let deep = roundtrip(&Ctw::with_depth(16), &seq);
        assert!(deep.total_bytes() < shallow.total_bytes());
    }

    #[test]
    fn bounded_pool_still_roundtrips() {
        let seq = GenomeModel::default().generate(10_000, 5);
        let c = Ctw {
            depth: 16,
            max_nodes: 256,
        };
        roundtrip(&c, &seq);
    }

    #[test]
    fn rejects_foreign_and_corrupt_blobs() {
        let seq = GenomeModel::default().generate(1_000, 2);
        let c = Ctw::default();
        let mut blob = c.compress(&seq).unwrap();
        let mut wrong = blob.clone();
        wrong.algorithm = Algorithm::Gzip;
        assert!(c.decompress(&wrong).is_err());
        let mid = blob.payload.len() / 2;
        blob.payload[mid] ^= 0x40;
        assert!(c.decompress(&blob).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,800}", depth in 0usize..20) {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            let c = Ctw::with_depth(depth);
            roundtrip(&c, &seq);
        }
    }
}
