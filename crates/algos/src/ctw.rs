//! CTW compressor (Willems, Shtarkov & Tjalkens — paper ref \[25\]).
//!
//! Each base is decomposed into two bits (high bit first) and coded by a
//! shared depth-`D` CTW tree driving the entropy coder. The paper's
//! observations all emerge from this construction:
//!
//! * good compression ratio on DNA (the weighted mixture adapts to any
//!   Markov order up to D/2 bases);
//! * high RAM (the lazily-built context tree grows with the input —
//!   "CTW consumes more memory", §V-E);
//! * decompression as slow as compression ("when it comes to
//!   decompressing the sequence, on average CTW performs the worst",
//!   §V-E) — the decoder must rebuild the identical tree walk per bit,
//!   whereas the repeat-based decoders just replay copies.
//!
//! Two speed tiers share this file. The **legacy tier** (v1 blobs,
//! [`EntropyBackend::Arith`]) decomposes each base into two bits and
//! drives the log-domain [`CtwTree`] through the bit-serial arithmetic
//! coder, byte-identical to every blob written before the speed tier
//! existed. The **fast tier** (v2 blobs, the default
//! [`EntropyBackend::Rans`]) walks the 4-ary [`FastCtwTree4`] **once
//! per base** — whole-base contexts over the same window, four mixture
//! lanes per level instead of a second serial walk — and emits one
//! interleaved-rANS symbol per base. The decoder picks its tier from
//! the blob's version byte, so old data always decodes.

use crate::blob::{Algorithm, CompressedBlob, VERSION, VERSION_SPEED};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{EntropyBackend, EntropyDecoder, EntropyEncoder};
use dnacomp_codec::ctw::{BitHistory, BitModel, CtwTree, FastCtwTree4};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The CTW compressor.
#[derive(Clone, Debug)]
pub struct Ctw {
    /// Context depth in **bits** (2 bits per base). The paper-era CTW
    /// binaries default to depths around 12–16 bits.
    pub depth: usize,
    /// Node-pool cap bounding memory.
    pub max_nodes: usize,
    /// Entropy coding backend; picks the tree/coder tier (see module
    /// docs). Decoding ignores this and follows the blob version.
    pub backend: EntropyBackend,
}

impl Default for Ctw {
    fn default() -> Self {
        Ctw {
            depth: 16,
            max_nodes: 4 << 20,
            backend: EntropyBackend::default(),
        }
    }
}

impl Ctw {
    /// CTW with a custom context depth (in bits).
    pub fn with_depth(depth: usize) -> Self {
        Ctw {
            depth,
            ..Ctw::default()
        }
    }

    /// CTW pinned to a specific entropy backend.
    pub fn with_backend(backend: EntropyBackend) -> Self {
        Ctw {
            backend,
            ..Ctw::default()
        }
    }

    /// Per-bit work estimate: one tree walk of `depth` nodes.
    fn work_per_bit(&self) -> u64 {
        self.depth as u64 + 2
    }

    /// Drive the model over `seq`, feeding predictions to `enc`.
    fn encode_stream<M: BitModel>(tree: &mut M, seq: &PackedSeq, enc: &mut EntropyEncoder) {
        let mut hist = BitHistory::new();
        for base in seq.iter() {
            let code = base.code();
            for shift in [1u8, 0] {
                let bit = (code >> shift) & 1 == 1;
                let (num, den) = tree.predict(hist.value());
                enc.encode_bit(bit, num, den);
                tree.commit(bit);
                hist.push(bit);
            }
        }
    }

    /// Rebuild the identical model walk while pulling bits from `dec`.
    fn decode_stream<M: BitModel>(
        tree: &mut M,
        dec: &mut EntropyDecoder<'_>,
        n_bases: usize,
        capacity: usize,
    ) -> PackedSeq {
        let mut hist = BitHistory::new();
        let mut seq = PackedSeq::with_capacity(capacity);
        for _ in 0..n_bases {
            let mut code = 0u8;
            for _ in 0..2 {
                let (num, den) = tree.predict(hist.value());
                let bit = dec.decode_bit(num, den);
                tree.commit(bit);
                hist.push(bit);
                code = (code << 1) | bit as u8;
            }
            seq.push(Base::from_code(code));
        }
        seq
    }

    /// Context depth of the v2 4-ary tree in **bases**: the same window
    /// as `self.depth` bits of binary context.
    fn depth_bases(&self) -> usize {
        self.depth / 2
    }

    /// Speed-tier model walk: one 4-ary tree step and one rANS symbol
    /// per base (the v1 path pays two binary walks and two coder calls
    /// for the same information).
    fn encode_stream4(tree: &mut FastCtwTree4, seq: &PackedSeq, enc: &mut EntropyEncoder) {
        let mut hist = 0u64;
        for base in seq.iter() {
            let sym = base.code() as usize;
            let cum = tree.predict4(hist);
            enc.encode_cum16(&cum, sym);
            tree.commit4(sym);
            hist = (hist << 2) | sym as u64;
        }
    }

    /// Identical 4-ary walk, pulling symbols from `dec`.
    fn decode_stream4(
        tree: &mut FastCtwTree4,
        dec: &mut EntropyDecoder<'_>,
        n_bases: usize,
        capacity: usize,
    ) -> PackedSeq {
        let mut hist = 0u64;
        let mut seq = PackedSeq::with_capacity(capacity);
        for _ in 0..n_bases {
            let cum = tree.predict4(hist);
            let sym = dec.decode_cum16(&cum);
            tree.commit4(sym);
            hist = (hist << 2) | sym as u64;
            seq.push(Base::from_code(sym as u8));
        }
        seq
    }
}

impl Compressor for Ctw {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Ctw
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let mut enc = EntropyEncoder::new(self.backend);
        let (payload, tree_heap) = match self.backend {
            EntropyBackend::Arith => {
                let mut tree = CtwTree::with_capacity(self.depth, self.max_nodes);
                Ctw::encode_stream(&mut tree, seq, &mut enc);
                (enc.finish(), tree.heap_bytes())
            }
            EntropyBackend::Rans => {
                let mut tree = FastCtwTree4::with_capacity(self.depth_bases(), self.max_nodes);
                Ctw::encode_stream4(&mut tree, seq, &mut enc);
                (enc.finish(), tree.heap_bytes())
            }
        };
        meter.work(seq.len() as u64 * 2 * self.work_per_bit());
        meter.heap_snapshot(tree_heap as u64 + seq.heap_bytes() as u64);
        let blob = match self.backend {
            EntropyBackend::Arith => CompressedBlob::new(Algorithm::Ctw, seq, payload),
            EntropyBackend::Rans => CompressedBlob::new_v2(Algorithm::Ctw, seq, payload),
        };
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Ctw)?;
        let mut meter = Meter::new();
        let (seq, tree_heap) = match blob.version {
            VERSION => {
                let mut tree = CtwTree::with_capacity(self.depth, self.max_nodes);
                let mut dec = EntropyDecoder::new(EntropyBackend::Arith, &blob.payload)?;
                let seq = Ctw::decode_stream(
                    &mut tree,
                    &mut dec,
                    blob.original_len,
                    blob.decode_capacity(),
                );
                (seq, tree.heap_bytes())
            }
            VERSION_SPEED => {
                let mut tree = FastCtwTree4::with_capacity(self.depth_bases(), self.max_nodes);
                let mut dec = EntropyDecoder::new(EntropyBackend::Rans, &blob.payload)?;
                let seq = Ctw::decode_stream4(
                    &mut tree,
                    &mut dec,
                    blob.original_len,
                    blob.decode_capacity(),
                );
                (seq, tree.heap_bytes())
            }
            v => return Err(CodecError::UnknownFormat(v)),
        };
        // Decode performs the identical tree walk — same work as encode.
        meter.work(blob.original_len as u64 * 2 * self.work_per_bit());
        meter.heap_snapshot(tree_heap as u64 + seq.heap_bytes() as u64);
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }

    fn stage_times(&self, seq: &PackedSeq) -> Option<(f64, f64)> {
        use std::time::Instant;
        let t0 = Instant::now();
        self.compress(seq).ok()?;
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Same model walk into a discard sink: what remains of the full
        // run is the entropy stage.
        let t0 = Instant::now();
        let mut sink = EntropyEncoder::discard();
        match self.backend {
            EntropyBackend::Arith => {
                let mut tree = CtwTree::with_capacity(self.depth, self.max_nodes);
                Ctw::encode_stream(&mut tree, seq, &mut sink);
            }
            EntropyBackend::Rans => {
                let mut tree = FastCtwTree4::with_capacity(self.depth_bases(), self.max_nodes);
                Ctw::encode_stream4(&mut tree, seq, &mut sink);
            }
        }
        let model_ms = t0.elapsed().as_secs_f64() * 1e3;
        Some((model_ms, (full_ms - model_ms).max(0.0)))
    }

    fn entropy_backend(&self) -> &'static str {
        self.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &Ctw, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = Ctw::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn default_backend_is_rans_and_writes_v2() {
        let seq = GenomeModel::default().generate(3_000, 9);
        let blob = Ctw::default().compress(&seq).unwrap();
        assert_eq!(blob.version, VERSION_SPEED);
    }

    #[test]
    fn arith_backend_writes_v1_and_any_instance_decodes_it() {
        // Legacy compatibility: a v1 (arithmetic) blob must decode
        // through a default-configured (rANS-backend) compressor — the
        // decoder follows the blob version, not the instance backend.
        let seq = GenomeModel::default().generate(5_000, 11);
        let legacy = Ctw::with_backend(EntropyBackend::Arith);
        let blob = legacy.compress(&seq).unwrap();
        assert_eq!(blob.version, VERSION);
        assert_eq!(Ctw::default().decompress(&blob).unwrap(), seq);
        // And the reverse: the legacy-pinned instance decodes v2 blobs.
        let v2 = Ctw::default().compress(&seq).unwrap();
        assert_eq!(legacy.decompress(&v2).unwrap(), seq);
    }

    #[test]
    fn speed_tier_ratio_is_no_worse_than_legacy() {
        // The v2 tier swaps the binary tree for the 4-ary one; whole-base
        // contexts model DNA a little better, so the speed tier is allowed
        // to *win* on ratio but must never give back more than noise.
        let seq = GenomeModel::default().generate(20_000, 13);
        let a = Ctw::with_backend(EntropyBackend::Arith).compress(&seq).unwrap();
        let r = Ctw::with_backend(EntropyBackend::Rans).compress(&seq).unwrap();
        let (ab, rb) = (a.bits_per_base(), r.bits_per_base());
        assert!(rb < ab + 0.02, "rans tier lost ratio: arith {ab} vs rans {rb} bits/base");
        assert!(ab - rb < 0.5, "tiers diverged implausibly: arith {ab} vs rans {rb} bits/base");
    }

    #[test]
    fn beats_two_bits_per_base_on_dna() {
        let seq = GenomeModel::default().generate(30_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        assert!(
            blob.bits_per_base() < 2.0,
            "bits/base = {}",
            blob.bits_per_base()
        );
    }

    #[test]
    fn strong_on_repetitive_dna() {
        let seq = GenomeModel::highly_repetitive().generate(30_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        assert!(
            blob.bits_per_base() < 1.8,
            "bits/base = {}",
            blob.bits_per_base()
        );
    }

    #[test]
    fn near_two_bits_on_random_dna() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 7);
        let blob = roundtrip(&Ctw::default(), &seq);
        let bpb = blob.bits_per_base();
        assert!(bpb < 2.15, "bits/base = {bpb}");
        assert!(bpb > 1.9, "bits/base = {bpb}");
    }

    #[test]
    fn decompress_work_equals_compress_work() {
        let seq = GenomeModel::default().generate(5_000, 3);
        let c = Ctw::default();
        let (blob, cs) = c.compress_with_stats(&seq).unwrap();
        let (_, ds) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(cs.work_units, ds.work_units);
    }

    #[test]
    fn ram_grows_with_input() {
        let c = Ctw::default();
        let small = GenomeModel::random_only(0.5).generate(2_000, 1);
        let large = GenomeModel::random_only(0.5).generate(40_000, 1);
        let (_, s1) = c.compress_with_stats(&small).unwrap();
        let (_, s2) = c.compress_with_stats(&large).unwrap();
        assert!(s2.peak_heap_bytes > s1.peak_heap_bytes);
    }

    #[test]
    fn deeper_context_compresses_periodic_better() {
        let seq = PackedSeq::from_ascii("ACGTTACG".repeat(2000).as_bytes()).unwrap();
        let shallow = roundtrip(&Ctw::with_depth(2), &seq);
        let deep = roundtrip(&Ctw::with_depth(16), &seq);
        assert!(deep.total_bytes() < shallow.total_bytes());
    }

    #[test]
    fn bounded_pool_still_roundtrips() {
        let seq = GenomeModel::default().generate(10_000, 5);
        for backend in [EntropyBackend::Arith, EntropyBackend::Rans] {
            let c = Ctw {
                depth: 16,
                max_nodes: 256,
                backend,
            };
            roundtrip(&c, &seq);
        }
    }

    #[test]
    fn rejects_foreign_and_corrupt_blobs() {
        let seq = GenomeModel::default().generate(1_000, 2);
        for backend in [EntropyBackend::Arith, EntropyBackend::Rans] {
            let c = Ctw::with_backend(backend);
            let mut blob = c.compress(&seq).unwrap();
            let mut wrong = blob.clone();
            wrong.algorithm = Algorithm::Gzip;
            assert!(c.decompress(&wrong).is_err());
            let mid = blob.payload.len() / 2;
            blob.payload[mid] ^= 0x40;
            assert!(c.decompress(&blob).is_err());
        }
    }

    #[test]
    fn stage_times_reports_both_stages() {
        let seq = GenomeModel::default().generate(4_000, 17);
        let (model_ms, entropy_ms) = Ctw::default().stage_times(&seq).unwrap();
        assert!(model_ms > 0.0);
        assert!(entropy_ms >= 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,800}", depth in 0usize..20) {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            let c = Ctw::with_depth(depth);
            roundtrip(&c, &seq);
            let c = Ctw { backend: EntropyBackend::Arith, ..Ctw::with_depth(depth) };
            roundtrip(&c, &seq);
        }
    }
}
