//! CTW+LZ port (extension algorithm; paper Table 1).
//!
//! Table 1 lists "CTW+LZ — Context tree weighting" in the
//! substitution-statistics category (Matsumoto, Sadakane & Imai, the
//! paper's "Ctw+lz" \[22\]): long exact repeats are LZ-coded, and the
//! remaining literals go through a context-tree-weighting model instead
//! of a fixed-order arithmetic coder. It historically achieved the best
//! ratios of its generation at a steep time cost — exactly the blend this
//! port reproduces by composing [`dnacomp_codec::ctw`] with the repeat
//! machinery shared with DNAX.
//!
//! Streams: a control stream (flag bits + γ-coded repeat records, as in
//! DNAX) plus a CTW-modelled literal stream. The CTW history advances
//! only over literal bases, so encoder and decoder stay in lockstep
//! without modelling the copied regions twice.
//!
//! Like [`crate::ctw`], the literal stream has two tiers: v1 blobs pair
//! the log-domain binary [`CtwTree`] with the arithmetic coder
//! (bit-exact with pre-speed-tier output), v2 blobs pair the 4-ary
//! [`FastCtwTree4`] with rANS — one tree walk and one coder symbol per
//! literal base. The decoder follows the blob's version byte.

use crate::blob::{Algorithm, CompressedBlob, VERSION, VERSION_SPEED};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::arith::{EntropyBackend, EntropyDecoder, EntropyEncoder};
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::ctw::{BitHistory, BitModel, CtwTree, FastCtwTree4};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::repeats::{RepeatConfig, RepeatFinder, RepeatKind};
use dnacomp_codec::varint::{read_uvarint, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The CTW+LZ compressor.
#[derive(Clone, Debug)]
pub struct CtwLz {
    /// Repeat search configuration.
    pub search: RepeatConfig,
    /// Minimum repeat length worth a pointer.
    pub min_repeat: usize,
    /// CTW context depth in bits for the literal model.
    pub depth: usize,
    /// CTW node-pool cap.
    pub max_nodes: usize,
    /// Entropy coding backend for the literal stream; picks the blob
    /// version on compress. Decoding follows the blob version instead.
    pub backend: EntropyBackend,
}

impl Default for CtwLz {
    fn default() -> Self {
        CtwLz {
            search: RepeatConfig {
                seed_len: 16,
                max_chain: 32,
                window: 0,
                search_revcomp: true,
            },
            min_repeat: 32,
            depth: 16,
            max_nodes: 4 << 20,
            backend: EntropyBackend::default(),
        }
    }
}

/// Literal coder protocol: the v1 path drives a binary tree two bits
/// per base, the v2 path drives the 4-ary tree one symbol per base.
/// Generic seams in `encode_payload`/`decode_bases` accept either.
trait LiteralCoder {
    fn encode_base(&mut self, enc: &mut EntropyEncoder, base: Base);
    fn decode_base(&mut self, dec: &mut EntropyDecoder<'_>) -> Base;
    fn heap_bytes(&self) -> usize;
}

/// Legacy literal coder state: a binary CTW tree + rolling bit history.
struct LiteralCtw<M: BitModel> {
    tree: M,
    hist: BitHistory,
}

impl<M: BitModel> LiteralCtw<M> {
    fn new(tree: M) -> Self {
        LiteralCtw {
            tree,
            hist: BitHistory::new(),
        }
    }
}

impl<M: BitModel> LiteralCoder for LiteralCtw<M> {
    fn encode_base(&mut self, enc: &mut EntropyEncoder, base: Base) {
        let code = base.code();
        for shift in [1u8, 0] {
            let bit = (code >> shift) & 1 == 1;
            let (num, den) = self.tree.predict(self.hist.value());
            enc.encode_bit(bit, num, den);
            self.tree.commit(bit);
            self.hist.push(bit);
        }
    }

    fn decode_base(&mut self, dec: &mut EntropyDecoder<'_>) -> Base {
        let mut code = 0u8;
        for _ in 0..2 {
            let (num, den) = self.tree.predict(self.hist.value());
            let bit = dec.decode_bit(num, den);
            self.tree.commit(bit);
            self.hist.push(bit);
            code = (code << 1) | bit as u8;
        }
        Base::from_code(code)
    }

    fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

/// Speed-tier literal coder: the 4-ary fast tree, one walk and one
/// rANS symbol per literal base.
struct LiteralCtw4 {
    tree: FastCtwTree4,
    hist: u64,
}

impl LiteralCtw4 {
    fn new(tree: FastCtwTree4) -> Self {
        LiteralCtw4 { tree, hist: 0 }
    }
}

impl LiteralCoder for LiteralCtw4 {
    fn encode_base(&mut self, enc: &mut EntropyEncoder, base: Base) {
        let sym = base.code() as usize;
        let cum = self.tree.predict4(self.hist);
        enc.encode_cum16(&cum, sym);
        self.tree.commit4(sym);
        self.hist = (self.hist << 2) | sym as u64;
    }

    fn decode_base(&mut self, dec: &mut EntropyDecoder<'_>) -> Base {
        let cum = self.tree.predict4(self.hist);
        let sym = dec.decode_cum16(&cum);
        self.tree.commit4(sym);
        self.hist = (self.hist << 2) | sym as u64;
        Base::from_code(sym as u8)
    }

    fn heap_bytes(&self) -> usize {
        self.tree.heap_bytes()
    }
}

impl CtwLz {
    /// CTW+LZ pinned to a specific entropy backend.
    pub fn with_backend(backend: EntropyBackend) -> Self {
        CtwLz {
            backend,
            ..CtwLz::default()
        }
    }

    /// Repeat search + literal modelling into `lit_enc`; returns the
    /// assembled payload (`uvarint ctrl_len`, control bytes, literal
    /// stream).
    fn encode_payload<L: LiteralCoder>(
        &self,
        bases: &[Base],
        mut lits: L,
        mut lit_enc: EntropyEncoder,
        meter: &mut Meter,
    ) -> Result<Vec<u8>, CodecError> {
        let mut finder = RepeatFinder::new(bases, self.search);
        let mut ctrl = BitWriter::new();
        let mut lit_count = 0u64;

        let mut i = 0usize;
        let mut run = 0usize; // pending literal run length
        let mut run_start = 0usize;
        while i < bases.len() {
            finder.advance(i);
            meter.work(self.search.max_chain as u64 / 4 + 1);
            match finder.find(i).filter(|m| m.len >= self.min_repeat) {
                Some(m) => {
                    if run > 0 {
                        ctrl.push_bit(false);
                        gamma_encode(&mut ctrl, run as u64)?;
                        for &b in &bases[run_start..run_start + run] {
                            lits.encode_base(&mut lit_enc, b);
                        }
                        lit_count += run as u64;
                        run = 0;
                    }
                    ctrl.push_bit(true);
                    ctrl.push_bit(m.kind == RepeatKind::ReverseComplement);
                    gamma_encode(&mut ctrl, (m.len - self.min_repeat + 1) as u64)?;
                    let delta = match m.kind {
                        RepeatKind::Forward => (i - 1 - m.src) as u64,
                        RepeatKind::ReverseComplement => (i - m.src) as u64,
                    };
                    gamma_encode(&mut ctrl, delta + 1)?;
                    meter.work(m.len as u64 / 8 + 2);
                    i += m.len;
                }
                None => {
                    if run == 0 {
                        run_start = i;
                    }
                    run += 1;
                    i += 1;
                }
            }
        }
        if run > 0 {
            ctrl.push_bit(false);
            gamma_encode(&mut ctrl, run as u64)?;
            for &b in &bases[run_start..run_start + run] {
                lits.encode_base(&mut lit_enc, b);
            }
            lit_count += run as u64;
        }
        // CTW literal coding: a full tree walk per bit.
        meter.work(lit_count * 2 * (self.depth as u64 + 2));
        meter.heap_snapshot(
            finder.heap_bytes() as u64 + bases.len() as u64 + lits.heap_bytes() as u64,
        );

        let ctrl_bytes = ctrl.into_bytes();
        let lit_bytes = lit_enc.finish();
        let mut payload = Vec::with_capacity(ctrl_bytes.len() + lit_bytes.len() + 8);
        write_uvarint(&mut payload, ctrl_bytes.len() as u64);
        payload.extend_from_slice(&ctrl_bytes);
        payload.extend_from_slice(&lit_bytes);
        Ok(payload)
    }

    /// Replay the control stream, pulling literal bases through `lits`.
    fn decode_bases<L: LiteralCoder>(
        &self,
        blob: &CompressedBlob,
        backend: EntropyBackend,
        mut lits: L,
        meter: &mut Meter,
    ) -> Result<Vec<Base>, CodecError> {
        let mut pos = 0usize;
        let ctrl_len = read_uvarint(&blob.payload, &mut pos)? as usize;
        let ctrl_end = pos
            .checked_add(ctrl_len)
            .filter(|&e| e <= blob.payload.len())
            .ok_or(CodecError::Corrupt("control stream length"))?;
        let mut ctrl = BitReader::new(&blob.payload[pos..ctrl_end]);
        let mut lit_dec = EntropyDecoder::new(backend, &blob.payload[ctrl_end..])?;
        let mut lit_count = 0u64;

        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            if ctrl.read_bit()? {
                let revcomp = ctrl.read_bit()?;
                let len = gamma_decode(&mut ctrl)? as usize + self.min_repeat - 1;
                let delta = (gamma_decode(&mut ctrl)? - 1) as usize;
                let dst = out.len();
                if dst + len > blob.original_len {
                    return Err(CodecError::Corrupt("repeat overruns output"));
                }
                if revcomp {
                    let src_end = dst
                        .checked_sub(delta)
                        .ok_or(CodecError::Corrupt("revcomp distance"))?;
                    if len > src_end {
                        return Err(CodecError::Corrupt("revcomp length"));
                    }
                    for l in 0..len {
                        let b = out[src_end - 1 - l].complement();
                        out.push(b);
                    }
                } else {
                    let src = dst
                        .checked_sub(delta + 1)
                        .ok_or(CodecError::Corrupt("forward distance"))?;
                    for l in 0..len {
                        let b = out[src + l];
                        out.push(b);
                    }
                }
                meter.work(len as u64 / 4 + 2);
            } else {
                let run = gamma_decode(&mut ctrl)? as usize;
                if run == 0 || out.len() + run > blob.original_len {
                    return Err(CodecError::Corrupt("literal run overruns output"));
                }
                for _ in 0..run {
                    out.push(lits.decode_base(&mut lit_dec));
                }
                lit_count += run as u64;
            }
        }
        // Decompression repeats the CTW walk per literal bit — the cost
        // asymmetry the paper attributes to CTW holds for the hybrid too.
        meter.work(lit_count * 2 * (self.depth as u64 + 2));
        meter.heap_snapshot(out.len() as u64 + lits.heap_bytes() as u64);
        Ok(out)
    }
}

impl Compressor for CtwLz {
    fn algorithm(&self) -> Algorithm {
        Algorithm::CtwLz
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        let enc = EntropyEncoder::new(self.backend);
        let (payload, blob) = match self.backend {
            EntropyBackend::Arith => {
                let lits = LiteralCtw::new(CtwTree::with_capacity(self.depth, self.max_nodes));
                let payload = self.encode_payload(&bases, lits, enc, &mut meter)?;
                let blob = CompressedBlob::new(Algorithm::CtwLz, seq, Vec::new());
                (payload, blob)
            }
            EntropyBackend::Rans => {
                let lits =
                    LiteralCtw4::new(FastCtwTree4::with_capacity(self.depth / 2, self.max_nodes));
                let payload = self.encode_payload(&bases, lits, enc, &mut meter)?;
                let blob = CompressedBlob::new_v2(Algorithm::CtwLz, seq, Vec::new());
                (payload, blob)
            }
        };
        let blob = CompressedBlob { payload, ..blob };
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::CtwLz)?;
        let mut meter = Meter::new();
        let out = match blob.version {
            VERSION => {
                let lits = LiteralCtw::new(CtwTree::with_capacity(self.depth, self.max_nodes));
                self.decode_bases(blob, EntropyBackend::Arith, lits, &mut meter)?
            }
            VERSION_SPEED => {
                let lits =
                    LiteralCtw4::new(FastCtwTree4::with_capacity(self.depth / 2, self.max_nodes));
                self.decode_bases(blob, EntropyBackend::Rans, lits, &mut meter)?
            }
            v => return Err(CodecError::UnknownFormat(v)),
        };
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }

    fn stage_times(&self, seq: &PackedSeq) -> Option<(f64, f64)> {
        use std::time::Instant;
        let t0 = Instant::now();
        self.compress(seq).ok()?;
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Model stage = repeat search + CTW walk into a discard sink.
        let bases = seq.unpack();
        let mut meter = Meter::new();
        let t0 = Instant::now();
        let sink = EntropyEncoder::discard();
        match self.backend {
            EntropyBackend::Arith => {
                let lits = LiteralCtw::new(CtwTree::with_capacity(self.depth, self.max_nodes));
                self.encode_payload(&bases, lits, sink, &mut meter).ok()?;
            }
            EntropyBackend::Rans => {
                let lits =
                    LiteralCtw4::new(FastCtwTree4::with_capacity(self.depth / 2, self.max_nodes));
                self.encode_payload(&bases, lits, sink, &mut meter).ok()?;
            }
        }
        let model_ms = t0.elapsed().as_secs_f64() * 1e3;
        Some((model_ms, (full_ms - model_ms).max(0.0)))
    }

    fn entropy_backend(&self) -> &'static str {
        self.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctw::Ctw;
    use crate::dnax::Dnax;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &CtwLz, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = CtwLz::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "GGGGGGGGG"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn backends_cross_decode_via_blob_version() {
        let seq = GenomeModel::default().generate(6_000, 19);
        let legacy = CtwLz::with_backend(EntropyBackend::Arith);
        let fast = CtwLz::default();
        let v1 = legacy.compress(&seq).unwrap();
        assert_eq!(v1.version, VERSION);
        let v2 = fast.compress(&seq).unwrap();
        assert_eq!(v2.version, VERSION_SPEED);
        // Either instance decodes either blob: the version byte rules.
        assert_eq!(fast.decompress(&v1).unwrap(), seq);
        assert_eq!(legacy.decompress(&v2).unwrap(), seq);
    }

    #[test]
    fn beats_pure_ctw_on_repeat_rich_dna() {
        // The LZ stage removes long repeats the pure CTW model would
        // re-learn base by base.
        let seq = GenomeModel::highly_repetitive().generate(40_000, 7);
        let hybrid = roundtrip(&CtwLz::default(), &seq);
        let pure = Ctw::default().compress(&seq).unwrap();
        assert!(
            hybrid.total_bytes() < pure.total_bytes(),
            "CTW+LZ {} vs CTW {}",
            hybrid.total_bytes(),
            pure.total_bytes()
        );
    }

    #[test]
    fn beats_dnax_ratio_on_low_repeat_dna() {
        // Where repeats are scarce, the CTW literal model out-codes
        // DNAX's order-2 fallback.
        let seq = GenomeModel::default().generate(40_000, 11);
        let hybrid = roundtrip(&CtwLz::default(), &seq);
        let dnax = Dnax::default().compress(&seq).unwrap();
        assert!(
            hybrid.total_bytes() <= dnax.total_bytes() * 21 / 20,
            "CTW+LZ {} vs DNAX {}",
            hybrid.total_bytes(),
            dnax.total_bytes()
        );
    }

    #[test]
    fn decompression_cost_matches_compression_for_literals() {
        let seq = GenomeModel::random_only(0.5).generate(10_000, 3);
        let c = CtwLz::default();
        let (blob, cs) = c.compress_with_stats(&seq).unwrap();
        let (_, ds) = c.decompress_with_stats(&blob).unwrap();
        // All-literal input: decode work ≈ encode work (CTW symmetry).
        assert!(ds.work_units * 10 >= cs.work_units * 8);
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(3_000, 13);
        for backend in [EntropyBackend::Arith, EntropyBackend::Rans] {
            let c = CtwLz::with_backend(backend);
            let blob = c.compress(&seq).unwrap();
            let mut trunc = blob.clone();
            trunc.payload.truncate(2);
            assert!(c.decompress(&trunc).is_err());
            for at in 0..blob.payload.len().min(16) {
                let mut bad = blob.clone();
                bad.payload[at] ^= 0x18;
                if let Ok(back) = c.decompress(&bad) {
                    assert_eq!(back, seq, "silent corruption at byte {at}");
                }
            }
        }
    }

    #[test]
    fn stage_times_reports_both_stages() {
        let seq = GenomeModel::default().generate(4_000, 23);
        let (model_ms, entropy_ms) = CtwLz::default().stage_times(&seq).unwrap();
        assert!(model_ms > 0.0);
        assert!(entropy_ms >= 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,1500}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&CtwLz::default(), &seq);
            roundtrip(&CtwLz::with_backend(EntropyBackend::Arith), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 64usize..2500) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&CtwLz::default(), &seq);
        }
    }
}
