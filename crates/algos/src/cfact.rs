//! Cfact port (extension algorithm; paper §III-A / Table 1).
//!
//! Table 1: Cfact "searches longest exact repeats in two passes. First
//! pass suffix tree, second pass encoding"; repeats are LZ-coded and
//! non-repeats stored at 2 bits per base. This port follows that
//! structure with a suffix *array*:
//!
//! * **pass 1** — build the suffix array + LCP and derive, for every
//!   position, its longest earlier occurrence
//!   ([`dnacomp_codec::suffix::SuffixArray::prev_occurrence_table`]);
//! * **pass 2** — greedy left-to-right encoding: positions whose best
//!   earlier match reaches `min_repeat` become γ-coded `(distance,
//!   length)` pointers, everything else is emitted at the naïve
//!   2 bits/base.
//!
//! Unlike the hash-chain compressors, pass 1 sees *globally* longest
//! matches (no probe budget) at the price of suffix-structure memory —
//! the classic Cfact trade-off.

use crate::blob::{Algorithm, CompressedBlob};
use crate::stats::{Meter, ResourceStats};
use crate::Compressor;
use dnacomp_codec::bitio::{BitReader, BitWriter};
use dnacomp_codec::fibonacci::{gamma_decode, gamma_encode};
use dnacomp_codec::suffix::SuffixArray;
use dnacomp_codec::CodecError;
use dnacomp_seq::{Base, PackedSeq};

/// The Cfact-style compressor.
#[derive(Clone, Debug)]
pub struct Cfact {
    /// Minimum repeat length worth a pointer (pointer cost ≈ 2·log bits,
    /// literals cost 2 bits/base, so ~16–32 is the profitable range).
    pub min_repeat: usize,
}

impl Default for Cfact {
    fn default() -> Self {
        Cfact { min_repeat: 24 }
    }
}

impl Compressor for Cfact {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Cfact
    }

    fn compress_with_stats(
        &self,
        seq: &PackedSeq,
    ) -> Result<(CompressedBlob, ResourceStats), CodecError> {
        let mut meter = Meter::new();
        let bases = seq.unpack();
        // Pass 1: suffix structure.
        let sa = SuffixArray::build(&bases);
        let table = sa.prev_occurrence_table();
        // Suffix sort ≈ n log n work; table ≈ n log n.
        let n = bases.len() as u64;
        let logn = (64 - n.max(2).leading_zeros()) as u64;
        meter.work(2 * n * logn);
        meter.heap_snapshot(
            sa.heap_bytes() as u64
                + sa.prev_table_heap_bytes() as u64
                + table.capacity() as u64 * 8
                + bases.len() as u64,
        );

        // Pass 2: greedy encode.
        let mut w = BitWriter::new();
        let mut i = 0usize;
        let mut lit_run: Vec<Base> = Vec::new();
        let flush =
            |w: &mut BitWriter, run: &mut Vec<Base>| -> Result<(), CodecError> {
                if !run.is_empty() {
                    w.push_bit(false);
                    gamma_encode(w, run.len() as u64)?;
                    for b in run.drain(..) {
                        w.push_bits(b.code() as u64, 2);
                    }
                }
                Ok(())
            };
        while i < bases.len() {
            let (src, len) = table[i];
            let len = (len as usize).min(bases.len() - i);
            if len >= self.min_repeat {
                flush(&mut w, &mut lit_run)?;
                w.push_bit(true);
                gamma_encode(&mut w, (len - self.min_repeat + 1) as u64)?;
                gamma_encode(&mut w, (i - src as usize) as u64)?;
                meter.work(len as u64 / 8 + 2);
                i += len;
            } else {
                lit_run.push(bases[i]);
                meter.work(1);
                i += 1;
            }
        }
        flush(&mut w, &mut lit_run)?;
        let blob = CompressedBlob::new(Algorithm::Cfact, seq, w.into_bytes());
        Ok((blob, meter.finish()))
    }

    fn decompress_with_stats(
        &self,
        blob: &CompressedBlob,
    ) -> Result<(PackedSeq, ResourceStats), CodecError> {
        blob.expect_algorithm(Algorithm::Cfact)?;
        let mut meter = Meter::new();
        let mut r = BitReader::new(&blob.payload);
        let mut out: Vec<Base> = Vec::with_capacity(blob.decode_capacity());
        while out.len() < blob.original_len {
            let is_repeat = r.read_bit()?;
            if is_repeat {
                let len = gamma_decode(&mut r)? as usize + self.min_repeat - 1;
                let dist = gamma_decode(&mut r)? as usize;
                let dst = out.len();
                if dist == 0 || dist > dst {
                    return Err(CodecError::Corrupt("cfact distance out of range"));
                }
                if dst + len > blob.original_len {
                    return Err(CodecError::Corrupt("cfact repeat overruns output"));
                }
                // Overlap-tolerant copy.
                for l in 0..len {
                    let b = out[dst - dist + l];
                    out.push(b);
                }
                meter.work(len as u64 / 4 + 2);
            } else {
                let run = gamma_decode(&mut r)? as usize;
                if run == 0 || out.len() + run > blob.original_len {
                    return Err(CodecError::Corrupt("cfact literal run overruns output"));
                }
                for _ in 0..run {
                    out.push(Base::from_code(r.read_bits(2)? as u8));
                }
                meter.work(run as u64);
            }
        }
        meter.heap_snapshot(out.len() as u64);
        let seq = PackedSeq::from(out.as_slice());
        blob.verify(&seq)?;
        Ok((seq, meter.finish()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnax::Dnax;
    use dnacomp_seq::gen::GenomeModel;
    use proptest::prelude::*;

    fn roundtrip(c: &Cfact, seq: &PackedSeq) -> CompressedBlob {
        let (blob, _) = c.compress_with_stats(seq).unwrap();
        let (back, _) = c.decompress_with_stats(&blob).unwrap();
        assert_eq!(&back, seq);
        blob
    }

    #[test]
    fn empty_and_tiny() {
        let c = Cfact::default();
        roundtrip(&c, &PackedSeq::new());
        for s in ["A", "ACGT", "TTTTTTTTT"] {
            roundtrip(&c, &PackedSeq::from_ascii(s.as_bytes()).unwrap());
        }
    }

    #[test]
    fn near_two_bits_on_random_dna() {
        let seq = GenomeModel::random_only(0.5).generate(20_000, 3);
        let blob = roundtrip(&Cfact::default(), &seq);
        let bpb = blob.bits_per_base();
        assert!(bpb < 2.2, "bits/base = {bpb}");
    }

    #[test]
    fn exploits_long_repeats() {
        let unique = GenomeModel::random_only(0.5).generate(5_000, 42).to_ascii();
        let text = unique.repeat(6);
        let seq = PackedSeq::from_ascii(text.as_bytes()).unwrap();
        let blob = roundtrip(&Cfact::default(), &seq);
        assert!(blob.bits_per_base() < 0.6, "{}", blob.bits_per_base());
    }

    #[test]
    fn global_matching_beats_probe_budgeted_dnax_on_scattered_repeats() {
        // Many distinct repeat families exhaust DNAX's chain budget but
        // are trivial for the global suffix structure. (Cfact lacks an
        // arithmetic fallback, so compare on a strongly repetitive
        // input where pointers dominate.)
        let seq = GenomeModel::highly_repetitive().generate(60_000, 5);
        let cf = roundtrip(&Cfact::default(), &seq);
        let mut weak_dnax = Dnax::default();
        weak_dnax.search.max_chain = 1;
        weak_dnax.literal_order = 0;
        let dx = weak_dnax.compress(&seq).unwrap();
        assert!(
            cf.total_bytes() < dx.total_bytes(),
            "Cfact {} vs probe-starved DNAX {}",
            cf.total_bytes(),
            dx.total_bytes()
        );
    }

    #[test]
    fn ram_heavier_than_dnax() {
        let seq = GenomeModel::default().generate(30_000, 7);
        let (_, cf) = Cfact::default().compress_with_stats(&seq).unwrap();
        let (_, dx) = Dnax::default().compress_with_stats(&seq).unwrap();
        assert!(cf.peak_heap_bytes > dx.peak_heap_bytes);
    }

    #[test]
    fn rejects_corruption() {
        let seq = GenomeModel::default().generate(3_000, 13);
        let c = Cfact::default();
        let blob = c.compress(&seq).unwrap();
        let mut bad = blob.clone();
        bad.payload.truncate(bad.payload.len() / 2);
        assert!(c.decompress(&bad).is_err());
        for at in 0..blob.payload.len().min(32) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x11;
            if let Ok(back) = c.decompress(&bad) {
                assert_eq!(back, seq, "silent corruption at byte {at}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]
        #[test]
        fn roundtrip_arbitrary(s in "[ACGT]{0,2000}") {
            let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
            roundtrip(&Cfact::default(), &seq);
        }

        #[test]
        fn roundtrip_structured(seed in any::<u64>(), len in 64usize..3000) {
            let seq = GenomeModel::highly_repetitive().generate(len, seed);
            roundtrip(&Cfact::default(), &seq);
        }
    }
}
