//! Immutable sorted runs ("sstables"): the levelled generations that
//! hold the bulk of the store's data.
//!
//! A run file is written once by a seal or merge, fsynced, renamed into
//! place, and never modified again. Layout:
//!
//! ```text
//! run-000042.sst
//! ├── data blocks      encoded `Record`s, sorted by key, grouped into
//! │                    blocks of ~`run_block_bytes` (the cache unit)
//! ├── index block      "IX" · uvarint count · per block:
//! │                    first_key 16B · uvarint offset · uvarint len ·
//! │                    uvarint records — then u64 LE FNV-1a checksum
//! ├── bloom block      `Bloom::encode` (see `bloom`)
//! └── footer, 75 B     "DS" · version · records u64 · data_len u64 ·
//!                      index_len u64 · bloom_len u64 · min_key 16B ·
//!                      max_key 16B · u64 LE FNV-1a checksum
//! ```
//!
//! Only the footer has a fixed position (the last 75 bytes), so opening
//! a store never reads run *data*: the footer, index and bloom load
//! lazily on the first lookup that reaches the run, which is what keeps
//! `open` sub-linear in object count. The sparse index points at
//! blocks, not records — a lookup bloom-checks in memory, binary
//! searches the block index in memory, and reads exactly one block
//! (usually straight from the block cache) to scan for the key.
//!
//! Every decoder here refuses forged lengths/counts by an affordability
//! check against the bytes actually present *before* allocating.

use crate::bloom::Bloom;
use crate::error::StoreError;
use crate::record::{ContentKey, Record};
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

/// Magic prefix of a run footer.
pub const RUN_MAGIC: [u8; 2] = *b"DS";
/// Run format version.
pub const RUN_VERSION: u8 = 1;
/// Exact encoded footer size, read from the file tail.
pub const FOOTER_LEN: usize = 75;
/// Magic prefix of a run's block-index block.
pub const INDEX_MAGIC: [u8; 2] = *b"IX";
/// Smallest possible encoded index entry (affordability divisor).
const MIN_INDEX_ENTRY: usize = 19;

fn corrupt(what: &'static str, detail: &'static str) -> StoreError {
    StoreError::Corrupt {
        what,
        source: CodecError::Corrupt(detail),
    }
}

/// File name of run `id`: `run-000042.sst`.
pub fn run_name(id: u64) -> String {
    format!("run-{id:06}.sst")
}

/// Full path of run `id` under the store directory.
pub fn run_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(run_name(id))
}

/// Parse a run id back out of a file name (orphan cleanup).
pub fn parse_run_name(name: &str) -> Option<u64> {
    name.strip_prefix("run-")?
        .strip_suffix(".sst")?
        .parse()
        .ok()
}

/// Manifest-resident description of one run: everything `open` needs
/// without touching the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Run id (never reused, shared counter across all levels).
    pub id: u64,
    /// Generation: 1 for freshly sealed L0 batches, +1 per merge.
    pub level: u32,
    /// Records in the run, tombstoned ones included.
    pub records: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Smallest key in the run.
    pub min_key: ContentKey,
    /// Largest key in the run.
    pub max_key: ContentKey,
}

impl RunMeta {
    /// Append the manifest wire encoding of this meta.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.id);
        write_uvarint(out, self.level as u64);
        write_uvarint(out, self.records);
        write_uvarint(out, self.bytes);
        out.extend_from_slice(&self.min_key.0);
        out.extend_from_slice(&self.max_key.0);
    }

    /// Parse a meta from a manifest entry body (`None` = torn/corrupt,
    /// the manifest replay convention).
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<RunMeta> {
        let id = read_uvarint(bytes, pos).ok()?;
        let level = u32::try_from(read_uvarint(bytes, pos).ok()?).ok()?;
        let records = read_uvarint(bytes, pos).ok()?;
        let size = read_uvarint(bytes, pos).ok()?;
        let min = bytes.get(*pos..*pos + 16)?;
        let mut min_key = [0u8; 16];
        min_key.copy_from_slice(min);
        *pos += 16;
        let max = bytes.get(*pos..*pos + 16)?;
        let mut max_key = [0u8; 16];
        max_key.copy_from_slice(max);
        *pos += 16;
        Some(RunMeta {
            id,
            level,
            records,
            bytes: size,
            min_key: ContentKey(min_key),
            max_key: ContentKey(max_key),
        })
    }

    /// `true` when `key` falls inside this run's key range.
    pub fn covers(&self, key: &ContentKey) -> bool {
        *key >= self.min_key && *key <= self.max_key
    }
}

/// The fixed-size trailer of a run file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Footer {
    /// Records in the data region.
    pub records: u64,
    /// Byte length of the data region.
    pub data_len: u64,
    /// Byte length of the index block.
    pub index_len: u64,
    /// Byte length of the bloom block.
    pub bloom_len: u64,
    /// Smallest key in the run.
    pub min_key: ContentKey,
    /// Largest key in the run.
    pub max_key: ContentKey,
}

impl Footer {
    /// Serialise to exactly [`FOOTER_LEN`] bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FOOTER_LEN);
        out.extend_from_slice(&RUN_MAGIC);
        out.push(RUN_VERSION);
        write_u64_le(&mut out, self.records);
        write_u64_le(&mut out, self.data_len);
        write_u64_le(&mut out, self.index_len);
        write_u64_le(&mut out, self.bloom_len);
        out.extend_from_slice(&self.min_key.0);
        out.extend_from_slice(&self.max_key.0);
        let mut h = Fnv1a::new();
        h.update(&out);
        write_u64_le(&mut out, h.digest());
        debug_assert_eq!(out.len(), FOOTER_LEN);
        out
    }

    /// Parse a footer from exactly [`FOOTER_LEN`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<Footer, StoreError> {
        if bytes.len() != FOOTER_LEN {
            return Err(corrupt("run footer", "footer is not exactly 75 bytes"));
        }
        if bytes[0..2] != RUN_MAGIC {
            return Err(corrupt("run footer", "bad run magic"));
        }
        if bytes[2] != RUN_VERSION {
            return Err(StoreError::Corrupt {
                what: "run footer",
                source: CodecError::UnknownFormat(bytes[2]),
            });
        }
        let mut pos = 3;
        let field = |pos: &mut usize| -> Result<u64, StoreError> {
            read_u64_le(bytes, pos).map_err(|source| StoreError::Corrupt {
                what: "run footer",
                source,
            })
        };
        let records = field(&mut pos)?;
        let data_len = field(&mut pos)?;
        let index_len = field(&mut pos)?;
        let bloom_len = field(&mut pos)?;
        let mut min_key = [0u8; 16];
        min_key.copy_from_slice(&bytes[pos..pos + 16]);
        pos += 16;
        let mut max_key = [0u8; 16];
        max_key.copy_from_slice(&bytes[pos..pos + 16]);
        pos += 16;
        let mut h = Fnv1a::new();
        h.update(&bytes[..pos]);
        let stored = field(&mut pos)?;
        if stored != h.digest() {
            return Err(StoreError::Corrupt {
                what: "run footer",
                source: CodecError::ChecksumMismatch {
                    expected: stored,
                    actual: h.digest(),
                },
            });
        }
        Ok(Footer {
            records,
            data_len,
            index_len,
            bloom_len,
            min_key: ContentKey(min_key),
            max_key: ContentKey(max_key),
        })
    }
}

/// One sparse-index entry: a data block's first key and extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockEntry {
    /// First (smallest) key in the block.
    pub first_key: ContentKey,
    /// Block offset within the data region.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u64,
    /// Records in the block.
    pub records: u64,
}

/// Encode the index block for `blocks`.
pub fn encode_index(blocks: &[BlockEntry]) -> Vec<u8> {
    let mut out = Vec::with_capacity(blocks.len() * 24 + 16);
    out.extend_from_slice(&INDEX_MAGIC);
    write_uvarint(&mut out, blocks.len() as u64);
    for b in blocks {
        out.extend_from_slice(&b.first_key.0);
        write_uvarint(&mut out, b.offset);
        write_uvarint(&mut out, b.len);
        write_uvarint(&mut out, b.records);
    }
    let mut h = Fnv1a::new();
    h.update(&out);
    write_u64_le(&mut out, h.digest());
    out
}

/// Decode an index block. The declared entry count is checked against
/// the bytes present before any allocation.
pub fn decode_index(bytes: &[u8]) -> Result<Vec<BlockEntry>, StoreError> {
    if bytes.len() < 3 {
        return Err(corrupt("run index", "index shorter than its header"));
    }
    if bytes[0..2] != INDEX_MAGIC {
        return Err(corrupt("run index", "bad index magic"));
    }
    let mut pos = 2;
    let count = read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
        what: "run index count",
        source,
    })? as usize;
    // Affordability: `count` entries need at least MIN_INDEX_ENTRY
    // bytes each plus the trailing checksum.
    if count > bytes.len().saturating_sub(pos + 8) / MIN_INDEX_ENTRY {
        return Err(corrupt("run index", "index count outside the affordable range"));
    }
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let raw = bytes
            .get(pos..pos + 16)
            .ok_or_else(|| corrupt("run index", "index entry runs past the block"))?;
        let mut first = [0u8; 16];
        first.copy_from_slice(raw);
        pos += 16;
        let mut varint = |what: &'static str| -> Result<u64, StoreError> {
            read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt { what, source })
        };
        let offset = varint("run index offset")?;
        let len = varint("run index length")?;
        let records = varint("run index records")?;
        blocks.push(BlockEntry {
            first_key: ContentKey(first),
            offset,
            len,
            records,
        });
    }
    let mut h = Fnv1a::new();
    h.update(&bytes[..pos]);
    let stored = read_u64_le(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
        what: "run index checksum",
        source,
    })?;
    if stored != h.digest() {
        return Err(StoreError::Corrupt {
            what: "run index",
            source: CodecError::ChecksumMismatch {
                expected: stored,
                actual: h.digest(),
            },
        });
    }
    if pos != bytes.len() {
        return Err(corrupt("run index", "trailing bytes after the index"));
    }
    Ok(blocks)
}

/// A fully built (not yet named) run, ready to hit disk.
pub struct BuiltRun {
    /// The complete file image: data ++ index ++ bloom ++ footer.
    pub bytes: Vec<u8>,
    /// Records encoded.
    pub records: u64,
    /// Smallest key.
    pub min_key: ContentKey,
    /// Largest key.
    pub max_key: ContentKey,
}

/// Assemble a run file image from `records` — `(key, encoded record)`
/// pairs already sorted by key, at least one. Blocks close at
/// `block_bytes`; the bloom gets `bits_per_key` bits per record.
pub fn build_run(records: &[(ContentKey, Vec<u8>)], block_bytes: usize, bits_per_key: u32) -> BuiltRun {
    assert!(!records.is_empty(), "a run holds at least one record");
    debug_assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "sorted, distinct keys");
    let mut data = Vec::new();
    let mut blocks: Vec<BlockEntry> = Vec::new();
    let mut bloom = Bloom::sized_for(records.len(), bits_per_key);
    for (key, bytes) in records {
        bloom.insert(key);
        let start_new = match blocks.last() {
            None => true,
            Some(last) => (data.len() as u64 - last.offset) >= block_bytes as u64,
        };
        if start_new {
            blocks.push(BlockEntry {
                first_key: *key,
                offset: data.len() as u64,
                len: 0,
                records: 0,
            });
        }
        data.extend_from_slice(bytes);
        let last = blocks.last_mut().expect("block just ensured");
        last.len = data.len() as u64 - last.offset;
        last.records += 1;
    }
    let index = encode_index(&blocks);
    let bloom_bytes = bloom.encode();
    let footer = Footer {
        records: records.len() as u64,
        data_len: data.len() as u64,
        index_len: index.len() as u64,
        bloom_len: bloom_bytes.len() as u64,
        min_key: records[0].0,
        max_key: records[records.len() - 1].0,
    };
    let mut bytes = data;
    bytes.extend_from_slice(&index);
    bytes.extend_from_slice(&bloom_bytes);
    bytes.extend_from_slice(&footer.encode());
    BuiltRun {
        bytes,
        records: records.len() as u64,
        min_key: footer.min_key,
        max_key: footer.max_key,
    }
}

/// The lazily loaded in-memory side of a run: sparse index + bloom.
#[derive(Debug)]
pub struct RunIndex {
    /// The validated footer.
    pub footer: Footer,
    /// Sparse block index, sorted by first key.
    pub blocks: Vec<BlockEntry>,
    /// Membership filter over every record key.
    pub bloom: Bloom,
}

impl RunIndex {
    /// The block that could hold `key`: the last one whose first key is
    /// `<= key` (keys below every block land nowhere).
    pub fn find_block(&self, key: &ContentKey) -> Option<usize> {
        let n = self.blocks.partition_point(|b| b.first_key <= *key);
        n.checked_sub(1)
    }
}

/// One open run: manifest meta plus the lazily loaded index/bloom.
#[derive(Debug)]
pub struct RunHandle {
    /// The manifest's description of this run.
    pub meta: RunMeta,
    loaded: Mutex<Option<Arc<RunIndex>>>,
}

impl RunHandle {
    /// Wrap a manifest meta; nothing is read until the first lookup.
    pub fn new(meta: RunMeta) -> RunHandle {
        RunHandle {
            meta,
            loaded: Mutex::new(None),
        }
    }

    /// The index/bloom, reading and validating them on first use.
    pub fn load(&self, dir: &Path) -> Result<Arc<RunIndex>, StoreError> {
        let mut slot = self
            .loaded
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(idx) = slot.as_ref() {
            return Ok(Arc::clone(idx));
        }
        let path = run_path(dir, self.meta.id);
        let mut f = File::open(&path).map_err(|e| StoreError::io("opening run", e))?;
        let file_len = f
            .metadata()
            .map_err(|e| StoreError::io("statting run", e))?
            .len();
        if file_len < FOOTER_LEN as u64 {
            return Err(corrupt("run footer", "run file shorter than its footer"));
        }
        f.seek(SeekFrom::Start(file_len - FOOTER_LEN as u64))
            .map_err(|e| StoreError::io("seeking run footer", e))?;
        let mut tail = [0u8; FOOTER_LEN];
        f.read_exact(&mut tail)
            .map_err(|e| StoreError::io("reading run footer", e))?;
        let footer = Footer::decode(&tail)?;
        let expect = footer
            .data_len
            .checked_add(footer.index_len)
            .and_then(|n| n.checked_add(footer.bloom_len))
            .and_then(|n| n.checked_add(FOOTER_LEN as u64));
        if expect != Some(file_len) {
            return Err(corrupt("run footer", "footer extents do not sum to the file size"));
        }
        if footer.records != self.meta.records {
            return Err(corrupt("run footer", "footer record count disagrees with the manifest"));
        }
        // index_len/bloom_len are affordable by construction here: they
        // sum to the real file size, which bounds the reads below.
        f.seek(SeekFrom::Start(footer.data_len))
            .map_err(|e| StoreError::io("seeking run index", e))?;
        let mut index_bytes = vec![0u8; footer.index_len as usize];
        f.read_exact(&mut index_bytes)
            .map_err(|e| StoreError::io("reading run index", e))?;
        let blocks = decode_index(&index_bytes)?;
        let mut bloom_bytes = vec![0u8; footer.bloom_len as usize];
        f.read_exact(&mut bloom_bytes)
            .map_err(|e| StoreError::io("reading run bloom", e))?;
        let (bloom, used) = Bloom::decode(&bloom_bytes)?;
        if used != bloom_bytes.len() {
            return Err(corrupt("run bloom", "trailing bytes after the bloom block"));
        }
        let idx = Arc::new(RunIndex {
            footer,
            blocks,
            bloom,
        });
        *slot = Some(Arc::clone(&idx));
        Ok(idx)
    }

    /// Read one data block from disk (cache misses land here).
    pub fn read_block(&self, dir: &Path, entry: &BlockEntry) -> Result<Vec<u8>, StoreError> {
        let path = run_path(dir, self.meta.id);
        let mut f = File::open(&path).map_err(|e| StoreError::io("opening run", e))?;
        f.seek(SeekFrom::Start(entry.offset))
            .map_err(|e| StoreError::io("seeking run block", e))?;
        let mut buf = vec![0u8; entry.len as usize];
        f.read_exact(&mut buf)
            .map_err(|e| StoreError::io("reading run block", e))?;
        Ok(buf)
    }

    /// Decode every record in order, handing `(key, encoded bytes)` to
    /// `f`. Used by merges, verify, scrub and key listing — always from
    /// disk, never through the cache, so bit rot cannot hide behind a
    /// cached copy.
    pub fn for_each_record(
        &self,
        dir: &Path,
        mut f: impl FnMut(ContentKey, &[u8]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        let idx = self.load(dir)?;
        for entry in &idx.blocks {
            let block = self.read_block(dir, entry)?;
            let mut pos = 0usize;
            for _ in 0..entry.records {
                let (record, used) = Record::decode(&block[pos..])?;
                f(record.key, &block[pos..pos + used])?;
                pos += used;
            }
            if pos != block.len() {
                return Err(corrupt("run block", "trailing bytes after the block's records"));
            }
        }
        Ok(())
    }
}

/// Scan a data block for `key`, returning the decoded record and its
/// encoded length if present. Structural damage is a typed error.
pub fn scan_block(block: &[u8], key: &ContentKey) -> Result<Option<(Record, u64)>, StoreError> {
    let mut pos = 0usize;
    while pos < block.len() {
        let (record, used) = Record::decode(&block[pos..])?;
        if record.key == *key {
            return Ok(Some((record, used as u64)));
        }
        if record.key > *key {
            return Ok(None); // sorted: the key cannot appear later
        }
        pos += used;
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::Algorithm;
    use dnacomp_codec::checksum::mix64;

    fn record(n: u64, payload_len: usize) -> (ContentKey, Vec<u8>) {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&mix64(n).to_le_bytes());
        k[8..].copy_from_slice(&mix64(!n).to_le_bytes());
        let rec = Record {
            key: ContentKey(k),
            algorithm: Algorithm::Dnax,
            original_len: payload_len as u64 * 4,
            payload: vec![n as u8; payload_len],
        };
        (rec.key, rec.encode())
    }

    fn sorted_records(n: u64) -> Vec<(ContentKey, Vec<u8>)> {
        let mut recs: Vec<_> = (0..n).map(|i| record(i, 24 + (i % 7) as usize)).collect();
        recs.sort_by_key(|(k, _)| *k);
        recs
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(run_name(0), "run-000000.sst");
        for id in [0, 42, 1_000_000] {
            assert_eq!(parse_run_name(&run_name(id)), Some(id));
        }
        assert_eq!(parse_run_name("seg-000001.seg"), None);
        assert_eq!(parse_run_name("run-000001.sst.tmp"), None);
    }

    #[test]
    fn footer_roundtrip_and_flips() {
        let f = Footer {
            records: 12,
            data_len: 4096,
            index_len: 64,
            bloom_len: 48,
            min_key: ContentKey([1; 16]),
            max_key: ContentKey([200; 16]),
        };
        let bytes = f.encode();
        assert_eq!(bytes.len(), FOOTER_LEN);
        assert_eq!(Footer::decode(&bytes).unwrap(), f);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x04;
            assert!(Footer::decode(&bad).is_err(), "flip at {i} undetected");
        }
        assert!(Footer::decode(&bytes[..FOOTER_LEN - 1]).is_err());
    }

    #[test]
    fn index_roundtrip_and_forged_count() {
        let blocks: Vec<BlockEntry> = (0..5)
            .map(|i| BlockEntry {
                first_key: ContentKey([i as u8 * 10; 16]),
                offset: i * 4096,
                len: 4096,
                records: 17,
            })
            .collect();
        let bytes = encode_index(&blocks);
        assert_eq!(decode_index(&bytes).unwrap(), blocks);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x08;
            assert!(decode_index(&bad).is_err(), "flip at {i} undetected");
        }
        // Forge a huge count into a tiny buffer: affordability refuses
        // it before reserving anything.
        let mut forged = Vec::new();
        forged.extend_from_slice(&INDEX_MAGIC);
        write_uvarint(&mut forged, u64::MAX / 2);
        forged.resize(64, 0);
        assert!(matches!(decode_index(&forged), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn build_and_read_back_every_record() {
        let dir = std::env::temp_dir().join(format!("dnacomp-sst-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let recs = sorted_records(100);
        let built = build_run(&recs, 256, 10);
        assert_eq!(built.records, 100);
        std::fs::write(run_path(&dir, 1), &built.bytes).unwrap();
        let handle = RunHandle::new(RunMeta {
            id: 1,
            level: 1,
            records: 100,
            bytes: built.bytes.len() as u64,
            min_key: built.min_key,
            max_key: built.max_key,
        });
        let idx = handle.load(&dir).unwrap();
        assert!(idx.blocks.len() > 1, "256-byte blocks must split 100 records");
        for (key, bytes) in &recs {
            assert!(idx.bloom.contains(key));
            let b = idx.find_block(key).expect("every key maps to a block");
            let block = handle.read_block(&dir, &idx.blocks[b]).unwrap();
            let (rec, used) = scan_block(&block, key).unwrap().expect("present");
            assert_eq!(&rec.encode(), bytes);
            assert_eq!(used as usize, bytes.len());
        }
        // A key below the whole range maps to no block.
        assert_eq!(idx.find_block(&ContentKey([0; 16])).is_none(),
                   recs[0].0 > ContentKey([0; 16]));
        // Full iteration sees every record in key order.
        let mut seen = Vec::new();
        handle
            .for_each_record(&dir, |k, _| {
                seen.push(k);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen.len(), 100);
        assert!(seen.windows(2).all(|w| w[0] < w[1]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_rejects_inconsistent_footer_extents() {
        let dir = std::env::temp_dir().join(format!("dnacomp-sst-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let recs = sorted_records(10);
        let built = build_run(&recs, 4096, 10);
        // Truncate a byte: extents no longer sum to the file size.
        std::fs::write(run_path(&dir, 2), &built.bytes[..built.bytes.len() - 1]).unwrap();
        let handle = RunHandle::new(RunMeta {
            id: 2,
            level: 1,
            records: 10,
            bytes: built.bytes.len() as u64 - 1,
            min_key: built.min_key,
            max_key: built.max_key,
        });
        assert!(handle.load(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_roundtrips_through_manifest_encoding() {
        let meta = RunMeta {
            id: 9,
            level: 3,
            records: 1_000,
            bytes: 123_456,
            min_key: ContentKey([3; 16]),
            max_key: ContentKey([240; 16]),
        };
        let mut out = Vec::new();
        meta.encode_into(&mut out);
        let mut pos = 0;
        assert_eq!(RunMeta::decode(&out, &mut pos), Some(meta));
        assert_eq!(pos, out.len());
        for cut in 0..out.len() {
            let mut p = 0;
            assert_eq!(RunMeta::decode(&out[..cut], &mut p), None, "cut {cut}");
        }
    }
}
