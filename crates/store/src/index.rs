//! Sharded in-memory key index, rebuilt from the manifest on open.
//!
//! Lookups and inserts lock one of [`SHARDS`] independent maps chosen
//! by the key's low byte, so concurrent `get`s from service workers
//! never contend on a global lock. The index is purely a cache of the
//! manifest — losing it costs a replay, never data.
//!
//! Shard locks recover from poisoning rather than propagating a
//! panic: every critical section is a single `HashMap` operation, so a
//! panicking thread can never leave a shard half-mutated, and the map
//! behind a poisoned lock is exactly as valid as before the panic.

use crate::manifest::Location;
use crate::record::ContentKey;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a shard, recovering from poisoning (see module docs).
fn lock_shard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of independent index shards.
pub const SHARDS: usize = 16;

/// The sharded key → location map.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<Mutex<HashMap<ContentKey, Location>>>,
}

impl Default for ShardedIndex {
    fn default() -> Self {
        ShardedIndex::new()
    }
}

impl ShardedIndex {
    /// Fresh empty index.
    pub fn new() -> Self {
        ShardedIndex {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &ContentKey) -> &Mutex<HashMap<ContentKey, Location>> {
        &self.shards[key.shard(SHARDS)]
    }

    /// Location of `key`, if present.
    pub fn get(&self, key: &ContentKey) -> Option<Location> {
        lock_shard(self.shard(key)).get(key).copied()
    }

    /// `true` if `key` is present.
    pub fn contains(&self, key: &ContentKey) -> bool {
        self.get(key).is_some()
    }

    /// Insert or replace; returns the previous location if any.
    pub fn insert(&self, key: ContentKey, loc: Location) -> Option<Location> {
        lock_shard(self.shard(&key)).insert(key, loc)
    }

    /// Remove; returns the evicted location if the key was present.
    pub fn remove(&self, key: &ContentKey) -> Option<Location> {
        lock_shard(self.shard(key)).remove(key)
    }

    /// Total records indexed.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock_shard(s).len())
            .sum()
    }

    /// `true` when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable snapshot of every entry, sorted by key so iteration order
    /// is deterministic for scrub reports and compaction rewrites.
    pub fn snapshot(&self) -> Vec<(ContentKey, Location)> {
        let mut all: Vec<(ContentKey, Location)> = self
            .shards
            .iter()
            .flat_map(|s| {
                lock_shard(s)
                    .iter()
                    .map(|(k, v)| (*k, *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|(k, _)| *k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::Algorithm;

    fn loc(segment: u64) -> Location {
        Location {
            segment,
            offset: 0,
            len: 10,
            algorithm: Algorithm::Gzip,
            original_len: 4,
        }
    }

    #[test]
    fn insert_get_remove() {
        let idx = ShardedIndex::new();
        assert!(idx.is_empty());
        let k = ContentKey([1; 16]);
        assert_eq!(idx.insert(k, loc(1)), None);
        assert_eq!(idx.get(&k), Some(loc(1)));
        assert_eq!(idx.insert(k, loc(2)), Some(loc(1)));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(&k), Some(loc(2)));
        assert!(!idx.contains(&k));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let idx = ShardedIndex::new();
        for i in (0..=255u8).rev() {
            idx.insert(ContentKey([i; 16]), loc(i as u64));
        }
        let snap = idx.snapshot();
        assert_eq!(snap.len(), 256);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn concurrent_inserts_touch_disjoint_shards() {
        let idx = std::sync::Arc::new(ShardedIndex::new());
        let handles: Vec<_> = (0..8u8)
            .map(|t| {
                let idx = std::sync::Arc::clone(&idx);
                std::thread::spawn(move || {
                    for i in 0..100u8 {
                        let mut k = [t; 16];
                        k[15] = i;
                        idx.insert(ContentKey(k), loc(t as u64));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(idx.len(), 800);
    }
}
