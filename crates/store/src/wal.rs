//! Group commit: batch-fsync the write-ahead log on the hot path.
//!
//! With per-put fsync (the pre-engine behaviour, still available by
//! setting [`crate::StoreConfig::group_commit_window`] to `None`), N
//! concurrent puts cost N segment fsyncs plus N manifest fsyncs. Group
//! commit decouples *appending* from *making durable*:
//!
//! 1. Each append (under the writer lock) gets a monotonically
//!    increasing sequence number and marks its files dirty.
//! 2. The committing thread calls [`GroupCommit::wait_durable`]. The
//!    first waiter becomes the batch leader: it sleeps for the commit
//!    window (letting concurrent appends pile up), then runs the sync
//!    closure — which re-takes the writer lock, fsyncs every dirty
//!    segment *then* the manifest, and reports the highest sequence it
//!    covered. Everyone whose sequence is covered wakes and returns.
//!
//! Ordering is what makes the torn-tail rule stay sound: the sync
//! closure holds the writer lock for all of its fsyncs, so no append
//! can slip a manifest entry in *after* the segment fsync but *before*
//! the manifest fsync — every entry the manifest fsync persists has its
//! record bytes already durable. A batch is always a tail of the log,
//! so a crash mid-batch loses only entries that were never acknowledged.

use crate::error::StoreError;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Point-in-time WAL counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Manifest entries appended since open.
    pub appends: u64,
    /// Fsync batches that made appends durable. Under concurrency this
    /// is well below `appends` — that gap *is* the group-commit win.
    pub fsync_batches: u64,
}

#[derive(Default)]
struct GcState {
    /// Highest sequence number known durable.
    synced: u64,
    /// A leader is currently sleeping/syncing on behalf of the batch.
    leader: bool,
    /// A leader's fsync failed; waiters must not spin forever.
    failed: bool,
}

fn lock_state(m: &Mutex<GcState>) -> MutexGuard<'_, GcState> {
    // The state is three scalars; no critical section can leave it
    // half-mutated, so recover from poisoning.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The group-commit scheduler (one per store).
pub(crate) struct GroupCommit {
    window: Option<Duration>,
    appended: AtomicU64,
    batches: AtomicU64,
    state: Mutex<GcState>,
    cv: Condvar,
}

impl GroupCommit {
    pub(crate) fn new(window: Option<Duration>) -> GroupCommit {
        GroupCommit {
            window,
            appended: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            state: Mutex::new(GcState::default()),
            cv: Condvar::new(),
        }
    }

    /// Assign the next sequence number. Called with the writer lock
    /// held, immediately after the manifest append.
    pub(crate) fn note_append(&self) -> u64 {
        self.appended.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Highest assigned sequence. Only meaningful under the writer lock
    /// (where no new appends can race).
    pub(crate) fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Record that a checkpoint (or an inline fsync) just made every
    /// append up to `seq` durable, releasing any waiters.
    pub(crate) fn note_synced(&self, seq: u64) {
        let mut st = lock_state(&self.state);
        if seq > st.synced {
            st.synced = seq;
            self.cv.notify_all();
        }
    }

    /// Block until sequence `seq` is durable, electing this thread as
    /// batch leader if none is active. `sync_fn` must fsync every dirty
    /// file (segments before manifest) and return the highest sequence
    /// it covered; it is called without the state lock held, so it may
    /// take the writer lock.
    pub(crate) fn wait_durable<F>(&self, seq: u64, mut sync_fn: F) -> Result<(), StoreError>
    where
        F: FnMut() -> Result<u64, StoreError>,
    {
        let mut st = lock_state(&self.state);
        loop {
            if st.synced >= seq {
                return Ok(());
            }
            if st.failed {
                // A prior leader's fsync failed; the store is no longer
                // promising durability. Surface it as the fail-stop
                // signal callers already handle by reopening.
                return Err(StoreError::Crashed);
            }
            if st.leader {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            st.leader = true;
            drop(st);
            if let Some(window) = self.window {
                if !window.is_zero() {
                    std::thread::sleep(window);
                }
            }
            let outcome = sync_fn();
            st = lock_state(&self.state);
            st.leader = false;
            match outcome {
                Ok(covered) => {
                    st.synced = st.synced.max(covered);
                    self.batches.fetch_add(1, Ordering::Relaxed);
                    self.cv.notify_all();
                }
                Err(e) => {
                    st.failed = true;
                    self.cv.notify_all();
                    return Err(e);
                }
            }
        }
    }

    pub(crate) fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appended.load(Ordering::Relaxed),
            fsync_batches: self.batches.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn single_waiter_becomes_leader_and_syncs() {
        let gc = GroupCommit::new(Some(Duration::from_millis(1)));
        let seq = gc.note_append();
        let calls = Counter::new(0);
        gc.wait_durable(seq, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(seq)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(gc.stats(), WalStats { appends: 1, fsync_batches: 1 });
    }

    #[test]
    fn concurrent_waiters_share_batches() {
        let gc = Arc::new(GroupCommit::new(Some(Duration::from_millis(5))));
        let syncs = Arc::new(Counter::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let gc = Arc::clone(&gc);
                let syncs = Arc::clone(&syncs);
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let seq = gc.note_append();
                        gc.wait_durable(seq, || {
                            syncs.fetch_add(1, Ordering::Relaxed);
                            // Cover everything appended so far, like the
                            // store's sync closure does under the
                            // writer lock.
                            Ok(gc.appended())
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = gc.stats();
        assert_eq!(stats.appends, 32);
        assert_eq!(stats.fsync_batches, syncs.load(Ordering::Relaxed));
        assert!(
            stats.fsync_batches < stats.appends,
            "8 threads × 5 ms window must batch: {stats:?}"
        );
    }

    #[test]
    fn leader_failure_fails_waiters_fast() {
        let gc = GroupCommit::new(None);
        let seq = gc.note_append();
        let err = gc
            .wait_durable(seq, || Err(StoreError::Crashed))
            .unwrap_err();
        assert!(err.is_simulated_crash());
        // Later waiters see the sticky failure without electing a leader.
        let seq2 = gc.note_append();
        let err2 = gc
            .wait_durable(seq2, || panic!("no new leader after failure"))
            .unwrap_err();
        assert!(err2.is_simulated_crash());
    }

    #[test]
    fn note_synced_releases_without_a_leader() {
        let gc = GroupCommit::new(Some(Duration::from_millis(1)));
        let seq = gc.note_append();
        gc.note_synced(seq);
        gc.wait_durable(seq, || panic!("already durable, no sync needed"))
            .unwrap();
    }
}
