//! Append-only segment files and their liveness accounting.
//!
//! A segment is a bare concatenation of encoded [`crate::Record`]s —
//! no segment header, no framing beyond what each record carries. All
//! structure (which byte ranges are live, which segment is active)
//! lives in the manifest, so a segment file is never interpreted
//! without a manifest entry pointing into it, and a torn tail past the
//! last committed record is plain garbage the next open truncates away.

use crate::error::StoreError;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// File-name stem of segment `id`: `seg-000042.seg`.
pub fn segment_name(id: u64) -> String {
    format!("seg-{id:06}.seg")
}

/// Full path of segment `id` under the store directory.
pub fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(segment_name(id))
}

/// Parse a segment id back out of a file name (for orphan cleanup).
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

/// Read exactly `len` bytes at `offset` from segment `id`.
pub fn read_at(dir: &Path, id: u64, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
    let path = segment_path(dir, id);
    let mut f = File::open(&path).map_err(|e| StoreError::io("opening segment", e))?;
    f.seek(SeekFrom::Start(offset))
        .map_err(|e| StoreError::io("seeking segment", e))?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)
        .map_err(|e| StoreError::io("reading segment", e))?;
    Ok(buf)
}

/// Byte/record accounting for one segment, maintained from manifest
/// entries; drives the compaction policy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Total committed bytes in the segment (live + dead).
    pub bytes: u64,
    /// Bytes still referenced by the index.
    pub live_bytes: u64,
    /// Committed records written into the segment.
    pub records: u64,
    /// Records still referenced by the index.
    pub live_records: u64,
}

impl SegmentInfo {
    /// Fraction of committed bytes still live (1.0 for an empty segment,
    /// so fresh segments are never compaction victims).
    pub fn live_ratio(&self) -> f64 {
        if self.bytes == 0 {
            1.0
        } else {
            self.live_bytes as f64 / self.bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        assert_eq!(segment_name(0), "seg-000000.seg");
        assert_eq!(segment_name(1_234_567), "seg-1234567.seg");
        for id in [0, 42, 999_999, 1_000_000] {
            assert_eq!(parse_segment_name(&segment_name(id)), Some(id));
        }
        assert_eq!(parse_segment_name("manifest.log"), None);
        assert_eq!(parse_segment_name("seg-x.seg"), None);
        assert_eq!(parse_segment_name("seg-1.tmp"), None);
    }

    #[test]
    fn live_ratio_edges() {
        assert_eq!(SegmentInfo::default().live_ratio(), 1.0);
        let s = SegmentInfo {
            bytes: 100,
            live_bytes: 25,
            records: 4,
            live_records: 1,
        };
        assert!((s.live_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn read_at_reports_missing_files() {
        let dir = std::env::temp_dir();
        assert!(matches!(
            read_at(&dir, 999_999_999, 0, 4),
            Err(StoreError::Io { .. })
        ));
    }
}
