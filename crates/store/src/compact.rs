//! Level maintenance: sealing L0 into runs, merging runs downward, and
//! checkpointing the manifest.
//!
//! Every transition follows the same commit discipline:
//!
//! 1. Write the output run to `run-NNNNNN.sst.tmp`, fsync, rename to
//!    its final name. An orphan at either stage is deleted on reopen —
//!    the manifest does not know it yet.
//! 2. Append **one** manifest entry carrying the new run's meta *and*
//!    the full list of source files it replaces, then fsync the
//!    manifest inline. One entry means one commit point: replay either
//!    sees the whole transition or none of it, so a record is never
//!    counted twice (old home + new home) after any crash.
//! 3. Only then mutate in-memory state and delete the source files.
//!
//! The drop list is capped ([`manifest::MAX_DROP_LIST`]); a transition
//! over more sources than that simply runs as several full transitions,
//! never by splitting one entry.

use crate::manifest::{self, Entry};
use crate::record::ContentKey;
use crate::sstable::{self, BuiltRun, RunHandle, RunMeta};
use crate::store::{lock_plain, CompactReport, SequenceStore, Tombstone, Writer};
use crate::StoreError;
use std::collections::{HashMap, HashSet};
use std::fs;
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl SequenceStore {
    /// Opportunistic maintenance after a put's commit point, called with
    /// the writer lock held. Failures (including injected crashes) are
    /// counted, not propagated: the put already committed, and a store
    /// killed mid-maintenance recovers on reopen.
    pub(crate) fn maybe_maintain(&self, w: &mut Writer) {
        if self.config.l0_seal_segments == 0 || w.dead {
            return;
        }
        if let Err(_e) = self.maintain_locked(w) {
            self.maintenance_failures.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn maintain_locked(&self, w: &mut Writer) -> Result<(), StoreError> {
        let mut report = CompactReport::default();
        let sealed = w.segments.len().saturating_sub(1); // active stays
        if sealed >= self.config.l0_seal_segments {
            self.seal_l0(w, &mut report)?;
        }
        while let Some(level) = self.auto_merge_candidate() {
            if !self.merge_level(w, level, &mut report)? {
                break;
            }
        }
        Ok(())
    }

    /// Lowest level whose run count reached the fanout, if any.
    fn auto_merge_candidate(&self) -> Option<u32> {
        let runs = lock_plain(&self.runs);
        let mut per_level: HashMap<u32, usize> = HashMap::new();
        for h in runs.values() {
            *per_level.entry(h.meta.level).or_default() += 1;
        }
        per_level
            .into_iter()
            .filter(|&(_, n)| n >= self.config.level_fanout)
            .map(|(l, _)| l)
            .min()
    }

    /// Lowest level worth a *forced* merge: two runs to combine, or any
    /// run carrying tombstoned records to reclaim.
    fn forced_merge_candidate(&self) -> Option<u32> {
        let runs = lock_plain(&self.runs);
        let dead_runs: HashSet<u64> = lock_plain(&self.tombstones)
            .values()
            .map(|t| t.run)
            .collect();
        let mut per_level: HashMap<u32, usize> = HashMap::new();
        let mut tombstoned: Option<u32> = None;
        for h in runs.values() {
            *per_level.entry(h.meta.level).or_default() += 1;
            if dead_runs.contains(&h.meta.id) {
                tombstoned = Some(tombstoned.map_or(h.meta.level, |l| l.min(h.meta.level)));
            }
        }
        let crowded = per_level
            .into_iter()
            .filter(|&(_, n)| n >= 2)
            .map(|(l, _)| l)
            .min();
        match (crowded, tombstoned) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Reclaim all dead space now: seal every sealed L0 segment into
    /// runs, merge levels until no level has two runs or a tombstone,
    /// then checkpoint the manifest to its live contents.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        let mut report = CompactReport::default();
        while self.seal_l0(&mut w, &mut report)? {}
        while let Some(level) = self.forced_merge_candidate() {
            if !self.merge_level(&mut w, level, &mut report)? {
                break;
            }
        }
        self.checkpoint_locked(&mut w)?;
        Ok(report)
    }

    /// Compact exactly one level: level 0 seals its sealed segments
    /// into a run; level ≥ 1 merges its runs into the next level. No
    /// cascade, no checkpoint — surgical reclamation for operators (the
    /// CLI's `store compact --level`).
    pub fn compact_level(&self, level: u32) -> Result<CompactReport, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        let mut report = CompactReport::default();
        if level == 0 {
            self.seal_l0(&mut w, &mut report)?;
        } else {
            self.merge_level(&mut w, level, &mut report)?;
        }
        Ok(report)
    }

    /// Seal up to [`manifest::MAX_DROP_LIST`] non-active L0 segments
    /// into one level-1 run. Returns whether anything happened.
    pub(crate) fn seal_l0(
        &self,
        w: &mut Writer,
        report: &mut CompactReport,
    ) -> Result<bool, StoreError> {
        let victims: Vec<u64> = w
            .segments
            .keys()
            .copied()
            .filter(|&id| id != w.active)
            .take(manifest::MAX_DROP_LIST)
            .collect();
        if victims.is_empty() {
            return Ok(false);
        }
        let victim_set: HashSet<u64> = victims.iter().copied().collect();
        let victim_bytes: u64 = victims
            .iter()
            .filter_map(|id| w.segments.get(id))
            .map(|info| info.bytes)
            .sum();
        // Validate-first: read every live record out of the victims
        // before touching anything. A read failure aborts the seal with
        // the store fully intact.
        let mut moves: Vec<(ContentKey, Vec<u8>)> = Vec::new();
        for (key, loc) in self.index.snapshot() {
            if !victim_set.contains(&loc.segment) {
                continue;
            }
            let bytes =
                crate::segment::read_at(&self.dir, loc.segment, loc.offset, loc.len as usize)?;
            let (record, _) = crate::record::Record::decode(&bytes)?;
            if record.key != key {
                return Err(StoreError::Corrupt {
                    what: "record key",
                    source: dnacomp_codec::CodecError::Corrupt(
                        "stored record carries a different key",
                    ),
                });
            }
            moves.push((key, bytes));
        }
        moves.sort_unstable_by_key(|a| a.0);

        let run = if moves.is_empty() {
            None // all-dead segments: the Seal entry just drops them
        } else {
            Some(self.install_run(w, 1, &moves)?)
        };
        let out_bytes = run.map_or(0, |m| m.bytes);
        let records_moved = moves.len() as u64;
        let entry = Entry::Seal {
            run,
            segments: victims.clone(),
        };
        self.append_manifest(w, &entry)?;
        self.fsync_commit(w)?; // the commit point, durable before deletes

        if let Some(meta) = run {
            w.next_run = meta.id + 1;
            lock_plain(&self.runs).insert(meta.id, Arc::new(RunHandle::new(meta)));
            for (key, _) in &moves {
                self.index.remove(key);
            }
        }
        for id in &victims {
            w.segments.remove(id);
            let _ = fs::remove_file(crate::segment::segment_path(&self.dir, *id));
        }
        report.segments_removed += victims.len() as u64;
        report.bytes_reclaimed += victim_bytes.saturating_sub(out_bytes);
        report.records_moved += records_moved;
        self.seals.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Merge every run at `level` into one run at `level + 1`, dropping
    /// tombstoned records. Returns whether anything happened.
    pub(crate) fn merge_level(
        &self,
        w: &mut Writer,
        level: u32,
        report: &mut CompactReport,
    ) -> Result<bool, StoreError> {
        let inputs: Vec<Arc<RunHandle>> = {
            let runs = lock_plain(&self.runs);
            runs.values()
                .filter(|h| h.meta.level == level)
                .take(manifest::MAX_DROP_LIST)
                .cloned()
                .collect()
        };
        if inputs.is_empty() {
            return Ok(false);
        }
        let input_ids: HashSet<u64> = inputs.iter().map(|h| h.meta.id).collect();
        let dead: HashSet<ContentKey> = lock_plain(&self.tombstones)
            .iter()
            .filter(|(_, t)| input_ids.contains(&t.run))
            .map(|(k, _)| *k)
            .collect();
        let input_bytes: u64 = inputs.iter().map(|h| h.meta.bytes).sum();
        // Validate-first again: a damaged input aborts the merge with
        // every input still in place.
        let mut moves: Vec<(ContentKey, Vec<u8>)> = Vec::new();
        for h in &inputs {
            h.for_each_record(&self.dir, |key, bytes| {
                if !dead.contains(&key) {
                    moves.push((key, bytes.to_vec()));
                }
                Ok(())
            })?;
        }
        moves.sort_unstable_by_key(|a| a.0);

        let run = if moves.is_empty() {
            None
        } else {
            Some(self.install_run(w, level + 1, &moves)?)
        };
        let out_bytes = run.map_or(0, |m| m.bytes);
        let records_moved = moves.len() as u64;
        let mut sorted_ids: Vec<u64> = input_ids.iter().copied().collect();
        sorted_ids.sort_unstable();
        let entry = Entry::Merge {
            run,
            runs: sorted_ids,
        };
        self.append_manifest(w, &entry)?;
        self.fsync_commit(w)?;

        {
            let mut runs = lock_plain(&self.runs);
            for id in &input_ids {
                runs.remove(id);
            }
            if let Some(meta) = run {
                w.next_run = meta.id + 1;
                runs.insert(meta.id, Arc::new(RunHandle::new(meta)));
            }
        }
        // The tombstoned records were not copied forward: the
        // tombstones are spent.
        lock_plain(&self.tombstones).retain(|_, t| !input_ids.contains(&t.run));
        for id in &input_ids {
            self.cache.purge_run(*id);
            let _ = fs::remove_file(sstable::run_path(&self.dir, *id));
        }
        report.segments_removed += inputs.len() as u64;
        report.bytes_reclaimed += input_bytes.saturating_sub(out_bytes);
        report.records_moved += records_moved;
        self.merges.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Build a run from sorted `moves`, write it through the fault
    /// machinery to a temp file, fsync, and rename into place. The run
    /// exists on disk but is NOT yet committed — the caller's manifest
    /// entry does that.
    fn install_run(
        &self,
        w: &mut Writer,
        level: u32,
        moves: &[(ContentKey, Vec<u8>)],
    ) -> Result<RunMeta, StoreError> {
        let id = w.next_run;
        let BuiltRun {
            bytes,
            records,
            min_key,
            max_key,
        } = sstable::build_run(moves, self.config.run_block_bytes, self.config.bloom_bits_per_key);
        let meta = RunMeta {
            id,
            level,
            records,
            bytes: bytes.len() as u64,
            min_key,
            max_key,
        };
        let final_path = sstable::run_path(&self.dir, id);
        let tmp = final_path.with_extension("sst.tmp");
        let file = self.write_new_file(w, &sstable::run_name(id), &tmp, &bytes)?;
        if self.config.sync {
            file.sync_all()
                .map_err(|e| StoreError::io("syncing new run", e))?;
        }
        drop(file);
        fs::rename(&tmp, &final_path).map_err(|e| StoreError::io("installing new run", e))?;
        if self.config.sync {
            // Make the rename itself durable where the platform needs it.
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        Ok(meta)
    }

    /// Rewrite the manifest to exactly the live state (temp file +
    /// fsync + atomic rename), shedding the full history. Runs first,
    /// so tombstones replay against known runs.
    pub(crate) fn checkpoint_locked(&self, w: &mut Writer) -> Result<(), StoreError> {
        // Everything the checkpoint references must be durable before
        // the rename makes the slimmer manifest authoritative.
        if self.config.sync {
            self.fsync_commit(w)?;
        }
        let mut entries: Vec<Entry> = Vec::new();
        {
            let runs = lock_plain(&self.runs);
            for h in runs.values() {
                entries.push(Entry::AddRun { meta: h.meta });
            }
        }
        for (key, location) in self.index.snapshot() {
            entries.push(Entry::Add { key, location });
        }
        {
            let tombs = lock_plain(&self.tombstones);
            let mut sorted: Vec<(&ContentKey, &Tombstone)> = tombs.iter().collect();
            sorted.sort_unstable_by_key(|(k, _)| **k);
            for (key, t) in sorted {
                entries.push(Entry::RemoveRun {
                    key: *key,
                    run: t.run,
                    len: t.len,
                });
            }
        }
        let buf = manifest::encode_all(&entries);
        let tmp = self.dir.join("manifest.tmp");
        let file = self.write_new_file(w, "manifest.tmp", &tmp, &buf)?;
        if self.config.sync {
            file.sync_all()
                .map_err(|e| StoreError::io("syncing manifest checkpoint", e))?;
        }
        drop(file);
        fs::rename(&tmp, manifest::manifest_path(&self.dir))
            .map_err(|e| StoreError::io("installing manifest checkpoint", e))?;
        if self.config.sync {
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        // The old append handle points at the unlinked file; reopen.
        w.manifest = fs::OpenOptions::new()
            .append(true)
            .open(manifest::manifest_path(&self.dir))
            .map_err(|e| StoreError::io("reopening manifest", e))?;
        w.manifest_dirty = false;
        if self.config.sync {
            self.gc.note_synced(self.gc.appended());
        }
        Ok(())
    }
}
