//! The on-disk record: one compressed sequence, self-describing and
//! self-checking.
//!
//! Layout (bytes):
//!
//! ```text
//! 0..2    magic  b"DR"
//! 2       record format version (1)
//! 3       algorithm tag (the framework's choice for this sequence)
//! 4..20   content key — 128-bit hash of the *original* sequence
//! 20..    uvarint: original length in bases
//! ..      uvarint: payload length in bytes
//! ..      payload (a serialised `CompressedBlob` container)
//! ..      u64 LE: FNV-1a of every preceding byte of the record
//! ```
//!
//! The trailing checksum covers header *and* payload, so `verify`/`scrub`
//! detect a flipped bit anywhere in the record without decompressing.
//! The payload is the same `DX` container the rest of the workspace
//! exchanges, which carries its own end-to-end checksum of the
//! *decompressed* sequence — two independent layers of integrity.

use crate::error::StoreError;
use dnacomp_algos::Algorithm;
use dnacomp_codec::checksum::{mix64, Fnv1a};
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;
use dnacomp_seq::PackedSeq;
use std::fmt;

/// Magic prefix of every record.
pub const RECORD_MAGIC: [u8; 2] = *b"DR";
/// Record format version.
pub const RECORD_VERSION: u8 = 1;

/// 128-bit content address of a sequence: two independently seeded
/// FNV-1a/SplitMix64 streams over the packed words plus the length.
/// Records are keyed — and deduplicated — by the *original* sequence,
/// so the same genome compressed by two different algorithms is still
/// one entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub [u8; 16]);

impl ContentKey {
    /// Derive the key for a sequence.
    pub fn of_sequence(seq: &PackedSeq) -> Self {
        let mut lo = Fnv1a::new();
        let mut hi = Fnv1a::with_seed(0x9E37_79B9_7F4A_7C15);
        for h in [&mut lo, &mut hi] {
            h.update(seq.as_words());
            h.update(&(seq.len() as u64).to_le_bytes());
        }
        let mut key = [0u8; 16];
        key[..8].copy_from_slice(&mix64(lo.digest()).to_le_bytes());
        key[8..].copy_from_slice(&mix64(hi.digest()).to_le_bytes());
        ContentKey(key)
    }

    /// Render as 32 lowercase hex digits (the CLI's key syntax).
    pub fn to_hex(self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parse the CLI's 32-hex-digit key syntax.
    pub fn from_hex(hex: &str) -> Option<Self> {
        let hex = hex.trim();
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut key = [0u8; 16];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let s = std::str::from_utf8(chunk).ok()?;
            key[i] = u8::from_str_radix(s, 16).ok()?;
        }
        Some(ContentKey(key))
    }

    /// Index-shard selector: low bits of the key.
    pub(crate) fn shard(&self, shards: usize) -> usize {
        self.0[0] as usize % shards
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// One store record, as written to a segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Content address of the original sequence.
    pub key: ContentKey,
    /// Algorithm the framework chose for this sequence.
    pub algorithm: Algorithm,
    /// Original sequence length in bases.
    pub original_len: u64,
    /// Serialised `DX` container bytes.
    pub payload: Vec<u8>,
}

impl Record {
    /// Serialise to the segment wire format (layout in the module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 40);
        out.extend_from_slice(&RECORD_MAGIC);
        out.push(RECORD_VERSION);
        out.push(self.algorithm.tag());
        out.extend_from_slice(&self.key.0);
        write_uvarint(&mut out, self.original_len);
        write_uvarint(&mut out, self.payload.len() as u64);
        out.extend_from_slice(&self.payload);
        let mut h = Fnv1a::new();
        h.update(&out);
        write_u64_le(&mut out, h.digest());
        out
    }

    /// Parse one record from the front of `bytes`, returning it and the
    /// number of bytes it occupied. Any structural damage or checksum
    /// mismatch is a typed error — a decoded record is bit-exact.
    pub fn decode(bytes: &[u8]) -> Result<(Record, usize), StoreError> {
        let corrupt = |what: &'static str| StoreError::Corrupt {
            what: "record",
            source: CodecError::Corrupt(what),
        };
        if bytes.len() < 20 {
            return Err(corrupt("record shorter than its fixed header"));
        }
        if bytes[0..2] != RECORD_MAGIC {
            return Err(corrupt("bad record magic"));
        }
        if bytes[2] != RECORD_VERSION {
            return Err(StoreError::Corrupt {
                what: "record",
                source: CodecError::UnknownFormat(bytes[2]),
            });
        }
        let algorithm = Algorithm::from_tag(bytes[3]).map_err(|source| StoreError::Corrupt {
            what: "record algorithm tag",
            source,
        })?;
        let mut key = [0u8; 16];
        key.copy_from_slice(&bytes[4..20]);
        let mut pos = 20;
        let original_len =
            read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
                what: "record length field",
                source,
            })?;
        let payload_len =
            read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
                what: "record payload-length field",
                source,
            })? as usize;
        let payload_end = pos
            .checked_add(payload_len)
            .filter(|&end| end + 8 <= bytes.len())
            .ok_or_else(|| corrupt("record payload runs past the segment"))?;
        let payload = bytes[pos..payload_end].to_vec();
        let mut h = Fnv1a::new();
        h.update(&bytes[..payload_end]);
        let mut cpos = payload_end;
        let stored = read_u64_le(bytes, &mut cpos).map_err(|source| StoreError::Corrupt {
            what: "record checksum field",
            source,
        })?;
        if stored != h.digest() {
            return Err(StoreError::Corrupt {
                what: "record",
                source: CodecError::ChecksumMismatch {
                    expected: stored,
                    actual: h.digest(),
                },
            });
        }
        Ok((
            Record {
                key: ContentKey(key),
                algorithm,
                original_len,
                payload,
            },
            cpos,
        ))
    }

    /// Encoded size in bytes without materialising the encoding.
    pub fn encoded_len(&self) -> usize {
        let mut n = 20 + self.payload.len() + 8;
        n += uvarint_len(self.original_len);
        n += uvarint_len(self.payload.len() as u64);
        n
    }
}

fn uvarint_len(v: u64) -> usize {
    (1 + (64 - (v | 1).leading_zeros() as usize - 1) / 7).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(payload: Vec<u8>) -> Record {
        Record {
            key: ContentKey([7u8; 16]),
            algorithm: Algorithm::Dnax,
            original_len: payload.len() as u64 * 4,
            payload,
        }
    }

    #[test]
    fn key_hex_roundtrip() {
        let seq = PackedSeq::from_ascii(b"ACGTACGT").unwrap();
        let key = ContentKey::of_sequence(&seq);
        assert_eq!(ContentKey::from_hex(&key.to_hex()), Some(key));
        assert_eq!(ContentKey::from_hex("zz"), None);
        assert_eq!(ContentKey::from_hex(&"a".repeat(31)), None);
        // Keys separate by content and by length (A vs AA share words).
        let other = PackedSeq::from_ascii(b"ACGTACGA").unwrap();
        assert_ne!(key, ContentKey::of_sequence(&other));
        let a = PackedSeq::from_ascii(b"A").unwrap();
        let aa = PackedSeq::from_ascii(b"AA").unwrap();
        assert_ne!(ContentKey::of_sequence(&a), ContentKey::of_sequence(&aa));
    }

    #[test]
    fn decode_rejects_every_flipped_byte() {
        let rec = sample(b"payload!".to_vec());
        let good = rec.encode();
        assert_eq!(good.len(), rec.encoded_len());
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            assert!(
                Record::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn decode_reports_consumed_length_with_trailing_data() {
        let rec = sample(vec![1, 2, 3]);
        let mut bytes = rec.encode();
        let n = bytes.len();
        bytes.extend_from_slice(b"next record starts here");
        let (back, used) = Record::decode(&bytes).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, n);
    }

    #[test]
    fn truncations_are_detected() {
        let bytes = sample(vec![9; 100]).encode();
        for cut in 0..bytes.len() {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite requirement: encode/decode roundtrip over arbitrary
        // payloads including the empty one (a zero-length sequence
        // compresses to a header-only container, so empty-ish payloads
        // are a real code path, not a degenerate case).
        #[test]
        fn record_roundtrips(
            payload in proptest::collection::vec(any::<u8>(), 0..600),
            key_lo in any::<u64>(),
            key_hi in any::<u64>(),
            original_len in any::<u64>(),
            alg_i in 0usize..Algorithm::ALL.len(),
        ) {
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&key_lo.to_le_bytes());
            key[8..].copy_from_slice(&key_hi.to_le_bytes());
            let rec = Record {
                key: ContentKey(key),
                algorithm: Algorithm::ALL[alg_i],
                original_len,
                payload,
            };
            let bytes = rec.encode();
            prop_assert_eq!(bytes.len(), rec.encoded_len());
            let (back, used) = Record::decode(&bytes).unwrap();
            prop_assert_eq!(used, bytes.len());
            prop_assert_eq!(back, rec);
        }

        #[test]
        fn content_keys_collide_only_on_equal_content(s1 in "[ACGT]{0,60}", s2 in "[ACGT]{0,60}") {
            let a = PackedSeq::from_ascii(s1.as_bytes()).unwrap();
            let b = PackedSeq::from_ascii(s2.as_bytes()).unwrap();
            let ka = ContentKey::of_sequence(&a);
            let kb = ContentKey::of_sequence(&b);
            if s1 == s2 {
                prop_assert_eq!(ka, kb);
            } else {
                prop_assert_ne!(ka, kb);
            }
        }
    }
}
