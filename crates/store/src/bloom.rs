//! Per-run bloom filter keyed on the 128-bit [`ContentKey`].
//!
//! A sorted run answers "is this key definitely absent?" from memory so
//! negative gets touch zero disk. The filter uses classic double
//! hashing: the content key is already two independently mixed 64-bit
//! halves, so probe `i` is `h1 + i·h2 (mod m)` with `h1` the low half
//! and `h2` the high half forced odd — no extra hashing on the lookup
//! path.
//!
//! Wire format (the bloom block of a run file):
//!
//! ```text
//! 0..2   magic b"BF"
//! 2      version (1)
//! 3..    uvarint: filter size in bits
//! ..     u8: probes per key (k)
//! ..     uvarint: keys inserted
//! ..     bit words, u64 LE each (ceil(bits / 64) words)
//! ..     u64 LE: FNV-1a of every preceding byte
//! ```
//!
//! Decode checks the declared size against a hard cap *and* against the
//! bytes actually present before allocating anything — a forged header
//! cannot make the decoder reserve memory it was never handed.

use crate::error::StoreError;
use crate::record::ContentKey;
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use dnacomp_codec::CodecError;

/// Magic prefix of an encoded bloom filter.
pub const BLOOM_MAGIC: [u8; 2] = *b"BF";
/// Bloom block format version.
pub const BLOOM_VERSION: u8 = 1;
/// Hard cap on the declared filter size: 2^32 bits = 512 MiB, far past
/// any run this store writes, and small enough that the affordability
/// arithmetic below cannot overflow.
pub const MAX_BLOOM_BITS: u64 = 1 << 32;

fn corrupt(what: &'static str) -> StoreError {
    StoreError::Corrupt {
        what: "bloom filter",
        source: CodecError::Corrupt(what),
    }
}

/// A bloom filter over content keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bloom {
    words: Vec<u64>,
    bits: u64,
    probes: u8,
    count: u64,
}

impl Bloom {
    /// A filter sized for `keys` entries at `bits_per_key` bits each
    /// (`k` probes derived as `bits_per_key · ln 2`, the optimum).
    pub fn sized_for(keys: usize, bits_per_key: u32) -> Bloom {
        let bits = ((keys as u64).saturating_mul(bits_per_key as u64))
            .clamp(64, MAX_BLOOM_BITS);
        let probes = ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u8).clamp(1, 30);
        Bloom {
            words: vec![0u64; bits.div_ceil(64) as usize],
            bits,
            probes,
            count: 0,
        }
    }

    fn halves(key: &ContentKey) -> (u64, u64) {
        let h1 = u64::from_le_bytes(key.0[..8].try_into().expect("8-byte half"));
        let h2 = u64::from_le_bytes(key.0[8..].try_into().expect("8-byte half")) | 1;
        (h1, h2)
    }

    /// Mark `key` present.
    pub fn insert(&mut self, key: &ContentKey) {
        let (h1, h2) = Bloom::halves(key);
        for i in 0..self.probes as u64 {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.bits;
            self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.count += 1;
    }

    /// `false` means definitely absent; `true` means probably present.
    pub fn contains(&self, key: &ContentKey) -> bool {
        let (h1, h2) = Bloom::halves(key);
        (0..self.probes as u64).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.bits;
            self.words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Keys inserted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Filter size in bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Probes per key.
    pub fn probes(&self) -> u8 {
        self.probes
    }

    /// Expected false-positive rate at the current fill:
    /// `(1 - e^(-k·n/m))^k`.
    pub fn fp_rate_estimate(&self) -> f64 {
        let k = self.probes as f64;
        let load = k * self.count as f64 / self.bits as f64;
        (1.0 - (-load).exp()).powf(k)
    }

    /// Serialise to the bloom-block wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8 + 24);
        out.extend_from_slice(&BLOOM_MAGIC);
        out.push(BLOOM_VERSION);
        write_uvarint(&mut out, self.bits);
        out.push(self.probes);
        write_uvarint(&mut out, self.count);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        let mut h = Fnv1a::new();
        h.update(&out);
        write_u64_le(&mut out, h.digest());
        out
    }

    /// Parse one filter from the front of `bytes`, returning it and the
    /// bytes consumed. Structural damage, a lying size field, or a
    /// checksum mismatch is a typed error — never a panic, never an
    /// allocation the input bytes cannot pay for.
    pub fn decode(bytes: &[u8]) -> Result<(Bloom, usize), StoreError> {
        if bytes.len() < 4 {
            return Err(corrupt("bloom block shorter than its fixed header"));
        }
        if bytes[0..2] != BLOOM_MAGIC {
            return Err(corrupt("bad bloom magic"));
        }
        if bytes[2] != BLOOM_VERSION {
            return Err(StoreError::Corrupt {
                what: "bloom filter",
                source: CodecError::UnknownFormat(bytes[2]),
            });
        }
        let mut pos = 3;
        let bits = read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
            what: "bloom size field",
            source,
        })?;
        if bits == 0 || bits > MAX_BLOOM_BITS {
            return Err(corrupt("bloom size outside the affordable range"));
        }
        let probes = *bytes.get(pos).ok_or_else(|| corrupt("bloom probes field"))?;
        pos += 1;
        if probes == 0 || probes > 30 {
            return Err(corrupt("bloom probe count outside the affordable range"));
        }
        let count = read_uvarint(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
            what: "bloom count field",
            source,
        })?;
        // Affordability: the declared size must be fully present in the
        // input before a single word is allocated.
        let word_bytes = (bits.div_ceil(64) as usize)
            .checked_mul(8)
            .ok_or_else(|| corrupt("bloom size overflows"))?;
        let body = bytes
            .get(pos..pos + word_bytes)
            .ok_or_else(|| corrupt("bloom body runs past the block"))?;
        let words: Vec<u64> = body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        pos += word_bytes;
        let mut h = Fnv1a::new();
        h.update(&bytes[..pos]);
        let stored = read_u64_le(bytes, &mut pos).map_err(|source| StoreError::Corrupt {
            what: "bloom checksum field",
            source,
        })?;
        if stored != h.digest() {
            return Err(StoreError::Corrupt {
                what: "bloom filter",
                source: CodecError::ChecksumMismatch {
                    expected: stored,
                    actual: h.digest(),
                },
            });
        }
        Ok((
            Bloom {
                words,
                bits,
                probes,
                count,
            },
            pos,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_codec::checksum::mix64;
    use proptest::prelude::*;

    fn key(n: u64) -> ContentKey {
        let mut k = [0u8; 16];
        k[..8].copy_from_slice(&mix64(n).to_le_bytes());
        k[8..].copy_from_slice(&mix64(n ^ 0xDEAD_BEEF).to_le_bytes());
        ContentKey(k)
    }

    #[test]
    fn no_false_negatives_and_roundtrip() {
        let mut b = Bloom::sized_for(500, 10);
        for n in 0..500 {
            b.insert(&key(n));
        }
        for n in 0..500 {
            assert!(b.contains(&key(n)), "inserted key {n} must test present");
        }
        let bytes = b.encode();
        let (back, used) = Bloom::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, b);
    }

    #[test]
    fn decode_rejects_every_flipped_byte() {
        let mut b = Bloom::sized_for(32, 10);
        for n in 0..32 {
            b.insert(&key(n));
        }
        let good = b.encode();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            assert!(Bloom::decode(&bad).is_err(), "flip at byte {i} undetected");
        }
        for cut in 0..good.len() {
            assert!(Bloom::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn forged_size_is_refused_before_allocation() {
        // A header declaring 2^31 bits backed by a 40-byte buffer must
        // fail on affordability, not try to allocate 256 MiB.
        let mut forged = Vec::new();
        forged.extend_from_slice(&BLOOM_MAGIC);
        forged.push(BLOOM_VERSION);
        dnacomp_codec::varint::write_uvarint(&mut forged, 1u64 << 31);
        forged.push(7);
        dnacomp_codec::varint::write_uvarint(&mut forged, 100);
        forged.resize(40, 0xAB);
        assert!(matches!(
            Bloom::decode(&forged),
            Err(StoreError::Corrupt { .. })
        ));
        // Same for a size past the hard cap even with "enough" bytes.
        let mut over = Vec::new();
        over.extend_from_slice(&BLOOM_MAGIC);
        over.push(BLOOM_VERSION);
        dnacomp_codec::varint::write_uvarint(&mut over, MAX_BLOOM_BITS + 1);
        over.push(7);
        assert!(Bloom::decode(&over).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Satellite requirement: the false-positive rate stays under the
        // configured bound. 10 bits/key targets ~1 % theoretical FPR;
        // assert < 3 % measured to leave room for hash variance.
        #[test]
        fn fp_rate_stays_under_bound(seed in any::<u64>(), n in 200usize..1200) {
            let mut b = Bloom::sized_for(n, 10);
            for i in 0..n as u64 {
                b.insert(&key(seed ^ mix64(i)));
            }
            let trials = 4000u64;
            let mut fp = 0u64;
            for i in 0..trials {
                // Disjoint key space from the inserted set.
                if b.contains(&key(!(seed ^ mix64(i)) ^ 0x5555_5555)) {
                    fp += 1;
                }
            }
            let rate = fp as f64 / trials as f64;
            prop_assert!(rate < 0.03, "measured FPR {rate} at n={n}");
            prop_assert!(b.fp_rate_estimate() < 0.02);
        }
    }
}
