//! The write-ahead manifest: the store's single source of truth.
//!
//! Every mutation appends one checksummed entry to `manifest.log`; a
//! record (or removal, or segment drop) is **committed** exactly when
//! its manifest entry is fully durable. Entry wire format:
//!
//! ```text
//! u8      kind (1 = Add, 2 = Remove, 3 = DropSegment)
//! ...     kind-specific fields (below)
//! u64 LE  FNV-1a of every preceding byte of the entry
//!
//! Add:         key 16B · uvarint segment · uvarint offset · uvarint len
//!              · u8 algorithm tag · uvarint original_len
//! Remove:      key 16B
//! DropSegment: uvarint segment
//! ```
//!
//! Replay parses entries front to back and stops at the first one that
//! is structurally invalid or fails its checksum — the standard WAL
//! torn-tail rule. Whatever parsed before that point is the committed
//! state; the caller truncates the log (and the active segment) back to
//! it. Compaction rewrites the log via temp-file + atomic rename
//! ([`checkpoint`]), so a crash mid-checkpoint leaves the old log
//! intact.

use crate::error::StoreError;
use crate::record::ContentKey;
use dnacomp_algos::Algorithm;
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use std::fs;
use std::path::{Path, PathBuf};

/// File name of the manifest log inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.log";

/// Where a committed record lives on disk, plus the header fields
/// `stat` can answer without touching the segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Location {
    /// Segment the record was appended to.
    pub segment: u64,
    /// Byte offset of the record within the segment.
    pub offset: u64,
    /// Encoded record length in bytes.
    pub len: u64,
    /// Algorithm recorded for the payload.
    pub algorithm: Algorithm,
    /// Original sequence length in bases.
    pub original_len: u64,
}

/// One manifest entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A record became durable at `location`.
    Add {
        /// Content key of the record.
        key: ContentKey,
        /// Where its bytes live.
        location: Location,
    },
    /// The record with `key` was logically deleted (bytes reclaimed by
    /// a later compaction).
    Remove {
        /// Content key of the removed record.
        key: ContentKey,
    },
    /// Compaction finished moving every live record out of `segment`;
    /// its file is garbage from this entry on.
    DropSegment {
        /// The retired segment.
        segment: u64,
    },
}

impl Entry {
    /// Serialise to the log wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Entry::Add { key, location } => {
                out.push(1);
                out.extend_from_slice(&key.0);
                write_uvarint(&mut out, location.segment);
                write_uvarint(&mut out, location.offset);
                write_uvarint(&mut out, location.len);
                out.push(location.algorithm.tag());
                write_uvarint(&mut out, location.original_len);
            }
            Entry::Remove { key } => {
                out.push(2);
                out.extend_from_slice(&key.0);
            }
            Entry::DropSegment { segment } => {
                out.push(3);
                write_uvarint(&mut out, *segment);
            }
        }
        let mut h = Fnv1a::new();
        h.update(&out);
        write_u64_le(&mut out, h.digest());
        out
    }

    /// Parse one entry from the front of `bytes`; `None` if the bytes
    /// do not form a complete, checksum-valid entry (the torn-tail
    /// signal for replay — never an error).
    fn decode(bytes: &[u8]) -> Option<(Entry, usize)> {
        let mut pos = 1;
        let entry = match *bytes.first()? {
            1 => {
                let key = take_key(bytes, &mut pos)?;
                let segment = read_uvarint(bytes, &mut pos).ok()?;
                let offset = read_uvarint(bytes, &mut pos).ok()?;
                let len = read_uvarint(bytes, &mut pos).ok()?;
                let algorithm = Algorithm::from_tag(*bytes.get(pos)?).ok()?;
                pos += 1;
                let original_len = read_uvarint(bytes, &mut pos).ok()?;
                Entry::Add {
                    key,
                    location: Location {
                        segment,
                        offset,
                        len,
                        algorithm,
                        original_len,
                    },
                }
            }
            2 => Entry::Remove {
                key: take_key(bytes, &mut pos)?,
            },
            3 => Entry::DropSegment {
                segment: read_uvarint(bytes, &mut pos).ok()?,
            },
            _ => return None,
        };
        let mut h = Fnv1a::new();
        h.update(&bytes[..pos]);
        let stored = read_u64_le(bytes, &mut pos).ok()?;
        (stored == h.digest()).then_some((entry, pos))
    }
}

fn take_key(bytes: &[u8], pos: &mut usize) -> Option<ContentKey> {
    let slice = bytes.get(*pos..*pos + 16)?;
    *pos += 16;
    let mut key = [0u8; 16];
    key.copy_from_slice(slice);
    Some(ContentKey(key))
}

/// Outcome of replaying a manifest log.
#[derive(Debug, Default)]
pub struct Replay {
    /// Every committed entry, log order.
    pub entries: Vec<Entry>,
    /// Byte length of the valid prefix (the commit frontier).
    pub valid_len: u64,
    /// Bytes past the frontier that were discarded — the torn tail of
    /// an interrupted append (zero on a clean shutdown).
    pub discarded: u64,
}

/// Path of the manifest log under a store directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// Replay `dir`'s manifest. A missing log is an empty store, not an
/// error.
pub fn replay(dir: &Path) -> Result<Replay, StoreError> {
    let bytes = match fs::read(manifest_path(dir)) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(StoreError::io("reading manifest", e)),
    };
    let mut replay = Replay::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match Entry::decode(&bytes[pos..]) {
            Some((entry, used)) => {
                replay.entries.push(entry);
                pos += used;
            }
            None => break,
        }
    }
    replay.valid_len = pos as u64;
    replay.discarded = (bytes.len() - pos) as u64;
    Ok(replay)
}

/// Atomically replace the manifest with exactly `entries` (compaction's
/// dead-entry shedding): write `manifest.tmp`, fsync, rename over the
/// log. A crash before the rename leaves the old log untouched; after
/// it, the new one is complete.
pub fn checkpoint(dir: &Path, entries: &[Entry]) -> Result<(), StoreError> {
    let tmp = dir.join("manifest.tmp");
    let mut buf = Vec::new();
    for e in entries {
        buf.extend_from_slice(&e.encode());
    }
    fs::write(&tmp, &buf).map_err(|e| StoreError::io("writing manifest checkpoint", e))?;
    let f = fs::File::open(&tmp).map_err(|e| StoreError::io("opening manifest checkpoint", e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("syncing manifest checkpoint", e))?;
    fs::rename(&tmp, manifest_path(dir))
        .map_err(|e| StoreError::io("installing manifest checkpoint", e))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all(); // directory fsync is best-effort across platforms
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(n: u8) -> Entry {
        Entry::Add {
            key: ContentKey([n; 16]),
            location: Location {
                segment: n as u64,
                offset: 100 * n as u64,
                len: 40,
                algorithm: Algorithm::Ctw,
                original_len: 1 << n,
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnacomp-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_roundtrip() {
        for e in [add(3), Entry::Remove { key: ContentKey([9; 16]) }, Entry::DropSegment { segment: 77 }] {
            let bytes = e.encode();
            let (back, used) = Entry::decode(&bytes).unwrap();
            assert_eq!(back, e);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let dir = tmp_dir("torn");
        let mut log = Vec::new();
        log.extend_from_slice(&add(1).encode());
        log.extend_from_slice(&add(2).encode());
        let full = log.len();
        // Tear the third entry at every possible byte boundary: the two
        // committed entries must always replay; the torn one never.
        let third = add(3).encode();
        for cut in 0..third.len() {
            let mut torn = log.clone();
            torn.extend_from_slice(&third[..cut]);
            fs::write(manifest_path(&dir), &torn).unwrap();
            let r = replay(&dir).unwrap();
            assert_eq!(r.entries, vec![add(1), add(2)], "cut {cut}");
            assert_eq!(r.valid_len, full as u64);
            assert_eq!(r.discarded, cut as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_empty_store() {
        let dir = tmp_dir("missing");
        let r = replay(&dir).unwrap();
        assert!(r.entries.is_empty());
        assert_eq!(r.valid_len, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_replaces_atomically() {
        let dir = tmp_dir("ckpt");
        fs::write(manifest_path(&dir), add(1).encode()).unwrap();
        checkpoint(&dir, &[add(5), Entry::DropSegment { segment: 1 }]).unwrap();
        let r = replay(&dir).unwrap();
        assert_eq!(r.entries, vec![add(5), Entry::DropSegment { segment: 1 }]);
        assert!(!dir.join("manifest.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_ends_replay_there() {
        let dir = tmp_dir("flip");
        let mut log = Vec::new();
        log.extend_from_slice(&add(1).encode());
        let first = log.len();
        log.extend_from_slice(&add(2).encode());
        log[first + 5] ^= 0x01; // damage the second entry
        fs::write(manifest_path(&dir), &log).unwrap();
        let r = replay(&dir).unwrap();
        assert_eq!(r.entries, vec![add(1)]);
        assert!(r.discarded > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
