//! The write-ahead manifest: the store's single source of truth.
//!
//! Every mutation appends one checksummed entry to `manifest.log`; a
//! record (or removal, or a whole level transition) is **committed**
//! exactly when its manifest entry is fully durable. Entry wire format:
//!
//! ```text
//! u8      kind (table below)
//! ...     kind-specific fields
//! u64 LE  FNV-1a of every preceding byte of the entry
//!
//! 1 Add:         key 16B · uvarint segment · uvarint offset · uvarint len
//!                · u8 algorithm tag · uvarint original_len
//! 2 Remove:      key 16B                            (an L0-resident key)
//! 3 DropSegment: uvarint segment
//! 4 AddRun:      run meta                           (checkpoint form)
//! 5 DropRun:     uvarint run
//! 6 Seal:        u8 has-run · [run meta] · uvarint n · n × uvarint segment
//! 7 Merge:       u8 has-run · [run meta] · uvarint n · n × uvarint run
//! 8 RemoveRun:   key 16B · uvarint run · uvarint record len
//! 9 Revive:      key 16B · uvarint run
//!
//! run meta: uvarint id · uvarint level · uvarint records · uvarint bytes
//!           · min_key 16B · max_key 16B
//! ```
//!
//! `Seal` and `Merge` are the engine's *atomic* level transitions: one
//! entry simultaneously introduces a new sorted run and retires every
//! source file, so replay can never see the same key accounted twice.
//! Their drop lists are capped at [`MAX_DROP_LIST`] ids (compaction
//! chunks larger batches), which bounds every entry under
//! [`MAX_ENTRY_BYTES`] — the decoder's affordability ceiling and the
//! replay buffer's lookahead.
//!
//! Replay parses entries front to back and stops at the first one that
//! is structurally invalid or fails its checksum — the standard WAL
//! torn-tail rule. Whatever parsed before that point is the committed
//! state; the caller truncates the log (and the active segment) back to
//! it. The log is *streamed* through a fixed-size buffer and folded
//! into the caller's visitor, so replaying a long history costs O(1)
//! memory, not O(history). Compaction rewrites the log via temp-file +
//! atomic rename ([`checkpoint`]), so a crash mid-checkpoint leaves the
//! old log intact.

use crate::error::StoreError;
use crate::record::ContentKey;
use crate::sstable::RunMeta;
use dnacomp_algos::Algorithm;
use dnacomp_codec::checksum::Fnv1a;
use dnacomp_codec::varint::{read_u64_le, read_uvarint, write_u64_le, write_uvarint};
use std::fs::{self, File};
use std::io::BufRead;
use std::path::{Path, PathBuf};

/// File name of the manifest log inside a store directory.
pub const MANIFEST_NAME: &str = "manifest.log";

/// Most file ids one `Seal`/`Merge` entry may retire. Compaction
/// chunks anything larger; the decoder refuses anything above this
/// before allocating.
pub const MAX_DROP_LIST: usize = 1024;

/// Upper bound on any legitimate encoded entry (a full drop list plus
/// meta and checksum is ~10 KiB; 32 KiB leaves generous margin). The
/// streaming replayer keeps this much lookahead, so "undecodable with
/// this lookahead" and "undecodable, full stop" coincide and the
/// torn-tail rule is bit-identical to whole-file parsing.
pub const MAX_ENTRY_BYTES: usize = 32 << 10;

/// Where a committed record lives on disk, plus the header fields
/// `stat` can answer without touching the segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Location {
    /// Segment the record was appended to.
    pub segment: u64,
    /// Byte offset of the record within the segment.
    pub offset: u64,
    /// Encoded record length in bytes.
    pub len: u64,
    /// Algorithm recorded for the payload.
    pub algorithm: Algorithm,
    /// Original sequence length in bases.
    pub original_len: u64,
}

/// One manifest entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Entry {
    /// A record became durable at `location` (level 0).
    Add {
        /// Content key of the record.
        key: ContentKey,
        /// Where its bytes live.
        location: Location,
    },
    /// The L0-resident record with `key` was logically deleted.
    Remove {
        /// Content key of the removed record.
        key: ContentKey,
    },
    /// Compaction finished moving every live record out of `segment`;
    /// its file is garbage from this entry on.
    DropSegment {
        /// The retired segment.
        segment: u64,
    },
    /// A sorted run exists (checkpoint form of the engine state).
    AddRun {
        /// The run's description.
        meta: RunMeta,
    },
    /// The run's file is garbage from this entry on.
    DropRun {
        /// The retired run.
        run: u64,
    },
    /// Atomic L0 flush: the live records of `segments` now live in
    /// `run` (already durable under its final name), and those segment
    /// files are garbage. `run` is `None` when every victim record was
    /// dead — a pure drop.
    Seal {
        /// The freshly written level-1 run, if any record survived.
        run: Option<RunMeta>,
        /// The retired L0 segments.
        segments: Vec<u64>,
    },
    /// Atomic level merge: the live records of `runs` now live in
    /// `run`; the input run files are garbage. `None` output means
    /// every input record was tombstoned.
    Merge {
        /// The merged output run, if any record survived.
        run: Option<RunMeta>,
        /// The retired input runs.
        runs: Vec<u64>,
    },
    /// The run-resident record with `key` was logically deleted
    /// (tombstone; the bytes die at the next merge of `run`).
    RemoveRun {
        /// Content key of the removed record.
        key: ContentKey,
        /// Run still physically holding the record.
        run: u64,
        /// Encoded record length (exact dead-byte accounting).
        len: u64,
    },
    /// A tombstoned key was re-put. Content addressing makes the bytes
    /// already in `run` identical to the new payload, so reviving the
    /// tombstone *is* the write.
    Revive {
        /// The revived key.
        key: ContentKey,
        /// Run holding the (again live) record.
        run: u64,
    },
}

impl Entry {
    /// Serialise to the log wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        match self {
            Entry::Add { key, location } => {
                out.push(1);
                out.extend_from_slice(&key.0);
                write_uvarint(&mut out, location.segment);
                write_uvarint(&mut out, location.offset);
                write_uvarint(&mut out, location.len);
                out.push(location.algorithm.tag());
                write_uvarint(&mut out, location.original_len);
            }
            Entry::Remove { key } => {
                out.push(2);
                out.extend_from_slice(&key.0);
            }
            Entry::DropSegment { segment } => {
                out.push(3);
                write_uvarint(&mut out, *segment);
            }
            Entry::AddRun { meta } => {
                out.push(4);
                meta.encode_into(&mut out);
            }
            Entry::DropRun { run } => {
                out.push(5);
                write_uvarint(&mut out, *run);
            }
            Entry::Seal { run, segments } => {
                out.push(6);
                encode_transition(&mut out, run, segments);
            }
            Entry::Merge { run, runs } => {
                out.push(7);
                encode_transition(&mut out, run, runs);
            }
            Entry::RemoveRun { key, run, len } => {
                out.push(8);
                out.extend_from_slice(&key.0);
                write_uvarint(&mut out, *run);
                write_uvarint(&mut out, *len);
            }
            Entry::Revive { key, run } => {
                out.push(9);
                out.extend_from_slice(&key.0);
                write_uvarint(&mut out, *run);
            }
        }
        let mut h = Fnv1a::new();
        h.update(&out);
        write_u64_le(&mut out, h.digest());
        out
    }

    /// Parse one entry from the front of `bytes`; `None` if the bytes
    /// do not form a complete, checksum-valid entry (the torn-tail
    /// signal for replay — never an error, never a panic, and never an
    /// allocation the bytes cannot pay for).
    pub fn decode(bytes: &[u8]) -> Option<(Entry, usize)> {
        let mut pos = 1;
        let entry = match *bytes.first()? {
            1 => {
                let key = take_key(bytes, &mut pos)?;
                let segment = read_uvarint(bytes, &mut pos).ok()?;
                let offset = read_uvarint(bytes, &mut pos).ok()?;
                let len = read_uvarint(bytes, &mut pos).ok()?;
                let algorithm = Algorithm::from_tag(*bytes.get(pos)?).ok()?;
                pos += 1;
                let original_len = read_uvarint(bytes, &mut pos).ok()?;
                Entry::Add {
                    key,
                    location: Location {
                        segment,
                        offset,
                        len,
                        algorithm,
                        original_len,
                    },
                }
            }
            2 => Entry::Remove {
                key: take_key(bytes, &mut pos)?,
            },
            3 => Entry::DropSegment {
                segment: read_uvarint(bytes, &mut pos).ok()?,
            },
            4 => Entry::AddRun {
                meta: RunMeta::decode(bytes, &mut pos)?,
            },
            5 => Entry::DropRun {
                run: read_uvarint(bytes, &mut pos).ok()?,
            },
            6 => {
                let (run, segments) = decode_transition(bytes, &mut pos)?;
                Entry::Seal { run, segments }
            }
            7 => {
                let (run, runs) = decode_transition(bytes, &mut pos)?;
                Entry::Merge { run, runs }
            }
            8 => {
                let key = take_key(bytes, &mut pos)?;
                let run = read_uvarint(bytes, &mut pos).ok()?;
                let len = read_uvarint(bytes, &mut pos).ok()?;
                Entry::RemoveRun { key, run, len }
            }
            9 => {
                let key = take_key(bytes, &mut pos)?;
                let run = read_uvarint(bytes, &mut pos).ok()?;
                Entry::Revive { key, run }
            }
            _ => return None,
        };
        let mut h = Fnv1a::new();
        h.update(&bytes[..pos]);
        let stored = read_u64_le(bytes, &mut pos).ok()?;
        (stored == h.digest()).then_some((entry, pos))
    }
}

fn encode_transition(out: &mut Vec<u8>, run: &Option<RunMeta>, dropped: &[u64]) {
    assert!(
        dropped.len() <= MAX_DROP_LIST,
        "compaction must chunk drop lists at {MAX_DROP_LIST}"
    );
    match run {
        Some(meta) => {
            out.push(1);
            meta.encode_into(out);
        }
        None => out.push(0),
    }
    write_uvarint(out, dropped.len() as u64);
    for id in dropped {
        write_uvarint(out, *id);
    }
}

fn decode_transition(bytes: &[u8], pos: &mut usize) -> Option<(Option<RunMeta>, Vec<u64>)> {
    let run = match *bytes.get(*pos)? {
        0 => {
            *pos += 1;
            None
        }
        1 => {
            *pos += 1;
            Some(RunMeta::decode(bytes, pos)?)
        }
        _ => return None,
    };
    let count = read_uvarint(bytes, pos).ok()? as usize;
    // Affordability: the cap bounds the allocation, and each id is at
    // least one byte, so the count must also fit the bytes present.
    if count > MAX_DROP_LIST || count > bytes.len().saturating_sub(*pos) {
        return None;
    }
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        ids.push(read_uvarint(bytes, pos).ok()?);
    }
    Some((run, ids))
}

fn take_key(bytes: &[u8], pos: &mut usize) -> Option<ContentKey> {
    let slice = bytes.get(*pos..*pos + 16)?;
    *pos += 16;
    let mut key = [0u8; 16];
    key.copy_from_slice(slice);
    Some(ContentKey(key))
}

/// Accounting from replaying a manifest log (the entries themselves
/// stream through the caller's visitor).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Committed entries seen.
    pub entries: u64,
    /// Byte length of the valid prefix (the commit frontier).
    pub valid_len: u64,
    /// Bytes past the frontier that were discarded — the torn tail of
    /// an interrupted append (zero on a clean shutdown).
    pub discarded: u64,
}

/// Path of the manifest log under a store directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_NAME)
}

/// Replay `dir`'s manifest, streaming each committed entry into `sink`
/// in log order. A missing log is an empty store, not an error. Memory
/// stays O([`MAX_ENTRY_BYTES`]) however long the history: the log is
/// read through a buffered reader and the parse buffer is drained as
/// entries complete.
pub fn replay(dir: &Path, mut sink: impl FnMut(Entry)) -> Result<ReplayStats, StoreError> {
    let file = match File::open(manifest_path(dir)) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ReplayStats::default()),
        Err(e) => return Err(StoreError::io("opening manifest", e)),
    };
    let file_len = file
        .metadata()
        .map_err(|e| StoreError::io("statting manifest", e))?
        .len();
    let mut reader = std::io::BufReader::with_capacity(64 << 10, file);
    let mut buf: Vec<u8> = Vec::new();
    let mut start = 0usize;
    let mut eof = false;
    let mut stats = ReplayStats::default();
    loop {
        // Keep MAX_ENTRY_BYTES of lookahead (or to EOF): any entry that
        // cannot decode with that much runway cannot decode at all.
        while !eof && buf.len() - start < MAX_ENTRY_BYTES {
            let chunk = reader
                .fill_buf()
                .map_err(|e| StoreError::io("reading manifest", e))?;
            if chunk.is_empty() {
                eof = true;
                break;
            }
            let n = chunk.len();
            buf.extend_from_slice(chunk);
            reader.consume(n);
        }
        if start >= buf.len() {
            break; // clean end of log
        }
        match Entry::decode(&buf[start..]) {
            Some((entry, used)) => {
                stats.entries += 1;
                stats.valid_len += used as u64;
                start += used;
                sink(entry);
                if start >= MAX_ENTRY_BYTES {
                    buf.drain(..start);
                    start = 0;
                }
            }
            None => break, // torn tail (or damage): the frontier is here
        }
    }
    stats.discarded = file_len - stats.valid_len;
    Ok(stats)
}

/// [`replay`] with the entries collected into a `Vec` — for tests and
/// tooling; the store itself folds entries as they stream.
pub fn replay_collect(dir: &Path) -> Result<(Vec<Entry>, ReplayStats), StoreError> {
    let mut entries = Vec::new();
    let stats = replay(dir, |e| entries.push(e))?;
    Ok((entries, stats))
}

/// Concatenated wire encoding of `entries` (a checkpoint image).
pub fn encode_all(entries: &[Entry]) -> Vec<u8> {
    let mut buf = Vec::new();
    for e in entries {
        buf.extend_from_slice(&e.encode());
    }
    buf
}

/// Atomically replace the manifest with exactly `entries` (compaction's
/// dead-entry shedding): write `manifest.tmp`, fsync, rename over the
/// log. A crash before the rename leaves the old log untouched; after
/// it, the new one is complete.
pub fn checkpoint(dir: &Path, entries: &[Entry]) -> Result<(), StoreError> {
    let tmp = dir.join("manifest.tmp");
    let buf = encode_all(entries);
    fs::write(&tmp, &buf).map_err(|e| StoreError::io("writing manifest checkpoint", e))?;
    let f = fs::File::open(&tmp).map_err(|e| StoreError::io("opening manifest checkpoint", e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("syncing manifest checkpoint", e))?;
    fs::rename(&tmp, manifest_path(dir))
        .map_err(|e| StoreError::io("installing manifest checkpoint", e))?;
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all(); // directory fsync is best-effort across platforms
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(n: u8) -> Entry {
        Entry::Add {
            key: ContentKey([n; 16]),
            location: Location {
                segment: n as u64,
                offset: 100 * n as u64,
                len: 40,
                algorithm: Algorithm::Ctw,
                original_len: 1u64 << (n % 60),
            },
        }
    }

    fn meta(id: u64, level: u32) -> RunMeta {
        RunMeta {
            id,
            level,
            records: 7 * id,
            bytes: 1000 + id,
            min_key: ContentKey([1; 16]),
            max_key: ContentKey([9; 16]),
        }
    }

    fn every_kind() -> Vec<Entry> {
        vec![
            add(3),
            Entry::Remove { key: ContentKey([9; 16]) },
            Entry::DropSegment { segment: 77 },
            Entry::AddRun { meta: meta(4, 1) },
            Entry::DropRun { run: 4 },
            Entry::Seal { run: Some(meta(5, 1)), segments: vec![0, 1, 2] },
            Entry::Seal { run: None, segments: vec![7] },
            Entry::Merge { run: Some(meta(6, 2)), runs: vec![4, 5] },
            Entry::Merge { run: None, runs: vec![6] },
            Entry::RemoveRun { key: ContentKey([8; 16]), run: 6, len: 120 },
            Entry::Revive { key: ContentKey([8; 16]), run: 6 },
        ]
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dnacomp-manifest-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_roundtrip() {
        for e in every_kind() {
            let bytes = e.encode();
            let (back, used) = Entry::decode(&bytes).unwrap();
            assert_eq!(back, e);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn every_kind_rejects_flips_and_cuts() {
        for e in every_kind() {
            let good = e.encode();
            for i in 0..good.len() {
                let mut bad = good.clone();
                bad[i] ^= 0x01;
                // A flip may still decode as a *different* valid prefix
                // only if the checksum matched — which it cannot.
                assert!(Entry::decode(&bad).is_none(), "{e:?} flip at {i}");
            }
            for cut in 0..good.len() {
                assert!(Entry::decode(&good[..cut]).is_none(), "{e:?} cut at {cut}");
            }
        }
    }

    #[test]
    fn forged_drop_list_count_is_refused() {
        // Hand-build a Seal whose count field lies far past the cap and
        // the buffer; the decoder must refuse before allocating.
        let mut body = vec![6u8, 0u8];
        write_uvarint(&mut body, u64::MAX / 2);
        let mut h = Fnv1a::new();
        h.update(&body);
        write_u64_le(&mut body, h.digest());
        assert!(Entry::decode(&body).is_none());
        // And a count just past the cap with a valid checksum.
        let mut body = vec![7u8, 0u8];
        write_uvarint(&mut body, (MAX_DROP_LIST + 1) as u64);
        body.extend(vec![1u8; MAX_DROP_LIST + 1]);
        let mut h = Fnv1a::new();
        h.update(&body);
        write_u64_le(&mut body, h.digest());
        assert!(Entry::decode(&body).is_none());
    }

    #[test]
    fn replay_stops_at_torn_tail() {
        let dir = tmp_dir("torn");
        let mut log = Vec::new();
        log.extend_from_slice(&add(1).encode());
        log.extend_from_slice(&add(2).encode());
        let full = log.len();
        // Tear the third entry at every possible byte boundary: the two
        // committed entries must always replay; the torn one never.
        let third = Entry::Seal { run: Some(meta(3, 1)), segments: vec![0, 1] }.encode();
        for cut in 0..third.len() {
            let mut torn = log.clone();
            torn.extend_from_slice(&third[..cut]);
            fs::write(manifest_path(&dir), &torn).unwrap();
            let (entries, stats) = replay_collect(&dir).unwrap();
            assert_eq!(entries, vec![add(1), add(2)], "cut {cut}");
            assert_eq!(stats.valid_len, full as u64);
            assert_eq!(stats.discarded, cut as u64);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_is_empty_store() {
        let dir = tmp_dir("missing");
        let (entries, stats) = replay_collect(&dir).unwrap();
        assert!(entries.is_empty());
        assert_eq!(stats.valid_len, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_replaces_atomically() {
        let dir = tmp_dir("ckpt");
        fs::write(manifest_path(&dir), add(1).encode()).unwrap();
        checkpoint(&dir, &[add(5), Entry::DropSegment { segment: 1 }]).unwrap();
        let (entries, _) = replay_collect(&dir).unwrap();
        assert_eq!(entries, vec![add(5), Entry::DropSegment { segment: 1 }]);
        assert!(!dir.join("manifest.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_byte_ends_replay_there() {
        let dir = tmp_dir("flip");
        let mut log = Vec::new();
        log.extend_from_slice(&add(1).encode());
        let first = log.len();
        log.extend_from_slice(&add(2).encode());
        log[first + 5] ^= 0x01; // damage the second entry
        fs::write(manifest_path(&dir), &log).unwrap();
        let (entries, stats) = replay_collect(&dir).unwrap();
        assert_eq!(entries, vec![add(1)]);
        assert!(stats.discarded > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_replay_matches_whole_file_parse_on_a_long_log() {
        // A log several buffer-refills long, with a torn tail, replayed
        // entry-for-entry identically to an in-memory parse.
        let dir = tmp_dir("long");
        let mut log = Vec::new();
        let mut expect = Vec::new();
        let mut i = 0u64;
        while log.len() < 5 * MAX_ENTRY_BYTES {
            let e = match i % 4 {
                0 => add((i % 200) as u8),
                1 => Entry::RemoveRun { key: ContentKey([(i % 251) as u8; 16]), run: i, len: i },
                2 => Entry::Seal {
                    run: Some(meta(i, 1)),
                    segments: (0..(i % 60)).collect(),
                },
                _ => Entry::Revive { key: ContentKey([(i % 13) as u8; 16]), run: i },
            };
            log.extend_from_slice(&e.encode());
            expect.push(e);
            i += 1;
        }
        let frontier = log.len();
        log.extend_from_slice(&add(9).encode()[..7]); // torn tail
        fs::write(manifest_path(&dir), &log).unwrap();

        let (entries, stats) = replay_collect(&dir).unwrap();
        assert_eq!(entries.len(), expect.len());
        assert_eq!(entries, expect);
        assert_eq!(stats.valid_len, frontier as u64);
        assert_eq!(stats.discarded, 7);

        // Reference: parse the whole file in memory with Entry::decode.
        let bytes = fs::read(manifest_path(&dir)).unwrap();
        let mut pos = 0;
        let mut reference = Vec::new();
        while let Some((e, used)) = Entry::decode(&bytes[pos..]) {
            reference.push(e);
            pos += used;
        }
        assert_eq!(entries, reference);
        assert_eq!(pos, frontier);
        fs::remove_dir_all(&dir).unwrap();
    }
}
