//! Background scrubbing: incremental run auditing on a budget.
//!
//! [`SequenceStore::verify`] reads everything at once — right for an
//! explicit audit, wrong for a server that wants continuous coverage
//! without a latency cliff. [`SequenceStore::scrub_step`] walks runs a
//! few records at a time from a persistent-ish cursor (run id, block
//! index), always from disk (a scrub through the cache would re-verify
//! RAM, not storage), and wraps back to the start when it falls off the
//! end. [`ScrubTask`] drives it from a dedicated thread on an interval;
//! failures land in the same `scrub_failures` counter the metrics
//! endpoint exports.
//!
//! Level 0 is deliberately out of scope here: segments are young,
//! small, and fully covered by `verify`; runs are where data ages.

use crate::record::Record;
use crate::sstable::RunHandle;
use crate::store::{lock_plain, ScrubFailure, ScrubReport, SequenceStore};
use crate::ContentKey;
use dnacomp_algos::CompressedBlob;
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

impl SequenceStore {
    /// Audit roughly `max_records` run-resident records starting at the
    /// scrub cursor, advancing it for next time. One call wraps the
    /// cursor at most once, so an idle store isn't re-read in a tight
    /// loop. Damaged blocks are reported and skipped — the cursor never
    /// wedges on a bad run.
    pub fn scrub_step(&self, max_records: usize) -> ScrubReport {
        let mut report = ScrubReport::default();
        if max_records == 0 {
            return report;
        }
        let handles: Vec<Arc<RunHandle>> = {
            let runs = lock_plain(&self.runs);
            runs.values().cloned().collect()
        };
        if handles.is_empty() {
            return report;
        }
        let dead: HashSet<ContentKey> = lock_plain(&self.tombstones).keys().copied().collect();
        let (start_run, start_block) = *lock_plain(&self.scrub_pos);
        let mut cursor = (start_run, start_block);
        let mut wrapped = false;
        'outer: while (report.checked as usize) < max_records {
            // The first run at or after the cursor; off the end → wrap.
            let Some(h) = handles.iter().find(|h| h.meta.id >= cursor.0) else {
                if wrapped {
                    break;
                }
                wrapped = true;
                cursor = (0, 0);
                continue;
            };
            if h.meta.id != cursor.0 {
                cursor = (h.meta.id, 0);
            }
            let idx = match h.load(&self.dir) {
                Ok(idx) => idx,
                Err(e) => {
                    report.failures.push(ScrubFailure {
                        key: h.meta.min_key,
                        error: format!("run {}: {e}", h.meta.id),
                    });
                    cursor = (h.meta.id + 1, 0);
                    continue;
                }
            };
            while (cursor.1 as usize) < idx.blocks.len() {
                if (report.checked as usize) >= max_records {
                    break 'outer;
                }
                let entry = idx.blocks[cursor.1 as usize];
                cursor.1 += 1;
                // Straight from disk, bypassing the cache on purpose.
                match h.read_block(&self.dir, &entry) {
                    Ok(block) => {
                        if let Err(e) = check_block(&block, &dead, &mut report) {
                            report.failures.push(ScrubFailure {
                                key: entry.first_key,
                                error: format!("run {} block: {e}", h.meta.id),
                            });
                        }
                    }
                    Err(e) => {
                        report.failures.push(ScrubFailure {
                            key: entry.first_key,
                            error: format!("run {} block: {e}", h.meta.id),
                        });
                    }
                }
            }
            cursor = (h.meta.id + 1, 0);
        }
        *lock_plain(&self.scrub_pos) = cursor;
        self.scrub_failures
            .fetch_add(report.failures.len() as u64, Ordering::Relaxed);
        report
    }
}

/// Decode and validate every record in one block, counting live ones.
fn check_block(
    block: &[u8],
    dead: &HashSet<ContentKey>,
    report: &mut ScrubReport,
) -> Result<(), crate::StoreError> {
    let mut pos = 0usize;
    while pos < block.len() {
        let (record, used) = Record::decode(&block[pos..])?;
        pos += used;
        if dead.contains(&record.key) {
            continue; // dead bytes are outside the durability contract
        }
        report.checked += 1;
        CompressedBlob::from_bytes(&record.payload)?;
    }
    Ok(())
}

struct TaskShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

/// A background thread calling [`SequenceStore::scrub_step`] on an
/// interval until stopped. Dropping without [`ScrubTask::stop`] detaches
/// the thread (it keeps the store's `Arc` alive until its next tick
/// check) — stop explicitly for prompt shutdown.
pub struct ScrubTask {
    shared: Arc<TaskShared>,
    handle: Option<JoinHandle<()>>,
}

impl ScrubTask {
    /// Start scrubbing `store` every `interval`, auditing up to
    /// `records_per_tick` records per tick.
    pub fn start(
        store: Arc<SequenceStore>,
        interval: Duration,
        records_per_tick: usize,
    ) -> ScrubTask {
        let shared = Arc::new(TaskShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("store-scrub".to_owned())
            .spawn(move || loop {
                {
                    let guard = thread_shared
                        .stop
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    // wait_timeout for the interval, waking early on stop.
                    let (guard, _timeout) = thread_shared
                        .cv
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if *guard {
                        return;
                    }
                }
                let _ = store.scrub_step(records_per_tick);
            })
            .expect("spawning scrub thread");
        ScrubTask {
            shared,
            handle: Some(handle),
        }
    }

    /// Stop the scrubber and join its thread.
    pub fn stop(mut self) {
        self.signal_stop();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }

    fn signal_stop(&self) {
        let mut stop = self
            .shared
            .stop
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *stop = true;
        self.shared.cv.notify_all();
    }
}

impl Drop for ScrubTask {
    fn drop(&mut self) {
        // Best effort: ask the thread to exit; don't block the drop.
        self.signal_stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StoreConfig;
    use dnacomp_algos::Algorithm;
    use dnacomp_seq::PackedSeq;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dnacomp-scrub-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn filled_store(dir: &PathBuf, n: u8) -> SequenceStore {
        let store = SequenceStore::open(
            dir,
            StoreConfig {
                segment_target_bytes: 160,
                sync: false,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..n {
            let s =
                PackedSeq::from_ascii(format!("ACGT{}", "A".repeat(i as usize + 1)).as_bytes())
                    .unwrap();
            let b = CompressedBlob::new(Algorithm::Dnax, &s, vec![i; 24]);
            store.put(&s, &b).unwrap();
        }
        store.compact().unwrap();
        store
    }

    #[test]
    fn scrub_step_covers_all_runs_and_wraps() {
        let dir = tmp_dir("wrap");
        let store = filled_store(&dir, 20);
        let total: u64 = 20;
        // Tiny budget: several steps must still cover everything once.
        let mut checked = 0u64;
        for _ in 0..64 {
            checked += store.scrub_step(3).checked;
            if checked >= total {
                break;
            }
        }
        assert!(checked >= total, "scrub must reach every record: {checked}/{total}");
        // And it keeps wrapping rather than going idle forever.
        let more = store.scrub_step(usize::MAX >> 1);
        assert!(more.checked > 0);
        assert!(more.is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_finds_damage_and_skips_past_it() {
        let dir = tmp_dir("damage");
        let store = filled_store(&dir, 12);
        drop(store);
        let run = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".sst"))
            .expect("compaction left a run");
        let mut bytes = fs::read(run.path()).unwrap();
        bytes[40] ^= 0x01;
        fs::write(run.path(), &bytes).unwrap();
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                segment_target_bytes: 160,
                sync: false,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        let mut failures = 0usize;
        for _ in 0..16 {
            failures += store.scrub_step(64).failures.len();
        }
        assert!(failures > 0, "scrub must notice the flipped byte");
        assert!(store.snapshot().scrub_failures > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_task_runs_and_stops_promptly() {
        let dir = tmp_dir("task");
        let store = Arc::new(filled_store(&dir, 10));
        let task = ScrubTask::start(Arc::clone(&store), Duration::from_millis(5), 100);
        std::thread::sleep(Duration::from_millis(60));
        let started = std::time::Instant::now();
        task.stop();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "stop must not wait out long intervals"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
