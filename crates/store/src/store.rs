//! The repository itself: open, put, get, stat, verify, compact.
//!
//! ## The LSM shape
//!
//! Fresh records land in **level 0**: append-only segments plus the
//! sharded in-memory index. Once enough L0 segments seal, their live
//! records are flushed into a **sorted run** (level 1) — an immutable
//! file with a sparse block index and a bloom filter — and the segments
//! are deleted. Runs merge level by level as they accumulate. A live
//! key exists in *exactly one* place (L0 or one run); a removed
//! run-resident key exists as exactly one tombstone. That uniqueness
//! invariant is what keeps `len` exact and dedup sound.
//!
//! ## Commit points
//!
//! Every durable state change is a single manifest append (or one
//! atomic checkpoint rename):
//!
//! ```text
//! put      record bytes → active segment, then ONE Add entry
//! remove   ONE Remove (L0) or RemoveRun (tombstone) entry
//! re-put   ONE Revive entry (content addressing: the bytes are
//!          already in the run, reviving the tombstone IS the write)
//! seal     run file written + fsynced + renamed, then ONE Seal entry
//!          carrying the run meta AND every victim segment id
//! merge    same shape: output run durable first, then ONE Merge entry
//! ckpt     manifest.tmp written + fsynced, then ONE rename
//! ```
//!
//! A torn write anywhere leaves the previous commit point intact:
//! replay stops at the torn entry, orphan run/tmp files are deleted on
//! reopen, and segment tails truncate back to the frontier. The chaos
//! tests sweep a byte-granular crash budget across *all* of these
//! writes.
//!
//! ## Durability: group commit
//!
//! With [`StoreConfig::group_commit_window`] set (the default), appends
//! do not fsync individually. A committing thread waits on the group
//! scheduler; the first waiter sleeps the window, then fsyncs every
//! dirty segment *then* the manifest on behalf of the whole batch (see
//! [`crate::wal`]). Level transitions fsync inline before any source
//! file is deleted, so the manifest never references bytes that are
//! gone. `group_commit_window: None` restores one-fsync-per-append.
//!
//! Maintenance (sealing, merging) piggybacks on `put` after its commit
//! point and swallows its own failures into a counter — a put whose
//! record committed reports success even if the housekeeping behind it
//! crashed.

use crate::cache::BlockCache;
use crate::error::StoreError;
use crate::index::ShardedIndex;
use crate::manifest::{self, Entry, Location};
use crate::record::{ContentKey, Record};
use crate::segment::{self, SegmentInfo};
use crate::sstable::{self, RunHandle};
use crate::wal::GroupCommit;
use dnacomp_algos::CompressedBlob;
use dnacomp_cloud::FaultPlan;
use dnacomp_seq::PackedSeq;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Roll to a fresh segment once the active one reaches this size.
    pub segment_target_bytes: u64,
    /// Forced compaction reclaims any level whose dead-byte share rises
    /// above `1 - compact_live_ratio` (kept for auto-merge heuristics).
    pub compact_live_ratio: f64,
    /// `fsync` commits (the durable default). Disabling trades the
    /// power-loss guarantee for speed; the simulated-crash tests are
    /// unaffected either way.
    pub sync: bool,
    /// Seeded disk-fault schedule (torn writes). [`FaultPlan::none`]
    /// for production use.
    pub faults: FaultPlan,
    /// Test hook: total byte budget across all disk writes; the write
    /// that would exceed it is torn at the boundary and the store
    /// "crashes". Sweeping this over every byte of a workload proves
    /// recovery at every possible kill point.
    pub crash_after_bytes: Option<u64>,
    /// Seal level 0 into a sorted run once this many sealed segments
    /// accumulate. `0` disables automatic maintenance entirely
    /// (explicit [`SequenceStore::compact`] still works).
    pub l0_seal_segments: usize,
    /// Merge a level into the next once it holds this many runs.
    pub level_fanout: usize,
    /// Bloom filter budget per record in a run.
    pub bloom_bits_per_key: u32,
    /// Target data-block size inside a run (the cache unit).
    pub run_block_bytes: usize,
    /// Block cache budget in bytes; `0` disables the cache.
    pub cache_bytes: u64,
    /// Group-commit window: how long a batch leader waits for fellow
    /// committers before fsyncing for all of them. `None` restores the
    /// legacy one-fsync-per-append behaviour. Ignored when `sync` is
    /// off.
    pub group_commit_window: Option<Duration>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_target_bytes: 8 << 20,
            compact_live_ratio: 0.5,
            sync: true,
            faults: FaultPlan::none(),
            crash_after_bytes: None,
            l0_seal_segments: 4,
            level_fanout: 4,
            bloom_bits_per_key: 10,
            run_block_bytes: 4096,
            cache_bytes: 32 << 20,
            group_commit_window: Some(Duration::from_millis(2)),
        }
    }
}

/// Outcome of a `put`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutOutcome {
    /// Content key the sequence is stored under.
    pub key: ContentKey,
    /// `true` when the payload was already on disk: a live duplicate
    /// (nothing written) or a tombstoned one (revived by a single
    /// manifest entry). Either way the existing record stands.
    pub deduped: bool,
}

/// Per-record metadata answered without decompressing anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordStat {
    /// Content key.
    pub key: ContentKey,
    /// Algorithm that compressed the payload.
    pub algorithm: dnacomp_algos::Algorithm,
    /// Original sequence length in bases.
    pub original_len: u64,
    /// Encoded record size on disk in bytes.
    pub stored_bytes: u64,
    /// File holding the record: a segment id at level 0, a run id at
    /// level 1 and deeper.
    pub segment: u64,
    /// LSM level the record currently lives at.
    pub level: u32,
}

/// Point-in-time store counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Live records (distinct content keys) across all levels.
    pub records: u64,
    /// Level-0 segment files holding committed data.
    pub segments: u64,
    /// Sorted run files (level 1 and deeper).
    pub runs: u64,
    /// Run-resident records logically removed but not yet merged away.
    pub tombstones: u64,
    /// Committed bytes on disk (segments + runs, dead bytes included).
    pub bytes_on_disk: u64,
    /// Bytes still logically live.
    pub live_bytes: u64,
    /// `put` calls since open.
    pub puts: u64,
    /// Puts answered by dedup or revive (no payload written).
    pub dedup_hits: u64,
    /// Records logically removed since open.
    pub removes: u64,
    /// Records that failed validation during verify/scrub runs.
    pub scrub_failures: u64,
    /// L0 → run seals since open.
    pub seals: u64,
    /// Run merges since open.
    pub merges: u64,
    /// Background-maintenance passes that failed after a put committed.
    pub maintenance_failures: u64,
    /// Run probes answered "definitely absent" by a bloom filter
    /// without touching disk.
    pub bloom_negatives: u64,
    /// Block-cache hits since open.
    pub cache_hits: u64,
    /// Block-cache misses since open.
    pub cache_misses: u64,
    /// Bytes currently held by the block cache.
    pub cache_bytes: u64,
    /// Manifest entries appended since open (WAL appends).
    pub wal_appends: u64,
    /// Fsync batches that made those appends durable; the gap to
    /// `wal_appends` is the group-commit win.
    pub wal_batches: u64,
}

/// Per-level occupancy, for `store stat` and capacity planning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelStat {
    /// LSM level (0 = append-only segments).
    pub level: u32,
    /// Files at this level.
    pub files: u64,
    /// Records at this level, dead ones included.
    pub records: u64,
    /// Records at this level awaiting reclamation.
    pub dead_records: u64,
    /// Bytes on disk at this level.
    pub bytes: u64,
    /// Bytes awaiting reclamation at this level.
    pub dead_bytes: u64,
}

/// One record `verify` could not validate.
#[derive(Clone, Debug)]
pub struct ScrubFailure {
    /// Key of the damaged record (for a run that cannot be walked at
    /// all, the run's smallest key).
    pub key: ContentKey,
    /// What validation reported.
    pub error: String,
}

/// Result of a `verify` pass or a batch of scrub steps.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Records examined.
    pub checked: u64,
    /// Records that failed validation (bit rot, outside writers).
    pub failures: Vec<ScrubFailure>,
}

impl ScrubReport {
    /// `true` when every record validated.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Result of a `compact` pass (or accumulated maintenance).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Data files removed: sealed L0 segments plus merged-away runs.
    pub segments_removed: u64,
    /// Dead bytes reclaimed from disk.
    pub bytes_reclaimed: u64,
    /// Live records rewritten into a new run.
    pub records_moved: u64,
}

/// A logically deleted run-resident record: where its (dead) bytes
/// still sit and how many there are.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Tombstone {
    pub(crate) run: u64,
    pub(crate) len: u64,
}

/// A run-probe hit: which run holds the key and the decoded record.
pub(crate) struct RunHit {
    pub(crate) run: u64,
    pub(crate) level: u32,
    pub(crate) len: u64,
    pub(crate) record: Record,
}

/// Which store file a faulted append targets (fault keying + messages).
#[derive(Clone, Copy)]
enum Sink {
    Segment(u64),
    Manifest,
}

impl Sink {
    fn name(self) -> String {
        match self {
            Sink::Segment(id) => segment::segment_name(id),
            Sink::Manifest => manifest::MANIFEST_NAME.to_owned(),
        }
    }
}

/// Mutable writer-side state, all behind one mutex: appends are
/// serialised (one active segment), reads are not.
pub(crate) struct Writer {
    pub(crate) manifest: File,
    pub(crate) active: u64,
    pub(crate) active_file: Option<File>,
    pub(crate) active_end: u64,
    /// The active segment has appended, not-yet-fsynced bytes.
    pub(crate) active_dirty: bool,
    /// Segments rolled out of active with not-yet-fsynced bytes.
    pub(crate) dirty: Vec<File>,
    /// The manifest has appended, not-yet-fsynced entries.
    pub(crate) manifest_dirty: bool,
    /// Committed accounting per non-dropped segment.
    pub(crate) segments: BTreeMap<u64, SegmentInfo>,
    /// Highest segment id ever used (dropped ids are never reused).
    pub(crate) max_seen: u64,
    /// Next run id to assign (monotonic within this instance).
    pub(crate) next_run: u64,
    /// Disk-write operation counter (fault keying).
    pub(crate) op: u64,
    /// Remaining crash budget, if the test hook is armed.
    pub(crate) budget: Option<u64>,
    /// Set after a simulated crash; every later mutation fails fast.
    pub(crate) dead: bool,
}

pub(crate) fn lock_plain<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Runs/tombstones critical sections are single map operations that
    // cannot leave the value half-mutated; recover from poisoning.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A crash-safe, content-addressed repository of compressed sequences.
///
/// All methods take `&self`; the store is `Send + Sync` and is shared
/// across service workers behind an `Arc`.
pub struct SequenceStore {
    pub(crate) dir: PathBuf,
    pub(crate) config: StoreConfig,
    pub(crate) index: ShardedIndex,
    pub(crate) writer: Mutex<Writer>,
    /// Sorted runs by id (ids only grow, so iteration order is age).
    pub(crate) runs: Mutex<BTreeMap<u64, Arc<RunHandle>>>,
    /// Tombstoned run-resident keys. Mutated only under the writer
    /// lock; read freely.
    pub(crate) tombstones: Mutex<HashMap<ContentKey, Tombstone>>,
    pub(crate) cache: BlockCache,
    pub(crate) gc: GroupCommit,
    /// Incremental scrub cursor: (run id, block index).
    pub(crate) scrub_pos: Mutex<(u64, u32)>,
    pub(crate) puts: AtomicU64,
    pub(crate) dedup_hits: AtomicU64,
    pub(crate) removes: AtomicU64,
    pub(crate) scrub_failures: AtomicU64,
    pub(crate) seals: AtomicU64,
    pub(crate) merges: AtomicU64,
    pub(crate) maintenance_failures: AtomicU64,
    pub(crate) bloom_negatives: AtomicU64,
}

impl std::fmt::Debug for SequenceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequenceStore")
            .field("dir", &self.dir)
            .field("l0_records", &self.index.len())
            .finish_non_exhaustive()
    }
}

impl SequenceStore {
    /// Open (or create) the store at `dir` and recover to the last
    /// committed state: stream-replay the manifest (O(1) memory in the
    /// history length), truncate torn tails, and delete orphaned
    /// segment, run, and temp files. Run contents are *not* read here —
    /// their indexes and blooms load lazily on first use, which keeps
    /// open time a function of file count, not object count.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<SequenceStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("creating store directory", e))?;

        let mut map: HashMap<ContentKey, Location> = HashMap::new();
        let mut dropped: HashSet<u64> = HashSet::new();
        let mut totals: BTreeMap<u64, SegmentInfo> = BTreeMap::new();
        let mut ends: BTreeMap<u64, u64> = BTreeMap::new();
        let mut max_seen = 0u64;
        let mut run_metas: BTreeMap<u64, sstable::RunMeta> = BTreeMap::new();
        let mut tombs: HashMap<ContentKey, Tombstone> = HashMap::new();
        let mut next_run = 0u64;
        let stats = manifest::replay(&dir, |entry| match entry {
            Entry::Add { key, location } => {
                max_seen = max_seen.max(location.segment);
                let info = totals.entry(location.segment).or_default();
                info.bytes += location.len;
                info.records += 1;
                let end = ends.entry(location.segment).or_default();
                *end = (*end).max(location.offset + location.len);
                map.insert(key, location);
            }
            Entry::Remove { key } => {
                map.remove(&key);
            }
            Entry::DropSegment { segment } => {
                max_seen = max_seen.max(segment);
                dropped.insert(segment);
                totals.remove(&segment);
                ends.remove(&segment);
            }
            Entry::AddRun { meta } => {
                next_run = next_run.max(meta.id + 1);
                run_metas.insert(meta.id, meta);
            }
            Entry::DropRun { run } => {
                next_run = next_run.max(run + 1);
                run_metas.remove(&run);
            }
            Entry::Seal { run, segments } => {
                for s in segments {
                    max_seen = max_seen.max(s);
                    dropped.insert(s);
                    totals.remove(&s);
                    ends.remove(&s);
                }
                if let Some(meta) = run {
                    next_run = next_run.max(meta.id + 1);
                    run_metas.insert(meta.id, meta);
                }
            }
            Entry::Merge { run, runs } => {
                let inputs: HashSet<u64> = runs.iter().copied().collect();
                for r in &runs {
                    next_run = next_run.max(r + 1);
                    run_metas.remove(r);
                }
                // Tombstones against the merged-away inputs died with
                // them: the dead records were not copied forward.
                tombs.retain(|_, t| !inputs.contains(&t.run));
                if let Some(meta) = run {
                    next_run = next_run.max(meta.id + 1);
                    run_metas.insert(meta.id, meta);
                }
            }
            Entry::RemoveRun { key, run, len } => {
                if run_metas.contains_key(&run) {
                    tombs.insert(key, Tombstone { run, len });
                }
            }
            Entry::Revive { key, run: _ } => {
                tombs.remove(&key);
            }
        })?;
        if stats.discarded > 0 {
            // Drop the torn tail of an interrupted append so the next
            // entry starts on a clean boundary.
            truncate_file(&manifest::manifest_path(&dir), stats.valid_len)?;
        }

        // A Seal's victims take their L0 index entries with them (the
        // records now live in the run); a DropSegment's victims were
        // fully rewritten. Either way: dropped segment ⇒ not in L0.
        map.retain(|_, loc| !dropped.contains(&loc.segment));
        for (_, loc) in map.iter() {
            if let Some(info) = totals.get_mut(&loc.segment) {
                info.live_bytes += loc.len;
                info.live_records += 1;
            }
        }

        // Truncate every surviving segment to its commit frontier (only
        // the segment that was active at crash time can actually have a
        // torn tail, but truncation is idempotent hygiene).
        for (&id, &end) in &ends {
            let path = segment::segment_path(&dir, id);
            if path.exists() {
                truncate_file(&path, end)?;
            }
        }
        // Delete files no manifest entry references: orphan segments
        // and runs from an interrupted seal/merge, and `.tmp` leftovers
        // of a crash before a rename.
        let entries =
            fs::read_dir(&dir).map_err(|e| StoreError::io("listing store directory", e))?;
        for f in entries {
            let f = f.map_err(|e| StoreError::io("listing store directory", e))?;
            let name = f.file_name();
            let Some(name) = name.to_str() else { continue };
            let orphan = if let Some(id) = segment::parse_segment_name(name) {
                !totals.contains_key(&id)
            } else if let Some(id) = sstable::parse_run_name(name) {
                !run_metas.contains_key(&id)
            } else {
                name.ends_with(".tmp")
            };
            if orphan {
                fs::remove_file(f.path())
                    .map_err(|e| StoreError::io("removing orphan store file", e))?;
            }
        }

        // The active segment: the highest surviving one, unless full.
        // Segment ids are never reused, so when every segment was
        // dropped the next fresh id comes after everything ever seen —
        // otherwise a DropSegment entry earlier in the log would
        // retroactively kill records appended after the reopen.
        let mut active = totals
            .keys()
            .next_back()
            .copied()
            .unwrap_or(if stats.entries == 0 { 0 } else { max_seen + 1 });
        let mut active_end = ends.get(&active).copied().unwrap_or(0);
        if active_end >= config.segment_target_bytes {
            active = max_seen + 1;
            active_end = 0;
        }

        let manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(manifest::manifest_path(&dir))
            .map_err(|e| StoreError::io("opening manifest", e))?;

        let index = ShardedIndex::new();
        for (key, loc) in map {
            index.insert(key, loc);
        }
        let runs: BTreeMap<u64, Arc<RunHandle>> = run_metas
            .into_values()
            .map(|meta| (meta.id, Arc::new(RunHandle::new(meta))))
            .collect();
        Ok(SequenceStore {
            index,
            writer: Mutex::new(Writer {
                manifest,
                active,
                active_file: None,
                active_end,
                active_dirty: false,
                dirty: Vec::new(),
                manifest_dirty: false,
                segments: totals,
                max_seen: max_seen.max(active),
                next_run,
                op: 0,
                budget: config.crash_after_bytes,
                dead: false,
            }),
            runs: Mutex::new(runs),
            tombstones: Mutex::new(tombs),
            cache: BlockCache::new(config.cache_bytes),
            gc: GroupCommit::new(config.group_commit_window),
            scrub_pos: Mutex::new((0, 0)),
            dir,
            config,
            puts: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            scrub_failures: AtomicU64::new(0),
            seals: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            maintenance_failures: AtomicU64::new(0),
            bloom_negatives: AtomicU64::new(0),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lock the writer, converting poisoning into fail-stop. A panic
    /// while the writer lock was held may have left the in-memory
    /// accounting out of sync with the log, so the store marks itself
    /// dead (subsequent writes fail typed with [`StoreError::Crashed`])
    /// instead of either panicking the caller or trusting suspect
    /// state. Reopening recovers: the manifest is consistent at every
    /// commit point.
    pub(crate) fn lock_writer(&self) -> MutexGuard<'_, Writer> {
        match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.dead = true;
                guard
            }
        }
    }

    fn tombstone_of(&self, key: &ContentKey) -> Option<Tombstone> {
        lock_plain(&self.tombstones).get(key).copied()
    }

    /// Store `blob` under the content key of `seq` (the original
    /// sequence `blob` encodes). Duplicate content is detected by key —
    /// across every level — and not written again.
    pub fn put(&self, seq: &PackedSeq, blob: &CompressedBlob) -> Result<PutOutcome, StoreError> {
        self.put_with_key(ContentKey::of_sequence(seq), blob)
    }

    /// Store `blob` under an explicit key (the caller owns the
    /// key-derivation contract; [`SequenceStore::put`] is the safe way).
    pub fn put_with_key(
        &self,
        key: ContentKey,
        blob: &CompressedBlob,
    ) -> Result<PutOutcome, StoreError> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        let deduped = Ok(PutOutcome { key, deduped: true });
        // Fast paths outside the writer lock; all re-checked under it.
        if self.index.contains(&key) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return deduped;
        }
        if self.tombstone_of(&key).is_none() {
            // Bloom filters make this probe memory-only for new keys,
            // the common case. Errors here are ignored — the locked
            // probe below is the authoritative one.
            if let Ok(Some(_)) = self.run_probe(&key) {
                self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                return deduped;
            }
        }
        let record = Record {
            key,
            algorithm: blob.algorithm,
            original_len: blob.original_len as u64,
            payload: blob.to_bytes(),
        };
        let bytes = record.encode();

        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        if self.index.contains(&key) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return deduped;
        }
        if let Some(t) = self.tombstone_of(&key) {
            // Content addressing: the tombstoned record in the run is
            // byte-identical to what we were asked to store. One Revive
            // entry is the whole write.
            let seq_no = self.append_manifest(&mut w, &Entry::Revive { key, run: t.run })?;
            lock_plain(&self.tombstones).remove(&key);
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            drop(w);
            self.wait_durable(seq_no)?;
            return deduped;
        }
        // Authoritative run-level dedup check. An error here is a real
        // failure: treating an unreadable run as "absent" could commit
        // the same key twice and break the uniqueness invariant.
        if self.run_probe(&key)?.is_some() {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return deduped;
        }
        let location = self.append_record(&mut w, &bytes, &record)?;
        let seq_no = self.append_manifest(&mut w, &Entry::Add { key, location })?;
        let info = w.segments.entry(location.segment).or_default();
        info.bytes += location.len;
        info.live_bytes += location.len;
        info.records += 1;
        info.live_records += 1;
        self.index.insert(key, location);
        // Housekeeping after the commit point: its failures must not
        // turn a committed put into an error.
        self.maybe_maintain(&mut w);
        drop(w);
        self.wait_durable(seq_no)?;
        Ok(PutOutcome {
            key,
            deduped: false,
        })
    }

    /// Fetch the compressed container stored under `key`, from level 0
    /// or whichever run holds it.
    pub fn get(&self, key: &ContentKey) -> Result<CompressedBlob, StoreError> {
        // A concurrent seal/merge can retire the file between lookup
        // and read; a retry re-resolves the moved record. Corruption is
        // never retried — it would return the same damaged bytes.
        let mut last: Option<StoreError> = None;
        for _ in 0..3 {
            if let Some(loc) = self.index.get(key) {
                match self.read_l0(key, loc) {
                    Ok(blob) => return Ok(blob),
                    Err(e @ StoreError::Corrupt { .. }) => return Err(e),
                    Err(e) => {
                        last = Some(e);
                        continue;
                    }
                }
            }
            if self.tombstone_of(key).is_some() {
                return Err(StoreError::NotFound(*key));
            }
            match self.run_probe(key) {
                Ok(Some(hit)) => {
                    return CompressedBlob::from_bytes(&hit.record.payload).map_err(|source| {
                        StoreError::Corrupt {
                            what: "record payload container",
                            source,
                        }
                    })
                }
                Ok(None) => return Err(StoreError::NotFound(*key)),
                Err(e @ StoreError::Corrupt { .. }) => return Err(e),
                Err(e) => {
                    last = Some(e);
                    continue;
                }
            }
        }
        Err(last.unwrap_or(StoreError::NotFound(*key)))
    }

    fn read_l0(&self, key: &ContentKey, loc: Location) -> Result<CompressedBlob, StoreError> {
        let bytes = segment::read_at(&self.dir, loc.segment, loc.offset, loc.len as usize)?;
        let (record, _) = Record::decode(&bytes)?;
        if record.key != *key {
            return Err(StoreError::Corrupt {
                what: "record key",
                source: dnacomp_codec::CodecError::Corrupt(
                    "stored record carries a different key",
                ),
            });
        }
        CompressedBlob::from_bytes(&record.payload).map_err(|source| StoreError::Corrupt {
            what: "record payload container",
            source,
        })
    }

    /// Probe every run (newest first) for `key`: range check, then
    /// bloom (in memory — a negative touches zero disk), then one block
    /// read, usually from cache.
    pub(crate) fn run_probe(&self, key: &ContentKey) -> Result<Option<RunHit>, StoreError> {
        let handles: Vec<Arc<RunHandle>> = {
            let runs = lock_plain(&self.runs);
            runs.values().rev().cloned().collect()
        };
        for h in handles {
            if !h.meta.covers(key) {
                continue;
            }
            let idx = h.load(&self.dir)?;
            if !idx.bloom.contains(key) {
                self.bloom_negatives.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let Some(bi) = idx.find_block(key) else {
                continue;
            };
            let entry = idx.blocks[bi];
            let block = match self.cache.get(h.meta.id, bi as u32) {
                Some(cached) => cached,
                None => {
                    let fresh = Arc::new(h.read_block(&self.dir, &entry)?);
                    self.cache.insert(h.meta.id, bi as u32, Arc::clone(&fresh));
                    fresh
                }
            };
            if let Some((record, len)) = sstable::scan_block(&block, key)? {
                return Ok(Some(RunHit {
                    run: h.meta.id,
                    level: h.meta.level,
                    len,
                    record,
                }));
            }
        }
        Ok(None)
    }

    /// `true` if a record with this key is committed and live.
    pub fn contains(&self, key: &ContentKey) -> bool {
        if self.index.contains(key) {
            return true;
        }
        if self.tombstone_of(key).is_some() {
            return false;
        }
        matches!(self.run_probe(key), Ok(Some(_)))
    }

    /// Metadata for `key` without decompressing anything. Level-0 hits
    /// are answered from the index alone; run hits read (usually
    /// cached) one block. Unreadable runs answer `None` — `verify`
    /// is the API that *reports* damage.
    pub fn stat(&self, key: &ContentKey) -> Option<RecordStat> {
        if let Some(loc) = self.index.get(key) {
            return Some(RecordStat {
                key: *key,
                algorithm: loc.algorithm,
                original_len: loc.original_len,
                stored_bytes: loc.len,
                segment: loc.segment,
                level: 0,
            });
        }
        if self.tombstone_of(key).is_some() {
            return None;
        }
        let hit = self.run_probe(key).ok().flatten()?;
        Some(RecordStat {
            key: *key,
            algorithm: hit.record.algorithm,
            original_len: hit.record.original_len,
            stored_bytes: hit.len,
            segment: hit.run,
            level: hit.level,
        })
    }

    /// Logically delete `key`. Returns whether it was present. An L0
    /// record dies by a `Remove` entry; a run-resident record gets a
    /// tombstone (`RemoveRun`) and its bytes stay until the next merge
    /// of that run reclaims them.
    pub fn remove(&self, key: &ContentKey) -> Result<bool, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        if let Some(loc) = self.index.get(key) {
            let seq_no = self.append_manifest(&mut w, &Entry::Remove { key: *key })?;
            self.index.remove(key);
            if let Some(info) = w.segments.get_mut(&loc.segment) {
                info.live_bytes -= loc.len;
                info.live_records -= 1;
            }
            self.removes.fetch_add(1, Ordering::Relaxed);
            drop(w);
            self.wait_durable(seq_no)?;
            return Ok(true);
        }
        if self.tombstone_of(key).is_some() {
            return Ok(false);
        }
        match self.run_probe(key)? {
            Some(hit) => {
                let entry = Entry::RemoveRun {
                    key: *key,
                    run: hit.run,
                    len: hit.len,
                };
                let seq_no = self.append_manifest(&mut w, &entry)?;
                lock_plain(&self.tombstones).insert(
                    *key,
                    Tombstone {
                        run: hit.run,
                        len: hit.len,
                    },
                );
                self.removes.fetch_add(1, Ordering::Relaxed);
                drop(w);
                self.wait_durable(seq_no)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// All keys currently committed, sorted. Level 0 answers from
    /// memory; runs are walked from disk. Best-effort on damaged runs
    /// (their keys are simply missing here) — `verify` reports damage.
    pub fn keys(&self) -> Vec<ContentKey> {
        let mut keys: Vec<ContentKey> = self.index.snapshot().into_iter().map(|(k, _)| k).collect();
        let handles: Vec<Arc<RunHandle>> = {
            let runs = lock_plain(&self.runs);
            runs.values().cloned().collect()
        };
        let dead: HashSet<ContentKey> = lock_plain(&self.tombstones).keys().copied().collect();
        for h in handles {
            let _ = h.for_each_record(&self.dir, |key, _| {
                if !dead.contains(&key) {
                    keys.push(key);
                }
                Ok(())
            });
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Live record count: L0 index entries plus run records minus
    /// tombstones. Exact when quiescent; a concurrent writer can skew
    /// it by its in-flight operation.
    pub fn len(&self) -> usize {
        let run_records: u64 = lock_plain(&self.runs)
            .values()
            .map(|h| h.meta.records)
            .sum();
        let tombs = lock_plain(&self.tombstones).len();
        self.index.len() + run_records as usize - tombs
    }

    /// `true` when no records are committed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read and checksum-validate every live record — level 0 and every
    /// run, always from disk, never through the cache — counting
    /// failures into the stats. A failure means bit rot or an outside
    /// writer — never a crash, which cannot damage committed records.
    pub fn verify(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (key, loc) in self.index.snapshot() {
            report.checked += 1;
            let outcome = self.read_l0(&key, loc);
            if let Err(e) = outcome {
                report.failures.push(ScrubFailure {
                    key,
                    error: e.to_string(),
                });
            }
        }
        let handles: Vec<Arc<RunHandle>> = {
            let runs = lock_plain(&self.runs);
            runs.values().cloned().collect()
        };
        let dead: HashSet<ContentKey> = lock_plain(&self.tombstones).keys().copied().collect();
        for h in handles {
            let mut run_checked = 0u64;
            let walk = h.for_each_record(&self.dir, |key, bytes| {
                if dead.contains(&key) {
                    return Ok(()); // dead bytes: not part of the contract
                }
                run_checked += 1;
                let (record, _) = Record::decode(bytes)?;
                CompressedBlob::from_bytes(&record.payload).map_err(StoreError::from)?;
                Ok(())
            });
            report.checked += run_checked;
            if let Err(e) = walk {
                report.failures.push(ScrubFailure {
                    key: h.meta.min_key,
                    error: format!("run {}: {e}", h.meta.id),
                });
            }
        }
        self.scrub_failures
            .fetch_add(report.failures.len() as u64, Ordering::Relaxed);
        report
    }

    /// Current counters and sizes across all levels.
    pub fn snapshot(&self) -> StoreSnapshot {
        let w = self.lock_writer();
        let (mut bytes_on_disk, mut live_bytes, mut segments) = (0u64, 0u64, 0u64);
        for info in w.segments.values() {
            bytes_on_disk += info.bytes;
            live_bytes += info.live_bytes;
            segments += 1;
        }
        drop(w);
        let (run_files, run_records, run_bytes) = {
            let runs = lock_plain(&self.runs);
            let files = runs.len() as u64;
            let records: u64 = runs.values().map(|h| h.meta.records).sum();
            let bytes: u64 = runs.values().map(|h| h.meta.bytes).sum();
            (files, records, bytes)
        };
        let (tomb_count, tomb_bytes) = {
            let tombs = lock_plain(&self.tombstones);
            (tombs.len() as u64, tombs.values().map(|t| t.len).sum::<u64>())
        };
        let cache = self.cache.stats();
        let wal = self.gc.stats();
        StoreSnapshot {
            records: self.index.len() as u64 + run_records - tomb_count,
            segments,
            runs: run_files,
            tombstones: tomb_count,
            bytes_on_disk: bytes_on_disk + run_bytes,
            live_bytes: live_bytes + run_bytes - tomb_bytes,
            puts: self.puts.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            scrub_failures: self.scrub_failures.load(Ordering::Relaxed),
            seals: self.seals.load(Ordering::Relaxed),
            merges: self.merges.load(Ordering::Relaxed),
            maintenance_failures: self.maintenance_failures.load(Ordering::Relaxed),
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_bytes: cache.bytes,
            wal_appends: wal.appends,
            wal_batches: wal.fsync_batches,
        }
    }

    /// Per-level occupancy breakdown (level 0 = segments, 1+ = runs).
    pub fn levels(&self) -> Vec<LevelStat> {
        let mut out: BTreeMap<u32, LevelStat> = BTreeMap::new();
        {
            let w = self.lock_writer();
            if !w.segments.is_empty() {
                let l0 = out.entry(0).or_default();
                for info in w.segments.values() {
                    l0.files += 1;
                    l0.records += info.records;
                    l0.dead_records += info.records - info.live_records;
                    l0.bytes += info.bytes;
                    l0.dead_bytes += info.bytes - info.live_bytes;
                }
            }
        }
        let mut run_level: HashMap<u64, u32> = HashMap::new();
        {
            let runs = lock_plain(&self.runs);
            for h in runs.values() {
                run_level.insert(h.meta.id, h.meta.level);
                let stat = out.entry(h.meta.level).or_insert_with(|| LevelStat {
                    level: h.meta.level,
                    ..LevelStat::default()
                });
                stat.files += 1;
                stat.records += h.meta.records;
                stat.bytes += h.meta.bytes;
            }
        }
        {
            let tombs = lock_plain(&self.tombstones);
            for t in tombs.values() {
                if let Some(&level) = run_level.get(&t.run) {
                    if let Some(stat) = out.get_mut(&level) {
                        stat.dead_records += 1;
                        stat.dead_bytes += t.len;
                    }
                }
            }
        }
        out.into_iter()
            .map(|(level, mut s)| {
                s.level = level;
                s
            })
            .collect()
    }

    /// Append encoded record bytes to the active segment (rolling it if
    /// full) and return the committed-to-be location. Under group
    /// commit the bytes are only *written* here; the batch leader
    /// fsyncs them (segments always before manifest).
    pub(crate) fn append_record(
        &self,
        w: &mut Writer,
        bytes: &[u8],
        record: &Record,
    ) -> Result<Location, StoreError> {
        let len = bytes.len() as u64;
        if w.active_end > 0 && w.active_end + len > self.config.segment_target_bytes {
            if w.active_dirty {
                // The rolled segment still owes an fsync; park the
                // handle for the next batch leader.
                if let Some(f) = w.active_file.take() {
                    w.dirty.push(f);
                }
                w.active_dirty = false;
            }
            w.active = w.max_seen + 1;
            w.max_seen = w.active;
            w.active_end = 0;
            w.active_file = None;
        }
        if w.active_file.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment::segment_path(&self.dir, w.active))
                .map_err(|e| StoreError::io("opening active segment", e))?;
            w.active_file = Some(file);
        }
        let offset = w.active_end;
        let sink = Sink::Segment(w.active);
        self.faulted_write(w, sink, bytes)?;
        if self.config.sync {
            if self.config.group_commit_window.is_some() {
                w.active_dirty = true;
            } else {
                w.active_file
                    .as_ref()
                    .expect("active segment just opened")
                    .sync_all()
                    .map_err(|e| StoreError::io("syncing segment", e))?;
            }
        }
        w.active_end = offset + len;
        Ok(Location {
            segment: w.active,
            offset,
            len,
            algorithm: record.algorithm,
            original_len: record.original_len,
        })
    }

    /// Append one manifest entry — a commit point — and return its WAL
    /// sequence number for [`SequenceStore::wait_durable`].
    pub(crate) fn append_manifest(&self, w: &mut Writer, entry: &Entry) -> Result<u64, StoreError> {
        let bytes = entry.encode();
        self.faulted_write(w, Sink::Manifest, &bytes)?;
        let seq_no = self.gc.note_append();
        if self.config.sync {
            if self.config.group_commit_window.is_some() {
                w.manifest_dirty = true;
            } else {
                w.manifest
                    .sync_all()
                    .map_err(|e| StoreError::io("syncing manifest", e))?;
                self.gc.note_synced(seq_no);
            }
        }
        Ok(seq_no)
    }

    /// Block until `seq_no` is durable (group-commit mode only; inline
    /// and no-sync modes made it durable — or chose not to — already).
    pub(crate) fn wait_durable(&self, seq_no: u64) -> Result<(), StoreError> {
        if self.config.sync && self.config.group_commit_window.is_some() {
            self.gc.wait_durable(seq_no, || self.sync_dirty())
        } else {
            Ok(())
        }
    }

    /// The batch leader's sync closure: fsync every dirty data file,
    /// then the manifest, covering every append made so far.
    fn sync_dirty(&self) -> Result<u64, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        let covered = self.gc.appended();
        self.fsync_data_files(&mut w)?;
        if w.manifest_dirty {
            w.manifest
                .sync_all()
                .map_err(|e| StoreError::io("syncing manifest", e))?;
            w.manifest_dirty = false;
        }
        Ok(covered)
    }

    fn fsync_data_files(&self, w: &mut Writer) -> Result<(), StoreError> {
        for f in w.dirty.drain(..) {
            f.sync_all()
                .map_err(|e| StoreError::io("syncing rolled segment", e))?;
        }
        if w.active_dirty {
            if let Some(f) = w.active_file.as_ref() {
                f.sync_all()
                    .map_err(|e| StoreError::io("syncing segment", e))?;
            }
            w.active_dirty = false;
        }
        Ok(())
    }

    /// Make everything appended so far durable *now*, inline. Level
    /// transitions call this right after their commit entry, before any
    /// source file is deleted — the manifest must never reference bytes
    /// that are gone.
    pub(crate) fn fsync_commit(&self, w: &mut Writer) -> Result<(), StoreError> {
        if !self.config.sync {
            return Ok(());
        }
        self.fsync_data_files(w)?;
        w.manifest
            .sync_all()
            .map_err(|e| StoreError::io("syncing manifest", e))?;
        w.manifest_dirty = false;
        self.gc.note_synced(self.gc.appended());
        Ok(())
    }

    /// Decide where (if anywhere) this write gets torn: the crash
    /// budget first, then the seeded fault schedule.
    fn faulted_cut(&self, w: &mut Writer, name: &str, len: usize) -> Option<usize> {
        let op = w.op;
        w.op += 1;
        let mut cut: Option<usize> = None;
        if let Some(budget) = w.budget.as_mut() {
            if (len as u64) > *budget {
                cut = Some(*budget as usize);
            } else {
                *budget -= len as u64;
            }
        }
        if cut.is_none() {
            cut = self.config.faults.torn_write(name, op, len);
        }
        cut
    }

    /// One fault-injectable append to a segment or the manifest. A torn
    /// write persists only a prefix and kills the store instance,
    /// exactly like a process crash at that byte.
    fn faulted_write(&self, w: &mut Writer, sink: Sink, buf: &[u8]) -> Result<(), StoreError> {
        let name = sink.name();
        let cut = self.faulted_cut(w, &name, buf.len());
        let kept = cut.unwrap_or(buf.len());
        let write = |w: &mut Writer, data: &[u8]| -> std::io::Result<()> {
            match sink {
                Sink::Segment(_) => w
                    .active_file
                    .as_mut()
                    .expect("segment writes follow an open")
                    .write_all(data),
                Sink::Manifest => w.manifest.write_all(data),
            }
        };
        write(w, &buf[..kept]).map_err(|e| StoreError::io("appending store file", e))?;
        match cut {
            None => Ok(()),
            Some(kept) => {
                // Even the surviving prefix is flushed, so reopening
                // this very directory sees exactly the torn state.
                let _ = match sink {
                    Sink::Segment(_) => w.active_file.as_ref().map(|f| f.sync_all()),
                    Sink::Manifest => Some(w.manifest.sync_all()),
                };
                w.dead = true;
                Err(StoreError::TornWrite {
                    file: name,
                    kept,
                    asked: buf.len(),
                })
            }
        }
    }

    /// Create `path` with `bytes`, through the same fault machinery as
    /// appends (run files and manifest checkpoints get byte-granular
    /// kill points too). Returns the open handle for the caller to
    /// fsync before renaming into place.
    pub(crate) fn write_new_file(
        &self,
        w: &mut Writer,
        fault_name: &str,
        path: &Path,
        bytes: &[u8],
    ) -> Result<File, StoreError> {
        let cut = self.faulted_cut(w, fault_name, bytes.len());
        let kept = cut.unwrap_or(bytes.len());
        let mut f = File::create(path).map_err(|e| StoreError::io("creating store file", e))?;
        f.write_all(&bytes[..kept])
            .map_err(|e| StoreError::io("writing store file", e))?;
        match cut {
            None => Ok(f),
            Some(kept) => {
                let _ = f.sync_all();
                w.dead = true;
                Err(StoreError::TornWrite {
                    file: fault_name.to_owned(),
                    kept,
                    asked: bytes.len(),
                })
            }
        }
    }
}

pub(crate) fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("opening file to truncate", e))?;
    f.set_len(len)
        .map_err(|e| StoreError::io("truncating torn tail", e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("syncing truncated file", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::{Algorithm, CompressedBlob};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dnacomp-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seq(text: &[u8]) -> PackedSeq {
        PackedSeq::from_ascii(text).unwrap()
    }

    fn blob(s: &PackedSeq, payload: &[u8]) -> CompressedBlob {
        CompressedBlob::new(Algorithm::Dnax, s, payload.to_vec())
    }

    fn small_segments() -> StoreConfig {
        StoreConfig {
            segment_target_bytes: 160,
            sync: false,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = tmp_dir("roundtrip");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let s = seq(b"ACGTACGTAACC");
        let b = blob(&s, b"pay");
        let out = store.put(&s, &b).unwrap();
        assert!(!out.deduped);
        assert_eq!(store.get(&out.key).unwrap(), b);
        // Same content again — even under a different algorithm — is a
        // dedup hit and the original record stands.
        let b2 = CompressedBlob::new(Algorithm::Gzip, &s, b"otherpayload".to_vec());
        let out2 = store.put(&s, &b2).unwrap();
        assert!(out2.deduped);
        assert_eq!(out2.key, out.key);
        assert_eq!(store.get(&out.key).unwrap().algorithm, Algorithm::Dnax);
        let snap = store.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.dedup_hits, 1);
        assert_eq!(snap.records, 1);
        assert_eq!(snap.bytes_on_disk, snap.live_bytes);
        // Zero-length sequences are first-class records.
        let empty = PackedSeq::new();
        let eb = blob(&empty, b"");
        let eo = store.put(&empty, &eb).unwrap();
        assert!(!eo.deduped);
        assert_eq!(store.get(&eo.key).unwrap(), eb);
        assert_eq!(store.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_everything_across_levels() {
        let dir = tmp_dir("reopen");
        let mut keys = Vec::new();
        {
            let store = SequenceStore::open(&dir, small_segments()).unwrap();
            for i in 0..30u8 {
                let s = seq(format!("ACGT{}", "A".repeat(i as usize + 1)).as_bytes());
                let b = blob(&s, &[i; 24]);
                keys.push((store.put(&s, &b).unwrap().key, b));
            }
            let snap = store.snapshot();
            assert!(snap.seals > 0, "30 records across 160-byte segments must auto-seal: {snap:?}");
            assert!(snap.runs > 0);
            assert_eq!(snap.maintenance_failures, 0);
        }
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 30);
        for (key, b) in &keys {
            assert_eq!(&store.get(key).unwrap(), b);
            assert!(store.stat(key).is_some());
        }
        assert!(store.verify().is_clean());
        assert_eq!(store.keys().len(), 30);
        // The level breakdown accounts for every record exactly once.
        let levels = store.levels();
        let total: u64 = levels.iter().map(|l| l.records - l.dead_records).sum();
        assert_eq!(total, 30, "{levels:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_key_is_not_found() {
        let dir = tmp_dir("notfound");
        let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
        let key = ContentKey([42; 16]);
        assert!(matches!(store.get(&key), Err(StoreError::NotFound(k)) if k == key));
        assert!(store.stat(&key).is_none());
        assert!(!store.remove(&key).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_then_compact_reclaims_dead_data() {
        let dir = tmp_dir("compact");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let mut keys = Vec::new();
        for i in 0..24u8 {
            let s = seq(format!("CCGG{}", "T".repeat(i as usize + 1)).as_bytes());
            keys.push(store.put(&s, &blob(&s, &[i; 24])).unwrap().key);
        }
        let before = store.snapshot();
        // Kill most records: a mix of L0 removes and run tombstones.
        for key in &keys[..20] {
            assert!(store.remove(key).unwrap());
        }
        assert_eq!(store.len(), 4);
        let report = store.compact().unwrap();
        assert!(report.segments_removed > 0, "{report:?}");
        assert!(report.bytes_reclaimed > 0, "{report:?}");
        let after = store.snapshot();
        assert!(after.bytes_on_disk < before.bytes_on_disk);
        assert_eq!(after.records, 4);
        assert_eq!(after.tombstones, 0, "compaction purges tombstones");
        // Survivors are intact, removed keys stay gone — including
        // after a reopen (the checkpointed manifest is authoritative).
        for key in &keys[20..] {
            assert!(store.get(key).is_ok());
        }
        drop(store);
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 4);
        for key in &keys[..20] {
            assert!(matches!(store.get(key), Err(StoreError::NotFound(_))));
        }
        for key in &keys[20..] {
            assert!(store.get(key).is_ok());
        }
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_from_run_then_revive_by_reput() {
        let dir = tmp_dir("revive");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let mut pairs = Vec::new();
        for i in 0..12u8 {
            let s = seq(format!("GGTT{}", "C".repeat(i as usize + 1)).as_bytes());
            let b = blob(&s, &[i; 24]);
            let key = store.put(&s, &b).unwrap().key;
            pairs.push((s, b, key));
        }
        // Force everything into runs.
        store.compact().unwrap();
        let (s, b, key) = &pairs[3];
        let (s, b, key) = (s, b.clone(), *key);
        assert!(store.stat(&key).unwrap().level >= 1);
        // Remove a run-resident record: tombstone, not rewrite.
        assert!(store.remove(&key).unwrap());
        assert!(matches!(store.get(&key), Err(StoreError::NotFound(_))));
        assert!(!store.contains(&key));
        assert_eq!(store.len(), 11);
        assert_eq!(store.snapshot().tombstones, 1);
        // Re-put the same content: a Revive entry, no payload write.
        let bytes_before = store.snapshot().bytes_on_disk;
        let out = store.put(s, &b).unwrap();
        assert!(out.deduped, "revive is answered without writing the payload");
        assert_eq!(out.key, key);
        assert_eq!(store.get(&key).unwrap(), b);
        assert_eq!(store.snapshot().bytes_on_disk, bytes_before);
        assert_eq!(store.snapshot().tombstones, 0);
        assert_eq!(store.len(), 12);
        // And the whole dance survives a reopen.
        drop(store);
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 12);
        assert_eq!(store.get(&key).unwrap(), b);
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hot_gets_are_served_from_the_block_cache() {
        let dir = tmp_dir("cache");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let mut keys = Vec::new();
        for i in 0..16u8 {
            let s = seq(format!("AATT{}", "G".repeat(i as usize + 1)).as_bytes());
            keys.push(store.put(&s, &blob(&s, &[i; 24])).unwrap().key);
        }
        store.compact().unwrap();
        assert!(store.snapshot().runs > 0);
        for key in &keys {
            store.get(key).unwrap();
        }
        let cold = store.snapshot();
        assert!(cold.cache_misses > 0, "first pass fills the cache: {cold:?}");
        for _ in 0..3 {
            for key in &keys {
                store.get(key).unwrap();
            }
        }
        let hot = store.snapshot();
        assert!(hot.cache_hits >= 3 * keys.len() as u64, "{hot:?}");
        assert_eq!(hot.cache_misses, cold.cache_misses, "hot gets touch no disk");
        // Negative gets are answered by the blooms without disk reads.
        let absent = ContentKey([0xEE; 16]);
        assert!(matches!(store.get(&absent), Err(StoreError::NotFound(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_concurrent_puts() {
        let dir = tmp_dir("gc");
        let config = StoreConfig {
            sync: true,
            group_commit_window: Some(Duration::from_millis(2)),
            ..StoreConfig::default()
        };
        let store = Arc::new(SequenceStore::open(&dir, config).unwrap());
        let threads: Vec<_> = (0..4u8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..8u8 {
                        let s = seq(format!("AC{}{}", "G".repeat(t as usize + 1), "T".repeat(i as usize + 1)).as_bytes());
                        store.put(&s, &blob(&s, &[t ^ i; 16])).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = store.snapshot();
        assert_eq!(snap.records, 32);
        assert_eq!(snap.wal_appends, 32);
        assert!(snap.wal_batches > 0);
        assert!(
            snap.wal_batches < snap.wal_appends,
            "4 threads in a 2 ms window must share fsync batches: {snap:?}"
        );
        drop(store);
        let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
        assert_eq!(store.len(), 32);
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_budget_kills_then_reopen_recovers_committed_prefix() {
        let dir = tmp_dir("budget");
        // First, commit two records cleanly.
        let committed: Vec<_> = {
            let store = SequenceStore::open(&dir, small_segments()).unwrap();
            (0..2u8)
                .map(|i| {
                    let s = seq(format!("AC{}", "G".repeat(i as usize + 3)).as_bytes());
                    let b = blob(&s, &[i; 10]);
                    (store.put(&s, &b).unwrap().key, b)
                })
                .collect()
        };
        // Then crash almost immediately into the third put.
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                crash_after_bytes: Some(5),
                ..small_segments()
            },
        )
        .unwrap();
        let s = seq(b"TTTTGGGGCCCC");
        let err = store.put(&s, &blob(&s, &[9; 10])).unwrap_err();
        assert!(err.is_simulated_crash(), "{err}");
        // The dead instance refuses further mutations…
        assert!(matches!(
            store.put(&s, &blob(&s, &[9; 10])),
            Err(StoreError::Crashed)
        ));
        drop(store);
        // …and reopening recovers exactly the committed records.
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 2);
        for (key, b) in &committed {
            assert_eq!(&store.get(key).unwrap(), b);
        }
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_a_flipped_byte() {
        let dir = tmp_dir("scrub");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let s = seq(b"ACGTACGTACGTACGT");
        let key = store.put(&s, &blob(&s, &[7; 40])).unwrap().key;
        drop(store);
        // Flip one payload byte on disk behind the store's back.
        let seg = segment::segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let report = store.verify();
        assert_eq!(report.checked, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].key, key);
        assert_eq!(store.snapshot().scrub_failures, 1);
        assert!(store.get(&key).is_err(), "get must not serve corrupt data");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_a_flipped_byte_inside_a_run() {
        let dir = tmp_dir("scrub-run");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        for i in 0..10u8 {
            let s = seq(format!("TTAA{}", "G".repeat(i as usize + 1)).as_bytes());
            store.put(&s, &blob(&s, &[i; 24])).unwrap();
        }
        store.compact().unwrap();
        assert!(store.verify().is_clean());
        drop(store);
        // Flip a byte in the middle of the run's data region.
        let run = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".sst"))
            .expect("compaction left a run");
        let mut bytes = fs::read(run.path()).unwrap();
        bytes[40] ^= 0x01;
        fs::write(run.path(), &bytes).unwrap();
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let report = store.verify();
        assert!(!report.is_clean(), "a damaged run must be reported");
        assert!(store.snapshot().scrub_failures > 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
