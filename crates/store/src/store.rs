//! The repository itself: open, put, get, stat, verify, compact.
//!
//! ## Commit protocol (one `put`)
//!
//! ```text
//! 1. encode the record                      (pure)
//! 2. append record bytes to the active      (torn here ⇒ garbage tail,
//!    segment, fsync                          manifest unchanged, record
//!                                            simply not committed)
//! 3. append the Add entry to manifest.log,  (torn here ⇒ replay stops at
//!    fsync — THE COMMIT POINT                the torn entry, record not
//!                                            committed, segment tail is
//!                                            truncated on reopen)
//! 4. update the in-memory index & stats     (volatile)
//! ```
//!
//! A record exists exactly when its manifest entry is fully durable;
//! there is no window where a crash corrupts a committed record. The
//! recovery pass in [`SequenceStore::open`] replays the manifest,
//! truncates the torn tails of both log and segments back to the commit
//! frontier, and deletes orphaned segment files left by an interrupted
//! compaction.

use crate::error::StoreError;
use crate::index::ShardedIndex;
use crate::manifest::{self, Entry, Location};
use crate::record::{ContentKey, Record};
use crate::segment::{self, SegmentInfo};
use dnacomp_algos::CompressedBlob;
use dnacomp_cloud::FaultPlan;
use dnacomp_seq::PackedSeq;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Store tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Roll to a fresh segment once the active one reaches this size.
    pub segment_target_bytes: u64,
    /// Sealed segments whose live ratio falls below this are rewritten
    /// by [`SequenceStore::compact`].
    pub compact_live_ratio: f64,
    /// `fsync` after every segment and manifest append (the durable
    /// default). Disabling trades the power-loss guarantee for speed;
    /// the simulated-crash tests are unaffected either way.
    pub sync: bool,
    /// Seeded disk-fault schedule (torn writes). [`FaultPlan::none`]
    /// for production use.
    pub faults: FaultPlan,
    /// Test hook: total byte budget across all disk writes; the write
    /// that would exceed it is torn at the boundary and the store
    /// "crashes". Sweeping this over every byte of a workload proves
    /// recovery at every possible kill point.
    pub crash_after_bytes: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_target_bytes: 8 << 20,
            compact_live_ratio: 0.5,
            sync: true,
            faults: FaultPlan::none(),
            crash_after_bytes: None,
        }
    }
}

/// Outcome of a `put`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutOutcome {
    /// Content key the sequence is stored under.
    pub key: ContentKey,
    /// `true` when the key was already present: nothing was written,
    /// the existing record (and its algorithm) stands.
    pub deduped: bool,
}

/// Per-record metadata answered from the index without touching disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecordStat {
    /// Content key.
    pub key: ContentKey,
    /// Algorithm that compressed the payload.
    pub algorithm: dnacomp_algos::Algorithm,
    /// Original sequence length in bases.
    pub original_len: u64,
    /// Encoded record size on disk in bytes.
    pub stored_bytes: u64,
    /// Segment holding the record.
    pub segment: u64,
}

/// Point-in-time store counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Live records (distinct content keys).
    pub records: u64,
    /// Segment files holding committed data.
    pub segments: u64,
    /// Committed segment bytes on disk (live + not-yet-compacted dead).
    pub bytes_on_disk: u64,
    /// Bytes still referenced by the index.
    pub live_bytes: u64,
    /// `put` calls since open.
    pub puts: u64,
    /// Puts answered by dedup (no bytes written).
    pub dedup_hits: u64,
    /// Records logically removed since open.
    pub removes: u64,
    /// Records that failed checksum validation during `verify` runs.
    pub scrub_failures: u64,
}

/// One record `verify` could not validate.
#[derive(Clone, Debug)]
pub struct ScrubFailure {
    /// Key of the damaged record.
    pub key: ContentKey,
    /// What validation reported.
    pub error: String,
}

/// Result of a full `verify` pass.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Records examined.
    pub checked: u64,
    /// Records that failed validation (bit rot, outside writers).
    pub failures: Vec<ScrubFailure>,
}

impl ScrubReport {
    /// `true` when every record validated.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Result of a `compact` pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Segments rewritten and deleted.
    pub segments_removed: u64,
    /// Dead bytes reclaimed from disk.
    pub bytes_reclaimed: u64,
    /// Live records moved into the active segment.
    pub records_moved: u64,
}

/// Which store file a faulted write targets (fault keying + messages).
#[derive(Clone, Copy)]
enum Sink {
    Segment(u64),
    Manifest,
}

impl Sink {
    fn name(self) -> String {
        match self {
            Sink::Segment(id) => segment::segment_name(id),
            Sink::Manifest => manifest::MANIFEST_NAME.to_owned(),
        }
    }
}

/// Mutable writer-side state, all behind one mutex: appends are
/// serialised (one active segment), reads are not.
struct Writer {
    manifest: File,
    active: u64,
    active_file: Option<File>,
    active_end: u64,
    /// Committed accounting per non-dropped segment.
    segments: BTreeMap<u64, SegmentInfo>,
    /// Highest segment id ever used (dropped ids are never reused).
    max_seen: u64,
    /// Disk-write operation counter (fault keying).
    op: u64,
    /// Remaining crash budget, if the test hook is armed.
    budget: Option<u64>,
    /// Set after a simulated crash; every later mutation fails fast.
    dead: bool,
}

/// A crash-safe, content-addressed repository of compressed sequences.
///
/// All methods take `&self`; the store is `Send + Sync` and is shared
/// across service workers behind an `Arc`.
pub struct SequenceStore {
    dir: PathBuf,
    config: StoreConfig,
    index: ShardedIndex,
    writer: Mutex<Writer>,
    puts: AtomicU64,
    dedup_hits: AtomicU64,
    removes: AtomicU64,
    scrub_failures: AtomicU64,
}

impl std::fmt::Debug for SequenceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SequenceStore")
            .field("dir", &self.dir)
            .field("records", &self.index.len())
            .finish_non_exhaustive()
    }
}

impl SequenceStore {
    /// Open (or create) the store at `dir` and recover to the last
    /// committed state: replay the manifest, truncate torn tails, and
    /// delete orphaned segment files.
    pub fn open(dir: impl AsRef<Path>, config: StoreConfig) -> Result<SequenceStore, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::io("creating store directory", e))?;
        let replay = manifest::replay(&dir)?;
        if replay.discarded > 0 {
            // Drop the torn tail of an interrupted append so the next
            // entry starts on a clean boundary.
            truncate_file(&manifest::manifest_path(&dir), replay.valid_len)?;
        }

        let mut map: HashMap<ContentKey, Location> = HashMap::new();
        let mut dropped: HashSet<u64> = HashSet::new();
        let mut totals: BTreeMap<u64, SegmentInfo> = BTreeMap::new();
        let mut ends: BTreeMap<u64, u64> = BTreeMap::new();
        let mut max_seen = 0u64;
        for entry in &replay.entries {
            match *entry {
                Entry::Add { key, location } => {
                    max_seen = max_seen.max(location.segment);
                    let info = totals.entry(location.segment).or_default();
                    info.bytes += location.len;
                    info.records += 1;
                    let end = ends.entry(location.segment).or_default();
                    *end = (*end).max(location.offset + location.len);
                    map.insert(key, location);
                }
                Entry::Remove { key } => {
                    map.remove(&key);
                }
                Entry::DropSegment { segment } => {
                    max_seen = max_seen.max(segment);
                    dropped.insert(segment);
                    totals.remove(&segment);
                    ends.remove(&segment);
                }
            }
        }
        // A dropped segment may have been re-added? Never: ids are not
        // reused. But an Add can *follow* its segment's drop only if the
        // log is corrupt; drop wins (the file is gone).
        map.retain(|_, loc| !dropped.contains(&loc.segment));
        for (_, loc) in map.iter() {
            if let Some(info) = totals.get_mut(&loc.segment) {
                info.live_bytes += loc.len;
                info.live_records += 1;
            }
        }

        // Truncate every surviving segment to its commit frontier (only
        // the segment that was active at crash time can actually have a
        // torn tail, but truncation is idempotent hygiene).
        for (&id, &end) in &ends {
            let path = segment::segment_path(&dir, id);
            if path.exists() {
                truncate_file(&path, end)?;
            }
        }
        // Delete segment files no manifest entry references: orphans of
        // an interrupted compaction, or of a crash before a fresh
        // segment's first commit.
        let entries =
            fs::read_dir(&dir).map_err(|e| StoreError::io("listing store directory", e))?;
        for f in entries {
            let f = f.map_err(|e| StoreError::io("listing store directory", e))?;
            if let Some(id) = f.file_name().to_str().and_then(segment::parse_segment_name) {
                if !totals.contains_key(&id) {
                    fs::remove_file(f.path())
                        .map_err(|e| StoreError::io("removing orphan segment", e))?;
                }
            }
        }

        // The active segment: the highest surviving one, unless full.
        // Segment ids are never reused, so when every segment was
        // dropped the next fresh id comes after everything ever seen —
        // otherwise a DropSegment entry earlier in the log would
        // retroactively kill records appended after the reopen.
        let mut active = totals.keys().next_back().copied().unwrap_or(if replay.entries.is_empty() {
            0
        } else {
            max_seen + 1
        });
        let mut active_end = ends.get(&active).copied().unwrap_or(0);
        if active_end >= config.segment_target_bytes {
            active = max_seen + 1;
            active_end = 0;
        }

        let manifest = OpenOptions::new()
            .create(true)
            .append(true)
            .open(manifest::manifest_path(&dir))
            .map_err(|e| StoreError::io("opening manifest", e))?;

        let index = ShardedIndex::new();
        for (key, loc) in map {
            index.insert(key, loc);
        }
        Ok(SequenceStore {
            dir,
            index,
            writer: Mutex::new(Writer {
                manifest,
                active,
                active_file: None,
                active_end,
                segments: totals,
                max_seen: max_seen.max(active),
                op: 0,
                budget: config.crash_after_bytes,
                dead: false,
            }),
            config,
            puts: AtomicU64::new(0),
            dedup_hits: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            scrub_failures: AtomicU64::new(0),
        })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Lock the writer, converting poisoning into fail-stop. A panic
    /// while the writer lock was held may have left the in-memory
    /// segment accounting out of sync with the log, so the store marks
    /// itself dead (subsequent writes fail typed with
    /// [`StoreError::Crashed`]) instead of either panicking the caller
    /// or trusting suspect state. Reopening recovers: the manifest and
    /// WAL are consistent at every fsync'd commit point.
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Writer> {
        match self.writer.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                let mut guard = poisoned.into_inner();
                guard.dead = true;
                guard
            }
        }
    }

    /// Store `blob` under the content key of `seq` (the original
    /// sequence `blob` encodes). Duplicate content is detected by key
    /// and not written again.
    pub fn put(&self, seq: &PackedSeq, blob: &CompressedBlob) -> Result<PutOutcome, StoreError> {
        self.put_with_key(ContentKey::of_sequence(seq), blob)
    }

    /// Store `blob` under an explicit key (the caller owns the
    /// key-derivation contract; [`SequenceStore::put`] is the safe way).
    pub fn put_with_key(
        &self,
        key: ContentKey,
        blob: &CompressedBlob,
    ) -> Result<PutOutcome, StoreError> {
        self.puts.fetch_add(1, Ordering::Relaxed);
        // Fast path outside the writer lock; re-checked under it.
        if self.index.contains(&key) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PutOutcome { key, deduped: true });
        }
        let record = Record {
            key,
            algorithm: blob.algorithm,
            original_len: blob.original_len as u64,
            payload: blob.to_bytes(),
        };
        let bytes = record.encode();

        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        if self.index.contains(&key) {
            self.dedup_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(PutOutcome { key, deduped: true });
        }
        let location = self.append_record(&mut w, &bytes, &record)?;
        self.commit_add(&mut w, key, location)?;
        self.index.insert(key, location);
        Ok(PutOutcome {
            key,
            deduped: false,
        })
    }

    /// Fetch the compressed container stored under `key`.
    pub fn get(&self, key: &ContentKey) -> Result<CompressedBlob, StoreError> {
        // A concurrent compaction can delete the segment between the
        // index lookup and the read; one retry re-resolves the moved
        // record.
        for attempt in 0..2 {
            let loc = self.index.get(key).ok_or(StoreError::NotFound(*key))?;
            match segment::read_at(&self.dir, loc.segment, loc.offset, loc.len as usize) {
                Ok(bytes) => {
                    let (record, _) = Record::decode(&bytes)?;
                    if record.key != *key {
                        return Err(StoreError::Corrupt {
                            what: "record key",
                            source: dnacomp_codec::CodecError::Corrupt(
                                "stored record carries a different key",
                            ),
                        });
                    }
                    return CompressedBlob::from_bytes(&record.payload).map_err(|source| {
                        StoreError::Corrupt {
                            what: "record payload container",
                            source,
                        }
                    });
                }
                Err(e) if attempt == 0 => {
                    drop(e);
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on every path")
    }

    /// `true` if a record with this key is committed.
    pub fn contains(&self, key: &ContentKey) -> bool {
        self.index.contains(key)
    }

    /// Index-only metadata for `key`.
    pub fn stat(&self, key: &ContentKey) -> Option<RecordStat> {
        self.index.get(key).map(|loc| RecordStat {
            key: *key,
            algorithm: loc.algorithm,
            original_len: loc.original_len,
            stored_bytes: loc.len,
            segment: loc.segment,
        })
    }

    /// Logically delete `key`. Returns whether it was present; the
    /// bytes stay on disk (dead) until a compaction reclaims them.
    pub fn remove(&self, key: &ContentKey) -> Result<bool, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        let Some(loc) = self.index.get(key) else {
            return Ok(false);
        };
        let entry = Entry::Remove { key: *key };
        self.append_manifest(&mut w, &entry)?;
        self.index.remove(key);
        if let Some(info) = w.segments.get_mut(&loc.segment) {
            info.live_bytes -= loc.len;
            info.live_records -= 1;
        }
        self.removes.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// All keys currently committed, sorted.
    pub fn keys(&self) -> Vec<ContentKey> {
        self.index.snapshot().into_iter().map(|(k, _)| k).collect()
    }

    /// Live record count.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no records are committed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Read and checksum-validate every committed record, counting
    /// failures into the stats. A failure means bit rot or an outside
    /// writer — never a crash, which cannot damage committed records.
    pub fn verify(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for (key, loc) in self.index.snapshot() {
            report.checked += 1;
            let outcome = segment::read_at(&self.dir, loc.segment, loc.offset, loc.len as usize)
                .and_then(|bytes| {
                    let (record, _) = Record::decode(&bytes)?;
                    if record.key != key {
                        return Err(StoreError::Corrupt {
                            what: "record key",
                            source: dnacomp_codec::CodecError::Corrupt(
                                "stored record carries a different key",
                            ),
                        });
                    }
                    CompressedBlob::from_bytes(&record.payload).map_err(StoreError::from)?;
                    Ok(())
                });
            if let Err(e) = outcome {
                report.failures.push(ScrubFailure {
                    key,
                    error: e.to_string(),
                });
            }
        }
        self.scrub_failures
            .fetch_add(report.failures.len() as u64, Ordering::Relaxed);
        report
    }

    /// Rewrite sealed segments whose live ratio fell below
    /// [`StoreConfig::compact_live_ratio`] (or that hold no live
    /// records at all): move their live records to the active segment,
    /// drop the old files, and checkpoint the manifest via temp-file +
    /// rename so the log sheds its dead entries too. Refuses to touch
    /// anything if a victim record fails validation — corrupt data is
    /// surfaced, never silently dropped or propagated.
    pub fn compact(&self) -> Result<CompactReport, StoreError> {
        let mut w = self.lock_writer();
        if w.dead {
            return Err(StoreError::Crashed);
        }
        let active = w.active;
        let victims: Vec<u64> = w
            .segments
            .iter()
            .filter(|&(&id, info)| {
                id != active
                    && (info.live_records == 0
                        || info.live_ratio() < self.config.compact_live_ratio)
            })
            .map(|(&id, _)| id)
            .collect();
        if victims.is_empty() {
            return Ok(CompactReport::default());
        }
        let victim_set: HashSet<u64> = victims.iter().copied().collect();
        let moves: Vec<(ContentKey, Location)> = self
            .index
            .snapshot()
            .into_iter()
            .filter(|(_, loc)| victim_set.contains(&loc.segment))
            .collect();
        // Validate before mutating anything: a corrupt victim record
        // aborts the whole pass with the store untouched.
        let mut payloads = Vec::with_capacity(moves.len());
        for (key, loc) in &moves {
            let bytes = segment::read_at(&self.dir, loc.segment, loc.offset, loc.len as usize)?;
            let (record, _) = Record::decode(&bytes)?;
            if record.key != *key {
                return Err(StoreError::Corrupt {
                    what: "record key",
                    source: dnacomp_codec::CodecError::Corrupt(
                        "stored record carries a different key",
                    ),
                });
            }
            payloads.push((*key, record, bytes));
        }
        let mut report = CompactReport::default();
        for (key, record, bytes) in payloads {
            let location = self.append_record(&mut w, &bytes, &record)?;
            self.commit_add(&mut w, key, location)?;
            self.index.insert(key, location);
            report.records_moved += 1;
        }
        for &victim in &victims {
            self.append_manifest(&mut w, &Entry::DropSegment { segment: victim })?;
            if let Some(info) = w.segments.remove(&victim) {
                report.bytes_reclaimed += info.bytes - info.live_bytes;
            }
            fs::remove_file(segment::segment_path(&self.dir, victim))
                .map_err(|e| StoreError::io("removing compacted segment", e))?;
            report.segments_removed += 1;
        }
        // Shed dead manifest entries: checkpoint exactly the live index.
        let entries: Vec<Entry> = self
            .index
            .snapshot()
            .into_iter()
            .map(|(key, location)| Entry::Add { key, location })
            .collect();
        manifest::checkpoint(&self.dir, &entries)?;
        // The append handle still points at the pre-rename inode.
        w.manifest = OpenOptions::new()
            .append(true)
            .open(manifest::manifest_path(&self.dir))
            .map_err(|e| StoreError::io("reopening manifest", e))?;
        Ok(report)
    }

    /// Current counters and sizes.
    pub fn snapshot(&self) -> StoreSnapshot {
        let w = self.lock_writer();
        let (mut bytes_on_disk, mut live_bytes, mut segments) = (0, 0, 0);
        for info in w.segments.values() {
            bytes_on_disk += info.bytes;
            live_bytes += info.live_bytes;
            segments += 1;
        }
        StoreSnapshot {
            records: self.index.len() as u64,
            segments,
            bytes_on_disk,
            live_bytes,
            puts: self.puts.load(Ordering::Relaxed),
            dedup_hits: self.dedup_hits.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            scrub_failures: self.scrub_failures.load(Ordering::Relaxed),
        }
    }

    /// Append encoded record bytes to the active segment (rolling it if
    /// full) and return the committed-to-be location.
    fn append_record(
        &self,
        w: &mut Writer,
        bytes: &[u8],
        record: &Record,
    ) -> Result<Location, StoreError> {
        let len = bytes.len() as u64;
        if w.active_end > 0 && w.active_end + len > self.config.segment_target_bytes {
            w.active = w.max_seen + 1;
            w.max_seen = w.active;
            w.active_end = 0;
            w.active_file = None;
        }
        if w.active_file.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(segment::segment_path(&self.dir, w.active))
                .map_err(|e| StoreError::io("opening active segment", e))?;
            w.active_file = Some(file);
        }
        let offset = w.active_end;
        let sink = Sink::Segment(w.active);
        self.faulted_write(w, sink, bytes)?;
        if self.config.sync {
            w.active_file
                .as_ref()
                .expect("active segment just opened")
                .sync_all()
                .map_err(|e| StoreError::io("syncing segment", e))?;
        }
        w.active_end = offset + len;
        Ok(Location {
            segment: w.active,
            offset,
            len,
            algorithm: record.algorithm,
            original_len: record.original_len,
        })
    }

    /// Write the Add entry — the commit point — and fold the new record
    /// into the segment accounting.
    fn commit_add(
        &self,
        w: &mut Writer,
        key: ContentKey,
        location: Location,
    ) -> Result<(), StoreError> {
        self.append_manifest(w, &Entry::Add { key, location })?;
        let info = w.segments.entry(location.segment).or_default();
        info.bytes += location.len;
        info.live_bytes += location.len;
        info.records += 1;
        info.live_records += 1;
        Ok(())
    }

    fn append_manifest(&self, w: &mut Writer, entry: &Entry) -> Result<(), StoreError> {
        let bytes = entry.encode();
        self.faulted_write(w, Sink::Manifest, &bytes)?;
        if self.config.sync {
            w.manifest
                .sync_all()
                .map_err(|e| StoreError::io("syncing manifest", e))?;
        }
        Ok(())
    }

    /// One fault-injectable disk write. A torn write persists only a
    /// prefix and kills the store instance, exactly like a process
    /// crash at that byte.
    fn faulted_write(&self, w: &mut Writer, sink: Sink, buf: &[u8]) -> Result<(), StoreError> {
        let op = w.op;
        w.op += 1;
        let name = sink.name();
        let mut cut: Option<usize> = None;
        if let Some(budget) = w.budget.as_mut() {
            if (buf.len() as u64) > *budget {
                cut = Some(*budget as usize);
            } else {
                *budget -= buf.len() as u64;
            }
        }
        if cut.is_none() {
            cut = self.config.faults.torn_write(&name, op, buf.len());
        }
        let kept = cut.unwrap_or(buf.len());
        let write = |w: &mut Writer, data: &[u8]| -> std::io::Result<()> {
            match sink {
                Sink::Segment(_) => w
                    .active_file
                    .as_mut()
                    .expect("segment writes follow an open")
                    .write_all(data),
                Sink::Manifest => w.manifest.write_all(data),
            }
        };
        write(w, &buf[..kept]).map_err(|e| StoreError::io("appending store file", e))?;
        match cut {
            None => Ok(()),
            Some(kept) => {
                // Even the surviving prefix is flushed, so reopening
                // this very directory sees exactly the torn state.
                let _ = match sink {
                    Sink::Segment(_) => w.active_file.as_ref().map(|f| f.sync_all()),
                    Sink::Manifest => Some(w.manifest.sync_all()),
                };
                w.dead = true;
                Err(StoreError::TornWrite {
                    file: name,
                    kept,
                    asked: buf.len(),
                })
            }
        }
    }
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::io("opening file to truncate", e))?;
    f.set_len(len)
        .map_err(|e| StoreError::io("truncating torn tail", e))?;
    f.sync_all()
        .map_err(|e| StoreError::io("syncing truncated file", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnacomp_algos::{Algorithm, CompressedBlob};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dnacomp-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seq(text: &[u8]) -> PackedSeq {
        PackedSeq::from_ascii(text).unwrap()
    }

    fn blob(s: &PackedSeq, payload: &[u8]) -> CompressedBlob {
        CompressedBlob::new(Algorithm::Dnax, s, payload.to_vec())
    }

    fn small_segments() -> StoreConfig {
        StoreConfig {
            segment_target_bytes: 160,
            sync: false,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn put_get_roundtrip_and_dedup() {
        let dir = tmp_dir("roundtrip");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let s = seq(b"ACGTACGTAACC");
        let b = blob(&s, b"pay");
        let out = store.put(&s, &b).unwrap();
        assert!(!out.deduped);
        assert_eq!(store.get(&out.key).unwrap(), b);
        // Same content again — even under a different algorithm — is a
        // dedup hit and the original record stands.
        let b2 = CompressedBlob::new(Algorithm::Gzip, &s, b"otherpayload".to_vec());
        let out2 = store.put(&s, &b2).unwrap();
        assert!(out2.deduped);
        assert_eq!(out2.key, out.key);
        assert_eq!(store.get(&out.key).unwrap().algorithm, Algorithm::Dnax);
        let snap = store.snapshot();
        assert_eq!(snap.puts, 2);
        assert_eq!(snap.dedup_hits, 1);
        assert_eq!(snap.records, 1);
        assert_eq!(snap.bytes_on_disk, snap.live_bytes);
        // Zero-length sequences are first-class records.
        let empty = PackedSeq::new();
        let eb = blob(&empty, b"");
        let eo = store.put(&empty, &eb).unwrap();
        assert!(!eo.deduped);
        assert_eq!(store.get(&eo.key).unwrap(), eb);
        assert_eq!(store.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_recovers_everything() {
        let dir = tmp_dir("reopen");
        let mut keys = Vec::new();
        {
            let store = SequenceStore::open(&dir, small_segments()).unwrap();
            for i in 0..30u8 {
                let s = seq(format!("ACGT{}", "A".repeat(i as usize + 1)).as_bytes());
                let b = blob(&s, &[i; 24]);
                keys.push((store.put(&s, &b).unwrap().key, b));
            }
            assert!(store.snapshot().segments > 1, "rolled across segments");
        }
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 30);
        for (key, b) in &keys {
            assert_eq!(&store.get(key).unwrap(), b);
            assert!(store.stat(key).is_some());
        }
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_key_is_not_found() {
        let dir = tmp_dir("notfound");
        let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
        let key = ContentKey([42; 16]);
        assert!(matches!(store.get(&key), Err(StoreError::NotFound(k)) if k == key));
        assert!(store.stat(&key).is_none());
        assert!(!store.remove(&key).unwrap());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn remove_then_compact_reclaims_dead_segments() {
        let dir = tmp_dir("compact");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let mut keys = Vec::new();
        for i in 0..24u8 {
            let s = seq(format!("CCGG{}", "T".repeat(i as usize + 1)).as_bytes());
            keys.push(store.put(&s, &blob(&s, &[i; 24])).unwrap().key);
        }
        let before = store.snapshot();
        assert!(before.segments > 2);
        // Kill most records so sealed segments fall below the ratio.
        for key in &keys[..20] {
            assert!(store.remove(key).unwrap());
        }
        let report = store.compact().unwrap();
        assert!(report.segments_removed > 0, "{report:?}");
        assert!(report.bytes_reclaimed > 0);
        let after = store.snapshot();
        assert!(after.bytes_on_disk < before.bytes_on_disk);
        assert_eq!(after.records, 4);
        // Survivors are intact, removed keys stay gone — including
        // after a reopen (the checkpointed manifest is authoritative).
        for key in &keys[20..] {
            assert!(store.get(key).is_ok());
        }
        drop(store);
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 4);
        for key in &keys[..20] {
            assert!(matches!(store.get(key), Err(StoreError::NotFound(_))));
        }
        for key in &keys[20..] {
            assert!(store.get(key).is_ok());
        }
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_budget_kills_then_reopen_recovers_committed_prefix() {
        let dir = tmp_dir("budget");
        // First, commit two records cleanly.
        let committed: Vec<_> = {
            let store = SequenceStore::open(&dir, small_segments()).unwrap();
            (0..2u8)
                .map(|i| {
                    let s = seq(format!("AC{}", "G".repeat(i as usize + 3)).as_bytes());
                    let b = blob(&s, &[i; 10]);
                    (store.put(&s, &b).unwrap().key, b)
                })
                .collect()
        };
        // Then crash almost immediately into the third put.
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                crash_after_bytes: Some(5),
                ..small_segments()
            },
        )
        .unwrap();
        let s = seq(b"TTTTGGGGCCCC");
        let err = store.put(&s, &blob(&s, &[9; 10])).unwrap_err();
        assert!(err.is_simulated_crash(), "{err}");
        // The dead instance refuses further mutations…
        assert!(matches!(
            store.put(&s, &blob(&s, &[9; 10])),
            Err(StoreError::Crashed)
        ));
        drop(store);
        // …and reopening recovers exactly the committed records.
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        assert_eq!(store.len(), 2);
        for (key, b) in &committed {
            assert_eq!(&store.get(key).unwrap(), b);
        }
        assert!(store.verify().is_clean());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_flags_a_flipped_byte() {
        let dir = tmp_dir("scrub");
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let s = seq(b"ACGTACGTACGTACGT");
        let key = store.put(&s, &blob(&s, &[7; 40])).unwrap().key;
        drop(store);
        // Flip one payload byte on disk behind the store's back.
        let seg = segment::segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        let store = SequenceStore::open(&dir, small_segments()).unwrap();
        let report = store.verify();
        assert_eq!(report.checked, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].key, key);
        assert_eq!(store.snapshot().scrub_failures, 1);
        assert!(store.get(&key).is_err(), "get must not serve corrupt data");
        fs::remove_dir_all(&dir).unwrap();
    }
}
