//! Sharded LRU block cache for hot gets out of sorted runs.
//!
//! Run data blocks are immutable once written (a block moves only by
//! being rewritten into a *new* run id during a merge, and run ids are
//! never reused), so a cached block never needs invalidation for
//! correctness — [`BlockCache::purge_run`] after a merge only releases
//! budget held by blocks that can never be asked for again.
//!
//! The cache is split into [`CACHE_SHARDS`] independently locked shards
//! keyed by `(run, block)` so concurrent readers do not contend on one
//! lock, mirroring the store's sharded key index. Each shard enforces
//! its slice of the byte budget with exact LRU order (a hash map for
//! lookup plus a monotonic-stamp ordering map for eviction, both
//! `O(log n)` per touch). Hit/miss/eviction counters feed the server's
//! metrics snapshot.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of independently locked cache shards.
pub const CACHE_SHARDS: usize = 16;

/// Point-in-time cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that fell through to disk.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Blocks evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently held.
    pub bytes: u64,
    /// Configured byte budget (0 = cache disabled).
    pub budget: u64,
}

/// A cached block plus its LRU stamp.
type CachedBlock = (Arc<Vec<u8>>, u64);

#[derive(Default)]
struct Shard {
    /// `(run, block)` → (bytes, LRU stamp).
    map: HashMap<(u64, u32), CachedBlock>,
    /// LRU stamp → key; the first entry is the eviction victim.
    order: BTreeMap<u64, (u64, u32)>,
    bytes: u64,
    clock: u64,
}

/// Every critical section is a handful of map operations that are
/// individually panic-free on valid state, so a poisoned shard is as
/// valid as before the panic — recover rather than propagate.
fn lock_shard(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The sharded, byte-budgeted LRU block cache.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    shard_budget: u64,
    budget: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("blocks", &self.map.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl BlockCache {
    /// A cache with `budget` total bytes across all shards; `0`
    /// disables caching entirely (every lookup misses, nothing is
    /// stored, counters stay zero).
    pub fn new(budget: u64) -> BlockCache {
        BlockCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: budget / CACHE_SHARDS as u64,
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// `true` when a byte budget is configured.
    pub fn enabled(&self) -> bool {
        self.budget > 0
    }

    fn shard(&self, run: u64, block: u32) -> &Mutex<Shard> {
        // Spread consecutive blocks of one run across shards.
        let h = run
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block as u64);
        &self.shards[(h >> 56) as usize % CACHE_SHARDS]
    }

    /// The cached bytes of `(run, block)`, refreshing its LRU position.
    pub fn get(&self, run: u64, block: u32) -> Option<Arc<Vec<u8>>> {
        if !self.enabled() {
            return None;
        }
        let mut s = lock_shard(self.shard(run, block));
        s.clock += 1;
        let stamp = s.clock;
        match s.map.get_mut(&(run, block)) {
            Some((bytes, old)) => {
                let prev = std::mem::replace(old, stamp);
                let out = Arc::clone(bytes);
                s.order.remove(&prev);
                s.order.insert(stamp, (run, block));
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a block, evicting least-recently-used blocks until the
    /// shard is back under its budget slice. A block larger than the
    /// whole slice is not cached at all (it would evict everything and
    /// then still not fit a neighbour).
    pub fn insert(&self, run: u64, block: u32, bytes: Arc<Vec<u8>>) {
        let len = bytes.len() as u64;
        if !self.enabled() || len > self.shard_budget {
            return;
        }
        let mut s = lock_shard(self.shard(run, block));
        s.clock += 1;
        let stamp = s.clock;
        if let Some((old, prev)) = s.map.insert((run, block), (bytes, stamp)) {
            s.bytes -= old.len() as u64;
            s.order.remove(&prev);
        }
        s.bytes += len;
        s.order.insert(stamp, (run, block));
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while s.bytes > self.shard_budget {
            let Some((&victim_stamp, &victim_key)) = s.order.iter().next() else {
                break;
            };
            s.order.remove(&victim_stamp);
            if let Some((old, _)) = s.map.remove(&victim_key) {
                s.bytes -= old.len() as u64;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Release every block of `run` (after a merge retires it). Purely
    /// a budget courtesy: the dropped run id is never looked up again.
    pub fn purge_run(&self, run: u64) {
        if !self.enabled() {
            return;
        }
        for shard in &self.shards {
            let mut s = lock_shard(shard);
            let victims: Vec<((u64, u32), u64)> = s
                .map
                .iter()
                .filter(|((r, _), _)| *r == run)
                .map(|(k, (_, stamp))| (*k, *stamp))
                .collect();
            for (key, stamp) in victims {
                if let Some((old, _)) = s.map.remove(&key) {
                    s.bytes -= old.len() as u64;
                }
                s.order.remove(&stamp);
            }
        }
    }

    /// Current counters and held bytes.
    pub fn stats(&self) -> CacheStats {
        let bytes = self.shards.iter().map(|s| lock_shard(s).bytes).sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes,
            budget: self.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn block(n: usize) -> Arc<Vec<u8>> {
        Arc::new(vec![0xCD; n])
    }

    #[test]
    fn hit_miss_and_disabled() {
        let c = BlockCache::new(1 << 20);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(100));
        assert_eq!(c.get(1, 0).unwrap().len(), 100);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.bytes), (1, 1, 1, 100));

        let off = BlockCache::new(0);
        off.insert(1, 0, block(100));
        assert!(off.get(1, 0).is_none());
        assert_eq!(off.stats(), CacheStats::default());
    }

    #[test]
    fn eviction_is_lru_within_a_shard() {
        // One shard's budget; force all keys into the same shard by
        // using one run and block numbers that land together.
        let c = BlockCache::new((256 * CACHE_SHARDS) as u64);
        // Find three blocks of run 7 that share a shard.
        let mut same: Vec<u32> = Vec::new();
        let target = {
            let mut t = None;
            for b in 0..10_000u32 {
                let idx = (7u64
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(b as u64)
                    >> 56) as usize
                    % CACHE_SHARDS;
                let t0 = *t.get_or_insert(idx);
                if idx == t0 {
                    same.push(b);
                    if same.len() == 3 {
                        break;
                    }
                }
            }
            same
        };
        let [a, b, d] = [target[0], target[1], target[2]];
        c.insert(7, a, block(128));
        c.insert(7, b, block(128));
        assert!(c.get(7, a).is_some(), "touch a so b is the LRU victim");
        c.insert(7, d, block(128));
        assert!(c.get(7, a).is_some(), "recently used survives");
        assert!(c.get(7, b).is_none(), "least recently used evicted");
        assert!(c.get(7, d).is_some());
        assert!(c.stats().evictions >= 1);
    }

    #[test]
    fn purge_run_releases_bytes() {
        let c = BlockCache::new(1 << 20);
        for b in 0..20 {
            c.insert(3, b, block(500));
            c.insert(4, b, block(500));
        }
        c.purge_run(3);
        assert_eq!(c.stats().bytes, 20 * 500);
        for b in 0..20 {
            assert!(c.get(3, b).is_none());
            assert!(c.get(4, b).is_some());
        }
    }

    #[test]
    fn oversized_block_is_not_cached() {
        let c = BlockCache::new(160); // 10 bytes per shard
        c.insert(1, 1, block(64));
        assert!(c.get(1, 1).is_none());
        assert_eq!(c.stats().bytes, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // Satellite requirement: the byte budget holds as an invariant
        // under arbitrary insert/get interleavings, and accounting never
        // drifts from the map contents.
        #[test]
        fn byte_budget_invariant(ops in proptest::collection::vec(
            (0u64..4, 0u32..64, 1usize..512, any::<bool>()), 1..300
        )) {
            let budget = 4096u64;
            let c = BlockCache::new(budget);
            for (run, blk, len, is_insert) in ops {
                if is_insert {
                    c.insert(run, blk, block(len));
                } else {
                    c.get(run, blk);
                }
                let s = c.stats();
                prop_assert!(s.bytes <= budget, "held {} > budget {budget}", s.bytes);
            }
            let s = c.stats();
            let mut held = 0u64;
            for sh in c.shards.iter() {
                let sh = lock_shard(sh);
                prop_assert_eq!(sh.map.len(), sh.order.len());
                held += sh.map.values().map(|(b, _)| b.len() as u64).sum::<u64>();
            }
            prop_assert_eq!(s.bytes, held, "byte accounting drifted");
        }
    }
}
