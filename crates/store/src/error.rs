//! Typed errors for every way the store can fail.

use crate::record::ContentKey;
use dnacomp_codec::CodecError;
use std::fmt;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"appending segment"`, …).
        what: &'static str,
        /// The OS error.
        source: std::io::Error,
    },
    /// No record with this content key is in the store.
    NotFound(ContentKey),
    /// On-disk bytes failed structural or checksum validation — bit rot
    /// or an outside writer, never a crash (crashes lose only
    /// uncommitted tails, they do not corrupt committed records).
    Corrupt {
        /// What was being decoded when validation failed.
        what: &'static str,
        /// The codec-level cause.
        source: CodecError,
    },
    /// A simulated disk fault tore a write: only a prefix of the bytes
    /// reached "disk" and the store instance is dead, exactly as if the
    /// process had been killed mid-write. Reopen the directory to
    /// recover every committed record.
    TornWrite {
        /// File the torn write hit.
        file: String,
        /// Bytes that survived out of the attempted write.
        kept: usize,
        /// Bytes the write asked for.
        asked: usize,
    },
    /// The store already suffered a simulated crash ([`StoreError::TornWrite`]);
    /// no further mutations are accepted until the directory is reopened.
    Crashed,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, source } => write!(f, "i/o while {what}: {source}"),
            StoreError::NotFound(key) => write!(f, "no record with key {key}"),
            StoreError::Corrupt { what, source } => {
                write!(f, "corrupt {what}: {source}")
            }
            StoreError::TornWrite { file, kept, asked } => write!(
                f,
                "simulated crash: write to {file} torn after {kept}/{asked} bytes"
            ),
            StoreError::Crashed => {
                f.write_str("store crashed on an earlier torn write; reopen to recover")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    /// Wrap an OS error with the operation it interrupted.
    pub(crate) fn io(what: &'static str, source: std::io::Error) -> Self {
        StoreError::Io { what, source }
    }

    /// `true` for the two simulated-crash variants, which callers
    /// recover from by reopening the directory.
    pub fn is_simulated_crash(&self) -> bool {
        matches!(self, StoreError::TornWrite { .. } | StoreError::Crashed)
    }
}

impl From<CodecError> for StoreError {
    fn from(source: CodecError) -> Self {
        StoreError::Corrupt {
            what: "record",
            source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::TornWrite {
            file: "seg-000001.seg".into(),
            kept: 3,
            asked: 40,
        };
        assert!(e.to_string().contains("3/40"));
        assert!(e.is_simulated_crash());
        assert!(StoreError::Crashed.is_simulated_crash());
        let e = StoreError::io("x", std::io::Error::other("boom"));
        assert!(!e.is_simulated_crash());
        assert!(e.to_string().contains("boom"));
    }
}
