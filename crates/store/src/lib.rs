//! # dnacomp-store — crash-safe, content-addressed sequence repository
//!
//! The durable layer behind the exchange endpoint: the framework picks
//! the best compressor per (file, context), the service runs the job,
//! and this crate is where the result *lands*. Production DNA exchange
//! assumes a persistent, deduplicating store — every run starting cold
//! is a simulation artifact, not an architecture.
//!
//! A store is a directory holding a small LSM tree:
//!
//! ```text
//! store/
//! ├── manifest.log      write-ahead log: the single source of truth
//! ├── seg-000000.seg    level 0: append-only record segments
//! ├── seg-000001.seg
//! ├── run-000000.sst    level 1+: immutable sorted runs with sparse
//! └── run-000001.sst    index and bloom filter
//! ```
//!
//! * **Content-addressed & deduplicating** — records are keyed by a
//!   128-bit hash of the *original* sequence ([`ContentKey`]); putting
//!   the same genome twice stores one payload, whatever algorithm
//!   either put chose.
//! * **Crash-safe** — a record is committed exactly when its manifest
//!   entry is durable; level transitions (sealing L0 into a run,
//!   merging runs) commit through one atomic manifest entry each.
//!   [`SequenceStore::open`] replays the log, truncates torn tails and
//!   deletes orphans, recovering every committed record bit-exact after
//!   a kill at any write point (the chaos tests sweep literally every
//!   byte, including mid-seal and mid-merge).
//! * **Group-committed** — concurrent puts share fsync batches inside a
//!   configurable commit window instead of paying one fsync each.
//! * **Read-optimised** — per-run bloom filters answer negative gets
//!   from memory; a sharded, byte-budgeted LRU block cache serves hot
//!   gets without touching disk.
//! * **Self-checking** — each record carries an FNV-1a checksum over
//!   header + payload; [`SequenceStore::verify`] audits everything at
//!   once, [`SequenceStore::scrub_step`] audits incrementally in the
//!   background, and the payload's own `DX` container checksum still
//!   guards the decompressed sequence end-to-end.
//! * **Self-compacting** — background maintenance seals full L0
//!   segments into sorted runs and merges runs level by level;
//!   [`SequenceStore::compact`] forces the whole cascade and atomically
//!   checkpoints the manifest (temp-file + rename).
//!
//! Module map: [`record`] (wire format + keys) → [`segment`] (L0 data
//! files) / [`sstable`] (sorted runs) → [`bloom`] + [`cache`] (read
//! path) → [`manifest`] (commit log) + [`wal`] (group commit) →
//! [`index`] (sharded lookup), assembled by [`store`] with level
//! maintenance in [`compact`] and background auditing in [`scrub`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bloom;
pub mod cache;
mod compact;
pub mod error;
pub mod index;
pub mod manifest;
pub mod record;
pub mod scrub;
pub mod segment;
pub mod sstable;
pub mod store;
mod wal;

pub use bloom::Bloom;
pub use cache::{BlockCache, CacheStats};
pub use error::StoreError;
pub use index::ShardedIndex;
pub use manifest::{Entry, Location, ReplayStats};
pub use record::{ContentKey, Record};
pub use scrub::ScrubTask;
pub use segment::SegmentInfo;
pub use sstable::RunMeta;
pub use store::{
    CompactReport, LevelStat, PutOutcome, RecordStat, ScrubFailure, ScrubReport, SequenceStore,
    StoreConfig, StoreSnapshot,
};
pub use wal::WalStats;
