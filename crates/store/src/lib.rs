//! # dnacomp-store — crash-safe, content-addressed sequence repository
//!
//! The durable layer behind the exchange endpoint: the framework picks
//! the best compressor per (file, context), the service runs the job,
//! and this crate is where the result *lands*. Production DNA exchange
//! assumes a persistent, deduplicating store — every run starting cold
//! is a simulation artifact, not an architecture.
//!
//! A store is a directory:
//!
//! ```text
//! store/
//! ├── manifest.log      write-ahead log: the single source of truth
//! ├── seg-000000.seg    append-only record segments
//! └── seg-000001.seg
//! ```
//!
//! * **Content-addressed & deduplicating** — records are keyed by a
//!   128-bit hash of the *original* sequence ([`ContentKey`]); putting
//!   the same genome twice stores one payload, whatever algorithm
//!   either put chose.
//! * **Crash-safe** — a record is committed exactly when its manifest
//!   entry is durable; [`SequenceStore::open`] replays the log,
//!   truncates torn tails and deletes orphans, recovering every
//!   committed record bit-exact after a kill at any write point (the
//!   chaos tests sweep literally every byte).
//! * **Self-checking** — each record carries an FNV-1a checksum over
//!   header + payload; [`SequenceStore::verify`] detects bit rot, and
//!   the payload's own `DX` container checksum still guards the
//!   decompressed sequence end-to-end.
//! * **Self-compacting** — [`SequenceStore::compact`] rewrites sealed
//!   segments whose live ratio dropped below the configured threshold
//!   and atomically checkpoints the manifest (temp-file + rename).
//!
//! Module map: [`record`] (wire format + keys) → [`segment`] (data
//! files) → [`manifest`] (commit log) → [`index`] (sharded lookup),
//! assembled by [`store`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod error;
pub mod index;
pub mod manifest;
pub mod record;
pub mod segment;
pub mod store;

pub use error::StoreError;
pub use index::ShardedIndex;
pub use manifest::{Entry, Location};
pub use record::{ContentKey, Record};
pub use segment::SegmentInfo;
pub use store::{
    CompactReport, PutOutcome, RecordStat, ScrubFailure, ScrubReport, SequenceStore, StoreConfig,
    StoreSnapshot,
};
